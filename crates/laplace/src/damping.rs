//! Damping-parameter selection (the `a` of Durbin's formula).
//!
//! The discretization error of Durbin's approximation with period `2T` is
//! `f*(t) = Σ_{k≥1} f(2kT + t)·e^{−2akT}`; `a` is chosen so that a priori
//! bounds on `f` push this below the allotted `ε/4`.

/// Damping parameter for a *bounded* original, `0 ≤ f ≤ f_max` (the TRR case:
/// `f_max = r_max`).
///
/// From `f*(t) ≤ f_max · e^{−2aT}/(1 − e^{−2aT}) = ε/4`:
/// `a = ln(1 + 4·f_max/ε) / (2T)` (the paper's first formula, rearranged to
/// avoid evaluating `log(1/(1+x))`).
pub fn damping_for_bounded(epsilon: f64, f_max: f64, t_period: f64) -> f64 {
    assert!(epsilon > 0.0 && t_period > 0.0);
    assert!(f_max >= 0.0);
    if f_max == 0.0 {
        // Any positive damping works for the zero function; pick a benign one.
        return 1.0 / t_period;
    }
    (4.0 * f_max / epsilon).ln_1p() / (2.0 * t_period)
}

/// Damping parameter for a *linearly growing* original,
/// `0 ≤ f(τ) ≤ f_rate·τ` (the `C(t) = t·MRR(t)` case: `f_rate = r_max`), with
/// the inversion performed at time `t` and an error budget `ε_t = ε·t/4`
/// expressed in `C` units.
///
/// The bound is
/// `f*(t) ≤ f_rate·[(t+2T)u − t·u²]/(1−u)²` with `u = e^{−2aT}`, leading to
/// the quadratic `A·u² − B·u + C = 0` with
/// `A = ε_t + t·f_rate`, `B = 2ε_t + (t+2T)·f_rate`, `C = ε_t`
/// (this re-derivation matches the paper's eq. (2) after scaling by 4).
///
/// The paper patches the catastrophic cancellation of the textbook root
/// formula with a Taylor expansion; we instead use the numerically stable
/// small-root form `u = 2C / (B + √(B² − 4AC))`, which is exact in all
/// regimes — the equivalence is unit-tested against high-precision bisection.
pub fn damping_for_linear_growth(epsilon: f64, f_rate: f64, t: f64, t_period: f64) -> f64 {
    assert!(epsilon > 0.0 && t > 0.0 && t_period > 0.0);
    assert!(f_rate >= 0.0);
    if f_rate == 0.0 {
        return 1.0 / t_period;
    }
    let eps_t = epsilon * t / 4.0;
    let a_coef = eps_t + t * f_rate;
    let b_coef = 2.0 * eps_t + (t + 2.0 * t_period) * f_rate;
    let c_coef = eps_t;
    let disc = b_coef * b_coef - 4.0 * a_coef * c_coef;
    debug_assert!(disc >= 0.0, "discriminant must be non-negative");
    let u = 2.0 * c_coef / (b_coef + disc.sqrt());
    debug_assert!(u > 0.0 && u < 1.0, "root must lie in (0,1), got {u}");
    -u.ln() / (2.0 * t_period)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bounded-case `a` must satisfy its defining equation.
    #[test]
    fn bounded_defining_equation() {
        for &(eps, fmax, tt) in &[(1e-12, 1.0, 8.0), (1e-6, 5.0, 80.0), (1e-10, 0.3, 1.0)] {
            let a = damping_for_bounded(eps, fmax, tt);
            let u = (-2.0 * a * tt).exp();
            let err = fmax * u / (1.0 - u);
            assert!(
                (err - eps / 4.0).abs() < 1e-6 * (eps / 4.0),
                "eps={eps} fmax={fmax}: bound {err} vs {}",
                eps / 4.0
            );
        }
    }

    /// The linear-growth `a` must satisfy ITS defining equation.
    #[test]
    fn linear_defining_equation() {
        for &(eps, rate, t) in &[
            (1e-12, 1.0, 1.0),
            (1e-12, 1.0, 1e5),
            (1e-8, 2.5, 100.0),
            (1e-12, 1e-3, 10.0),
        ] {
            let tt = 8.0 * t;
            let a = damping_for_linear_growth(eps, rate, t, tt);
            let u = (-2.0 * a * tt).exp();
            let err = rate * ((t + 2.0 * tt) * u - t * u * u) / ((1.0 - u) * (1.0 - u));
            let budget = eps * t / 4.0;
            assert!(
                (err - budget).abs() < 1e-6 * budget,
                "eps={eps} rate={rate} t={t}: bound {err} vs {budget}"
            );
        }
    }

    /// The stable small-root formula must agree with bisection of the original
    /// error expression, including the cancellation regime the paper patches
    /// with a Taylor series (tiny ε against huge t·r_max).
    #[test]
    fn stable_root_matches_bisection() {
        for &(eps, rate, t) in &[
            (1e-12, 1.0, 1e5), // y ≪ 1e-3: the paper's Taylor regime
            (1e-12, 1.0, 1.0),
            (1e-3, 1.0, 1.0), // comfortable regime
        ] {
            let tt = 8.0 * t;
            let budget = eps * t / 4.0;
            let err_at = |u: f64| rate * ((t + 2.0 * tt) * u - t * u * u) / ((1.0 - u) * (1.0 - u));
            // Bisection on u in (0, u_hi) where err is increasing.
            let (mut lo, mut hi) = (0.0f64, 0.999_999f64);
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if err_at(mid) > budget {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let u_ref = 0.5 * (lo + hi);
            let a = damping_for_linear_growth(eps, rate, t, tt);
            let u = (-2.0 * a * tt).exp();
            assert!(
                (u - u_ref).abs() <= 1e-9 * u_ref.max(1e-300),
                "u {u} vs bisection {u_ref} (eps={eps}, t={t})"
            );
        }
    }

    #[test]
    fn damping_decreases_with_longer_period() {
        let a1 = damping_for_bounded(1e-12, 1.0, 8.0);
        let a2 = damping_for_bounded(1e-12, 1.0, 16.0);
        assert!(a2 < a1);
        // a·T is period-invariant for the bounded case.
        assert!((a1 * 8.0 - a2 * 16.0).abs() < 1e-12);
    }

    #[test]
    fn zero_function_gets_benign_damping() {
        assert!(damping_for_bounded(1e-12, 0.0, 8.0) > 0.0);
        assert!(damping_for_linear_growth(1e-12, 0.0, 1.0, 8.0) > 0.0);
    }
}
