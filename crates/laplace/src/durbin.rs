//! Durbin's trapezoidal inversion with ε-algorithm acceleration.

use regenr_numeric::{Complex64, EpsilonAccelerator, KahanSum};

/// Options for [`DurbinInverter`].
#[derive(Clone, Copy, Debug)]
pub struct InverterOptions {
    /// Period multiplier `m` in `T = m·t`. Crump: 1, Piessens–Huysmans: 16,
    /// the paper (and this default): 8.
    pub t_multiplier: f64,
    /// Apply Wynn's ε-algorithm to the partial sums (the paper's choice).
    /// `false` sums the series directly — kept for the ablation benches.
    pub accelerate: bool,
    /// Minimum number of series terms before convergence may be declared.
    pub min_terms: usize,
    /// Hard cap on series terms (the paper observed 105–329 abscissae; the
    /// cap only guards against divergence on malformed transforms).
    pub max_terms: usize,
    /// Number of consecutive under-tolerance differences required.
    pub stable_needed: usize,
}

impl Default for InverterOptions {
    fn default() -> Self {
        InverterOptions {
            t_multiplier: 8.0,
            accelerate: true,
            min_terms: 8,
            max_terms: 200_000,
            stable_needed: 3,
        }
    }
}

/// Result of one inversion.
#[derive(Clone, Copy, Debug)]
pub struct InversionResult {
    /// The inverted value `f(t)`.
    pub value: f64,
    /// Number of transform evaluations (abscissae), including `f̃(a)`.
    pub abscissae: usize,
    /// Whether the convergence criterion was met before `max_terms`.
    pub converged: bool,
}

/// Durbin/Crump numerical inverter.
///
/// The caller supplies the damping parameter `a` (see [`crate::damping`]) and
/// the convergence tolerance `tol` *in the units of the original function*:
/// iteration stops once `stable_needed` consecutive accelerated estimates
/// move by less than `tol` (the paper uses `tol = ε/100` for `TRR` and
/// `ε·t/100` for `C`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurbinInverter {
    /// Tuning knobs.
    pub opts: InverterOptions,
}

impl DurbinInverter {
    /// Inverter with the paper's defaults (`T = 8t`, ε-acceleration).
    pub fn new(opts: InverterOptions) -> Self {
        DurbinInverter { opts }
    }

    /// Inverts `f̃` at time `t > 0`.
    ///
    /// `transform` is called at `s = a` and `s = a + ikπ/T`, `k = 1, 2, …`.
    pub fn invert<F>(&self, mut transform: F, t: f64, a: f64, tol: f64) -> InversionResult
    where
        F: FnMut(Complex64) -> Complex64,
    {
        assert!(t > 0.0, "inversion time must be positive");
        assert!(a > 0.0, "damping parameter must be positive");
        assert!(tol > 0.0, "tolerance must be positive");
        let t_period = self.opts.t_multiplier * t;
        let scale = (a * t).exp() / t_period;

        // k = 0 term: f̃(a)/2 (real by conjugate symmetry of real originals).
        let mut partial = KahanSum::new();
        partial.add(0.5 * transform(Complex64::from_real(a)).re);
        let mut abscissae = 1usize;

        let omega = std::f64::consts::PI / t_period; // abscissa spacing
                                                     // e^{ikπt/T} advances by a fixed rotation each term; recompute from
                                                     // angle periodically to stop phase drift.
        let rot = Complex64::new((omega * t).cos(), (omega * t).sin());
        let mut phase = Complex64::ONE;

        let mut acc = EpsilonAccelerator::new();
        let mut prev_est = f64::NAN;
        let mut stable = 0usize;
        let mut est = partial.value();

        for k in 1..=self.opts.max_terms {
            phase *= rot;
            if k % 256 == 0 {
                // Refresh the rotation from the exact angle.
                let ang = omega * t * k as f64;
                phase = Complex64::new(ang.cos(), ang.sin());
            }
            let s = Complex64::new(a, omega * k as f64);
            let term = (transform(s) * phase).re;
            abscissae += 1;
            partial.add(term);

            est = if self.opts.accelerate {
                acc.push(partial.value())
            } else {
                partial.value()
            };

            if k >= self.opts.min_terms && prev_est.is_finite() {
                if (est - prev_est).abs() * scale <= tol {
                    stable += 1;
                    if stable >= self.opts.stable_needed {
                        return InversionResult {
                            value: est * scale,
                            abscissae,
                            converged: true,
                        };
                    }
                } else {
                    stable = 0;
                }
            }
            prev_est = est;
        }
        InversionResult {
            value: est * scale,
            abscissae,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damping::{damping_for_bounded, damping_for_linear_growth};

    fn invert_bounded(
        f: impl FnMut(Complex64) -> Complex64,
        t: f64,
        f_max: f64,
        eps: f64,
    ) -> InversionResult {
        let inv = DurbinInverter::default();
        let t_period = inv.opts.t_multiplier * t;
        let a = damping_for_bounded(eps, f_max, t_period);
        inv.invert(f, t, a, eps / 100.0)
    }

    #[test]
    fn exponential_decay() {
        // f(t) = e^{-t}, f̃(s) = 1/(s+1), bounded by 1.
        for &t in &[0.3, 1.0, 5.0] {
            let r = invert_bounded(|s| (s + 1.0).inv(), t, 1.0, 1e-10);
            assert!(r.converged);
            assert!(
                (r.value - (-t).exp()).abs() < 1e-9,
                "t={t}: {} vs {}",
                r.value,
                (-t).exp()
            );
        }
    }

    #[test]
    fn constant_function() {
        // f(t) = 1, f̃ = 1/s.
        let r = invert_bounded(|s| s.inv(), 2.0, 1.0, 1e-10);
        assert!(r.converged);
        assert!((r.value - 1.0).abs() < 1e-9, "{}", r.value);
    }

    #[test]
    fn rising_exponential_cdf() {
        // f(t) = 1 − e^{-λt}, f̃ = λ/(s(s+λ)) — the unreliability shape.
        let lam = 0.7;
        for &t in &[0.5, 2.0, 20.0] {
            let r = invert_bounded(
                |s| Complex64::from_real(lam) / (s * (s + lam)),
                t,
                1.0,
                1e-11,
            );
            let want = 1.0 - (-lam * t).exp();
            assert!(r.converged);
            assert!(
                (r.value - want).abs() < 1e-10,
                "t={t}: {} vs {want}",
                r.value
            );
        }
    }

    #[test]
    fn damped_oscillation() {
        // f(t) = e^{-t} cos(5t), f̃ = (s+1)/((s+1)² + 25); |f| ≤ 1.
        let t = 1.3;
        let r = invert_bounded(
            |s| (s + 1.0) / ((s + 1.0) * (s + 1.0) + 25.0),
            t,
            1.0,
            1e-10,
        );
        let want = (-t).exp() * (5.0 * t).cos();
        assert!(r.converged);
        assert!((r.value - want).abs() < 1e-9, "{} vs {want}", r.value);
    }

    #[test]
    fn linear_ramp_with_growth_damping() {
        // f(t) = t, f̃ = 1/s² — the C(t) = t·MRR(t) shape with rate 1.
        let eps = 1e-10;
        for &t in &[1.0f64, 10.0, 1000.0] {
            let inv = DurbinInverter::default();
            let t_period = inv.opts.t_multiplier * t;
            let a = damping_for_linear_growth(eps, 1.0, t, t_period);
            let r = inv.invert(|s| (s * s).inv(), t, a, eps * t / 100.0);
            assert!(r.converged);
            assert!(
                (r.value - t).abs() < 1e-8 * t.max(1.0),
                "t={t}: {} vs {t}",
                r.value
            );
        }
    }

    #[test]
    fn abscissae_counts_are_moderate() {
        // The paper reports 105–329 abscissae on its workloads; a smooth
        // transform at ε=1e-12 should land in the same ballpark.
        let r = invert_bounded(|s| (s + 0.5).inv(), 3.0, 1.0, 1e-12);
        assert!(r.converged);
        assert!(
            r.abscissae >= 20 && r.abscissae <= 2000,
            "unexpected abscissae count {}",
            r.abscissae
        );
    }

    #[test]
    fn unaccelerated_mode_needs_more_terms() {
        let opts = InverterOptions {
            accelerate: false,
            ..Default::default()
        };
        let inv = DurbinInverter::new(opts);
        let eps = 1e-6;
        let t = 1.0;
        let a = damping_for_bounded(eps, 1.0, 8.0);
        let raw = inv.invert(|s| (s + 1.0).inv(), t, a, eps / 100.0);
        let acc = invert_bounded(|s| (s + 1.0).inv(), t, 1.0, eps);
        assert!((acc.value - (-1.0f64).exp()).abs() < 1e-6);
        assert!(
            !raw.converged || raw.abscissae > acc.abscissae,
            "acceleration must reduce abscissae: raw {} vs acc {}",
            raw.abscissae,
            acc.abscissae
        );
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_time() {
        DurbinInverter::default().invert(|s| s.inv(), 0.0, 1.0, 1e-6);
    }
}
