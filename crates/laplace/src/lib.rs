//! Numerical Laplace transform inversion (Section 2.2 of the paper).
//!
//! The paper inverts the closed-form transforms of the truncated transformed
//! model with Durbin's trapezoidal approximation
//!
//! ```text
//! f(t) ≈ (e^{at}/T) · [ f̃(a)/2 + Σ_{k≥1} Re( f̃(a + ikπ/T) · e^{ikπt/T} ) ]
//! ```
//!
//! whose discretization error is `Σ_{k≥1} f(2kT + t)·e^{−2akT}`. Crump (1976)
//! takes `T = t` and accelerates the series with the ε-algorithm (fast, can be
//! unstable); Piessens & Huysmans (1984) take `T = 16t` (stable, slow). The
//! paper lands on **`T = 8t` with ε-acceleration** — the default here, with
//! the multiplier exposed for the ablation benches.
//!
//! Error control follows the paper exactly: the budget `ε/2` given to the
//! inversion splits into `ε/4` *approximation* (discretization) error —
//! controlled by the damping parameter `a`, see [`damping`] — and `ε/4`
//! *truncation* error — controlled by stopping once consecutive accelerated
//! estimates differ by `≤ ε/100`, keeping the paper's factor-25 reserve
//! between the observable difference and the true truncation error.

//! ```
//! use regenr_laplace::{damping_for_bounded, DurbinInverter};
//! use regenr_numeric::Complex64;
//!
//! // Invert f~(s) = 1/(s+1) at t = 2 with absolute error <= 1e-10.
//! let (t, eps) = (2.0, 1e-10);
//! let inv = DurbinInverter::default();             // T = 8t, ε-accelerated
//! let a = damping_for_bounded(eps, 1.0, inv.opts.t_multiplier * t);
//! let r = inv.invert(|s| (s + 1.0).inv(), t, a, eps / 100.0);
//! assert!(r.converged);
//! assert!((r.value - (-t as f64).exp()).abs() < 1e-9);
//! ```

pub mod damping;
pub mod durbin;

pub use damping::{damping_for_bounded, damping_for_linear_growth};
pub use durbin::{DurbinInverter, InversionResult, InverterOptions};
