//! Property-based tests for the numerical Laplace inversion: random
//! exponential mixtures (the transform family the RRL method actually
//! produces — rational with real negative poles, possibly plus a pole at 0)
//! must invert to their known time-domain values.

use proptest::prelude::*;
use regenr_laplace::{damping_for_bounded, damping_for_linear_growth, DurbinInverter};
use regenr_numeric::Complex64;

/// A random mixture `f(t) = Σ_i c_i e^{-a_i t}` with `c_i ≥ 0`, plus an
/// optional constant term — shapes like TRR of a dependability model.
#[derive(Clone, Debug)]
struct Mixture {
    constant: f64,
    modes: Vec<(f64, f64)>, // (weight, decay rate)
}

impl Mixture {
    fn value(&self, t: f64) -> f64 {
        self.constant
            + self
                .modes
                .iter()
                .map(|&(c, a)| c * (-a * t).exp())
                .sum::<f64>()
    }

    fn transform(&self, s: Complex64) -> Complex64 {
        let mut acc = Complex64::from_real(self.constant) / s;
        for &(c, a) in &self.modes {
            acc += Complex64::from_real(c) / (s + a);
        }
        acc
    }

    fn bound(&self) -> f64 {
        self.constant + self.modes.iter().map(|&(c, _)| c).sum::<f64>()
    }
}

fn arb_mixture() -> impl Strategy<Value = Mixture> {
    (
        0.0f64..1.0,
        prop::collection::vec((0.01f64..2.0, 0.01f64..5.0), 1..5),
    )
        .prop_map(|(constant, modes)| Mixture { constant, modes })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Bounded-mode inversion (the TRR path) recovers random mixtures.
    #[test]
    fn inverts_exponential_mixtures(m in arb_mixture(), t in 0.05f64..30.0) {
        let eps = 1e-10;
        let inv = DurbinInverter::default();
        let t_period = inv.opts.t_multiplier * t;
        let a = damping_for_bounded(eps, m.bound(), t_period);
        let r = inv.invert(|s| m.transform(s), t, a, eps / 100.0);
        let want = m.value(t);
        prop_assert!(r.converged, "did not converge at t={t}");
        prop_assert!((r.value - want).abs() < 1e-8 * want.abs().max(1.0),
            "t={t}: {} vs {want}", r.value);
    }

    /// Integral-mode inversion (the C(t) = t·MRR(t) path) recovers the
    /// running integral of random mixtures.
    #[test]
    fn inverts_integrals_of_mixtures(m in arb_mixture(), t in 0.1f64..20.0) {
        let eps = 1e-9;
        let inv = DurbinInverter::default();
        let t_period = inv.opts.t_multiplier * t;
        // ∫₀ᵗ f grows at most like bound()·t.
        let a = damping_for_linear_growth(eps, m.bound(), t, t_period);
        let r = inv.invert(|s| m.transform(s) / s, t, a, eps * t / 100.0);
        // ∫₀ᵗ (k + Σ c e^{-aτ}) dτ = k·t + Σ (c/a)(1 − e^{-at}).
        let want = m.constant * t
            + m.modes.iter().map(|&(c, a)| c / a * (1.0 - (-a * t).exp())).sum::<f64>();
        prop_assert!(r.converged);
        prop_assert!((r.value - want).abs() < 1e-7 * want.abs().max(1.0),
            "t={t}: {} vs {want}", r.value);
    }

    /// The damping parameters satisfy their defining discretization-error
    /// equations for random budgets.
    #[test]
    fn damping_solves_defining_equation(
        eps in 1e-14f64..1e-3, fmax in 1e-3f64..100.0, t in 0.01f64..1e5,
    ) {
        let tt = 8.0 * t;
        let a = damping_for_bounded(eps, fmax, tt);
        let u = (-2.0 * a * tt).exp();
        let err = fmax * u / (1.0 - u);
        prop_assert!((err - eps / 4.0).abs() < 1e-6 * eps, "bounded: {err} vs {}", eps / 4.0);

        let a2 = damping_for_linear_growth(eps, fmax, t, tt);
        let u2 = (-2.0 * a2 * tt).exp();
        let err2 = fmax * ((t + 2.0 * tt) * u2 - t * u2 * u2) / ((1.0 - u2) * (1.0 - u2));
        let budget = eps * t / 4.0;
        prop_assert!((err2 - budget).abs() < 1e-6 * budget, "linear: {err2} vs {budget}");
    }
}
