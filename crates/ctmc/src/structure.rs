//! Structural analysis: absorbing states and strong connectivity.
//!
//! The paper's method requires `Ω = S ∪ {f_1,…,f_A}` with the `f_i` absorbing
//! and `S` strongly connected (every state of `S` reachable from every other
//! within `S`). [`analyze`] verifies exactly this, using an iterative Tarjan
//! SCC pass (explicit stack — RAID models reach >10⁴ states, deep recursion
//! would overflow).

use crate::chain::{Ctmc, CtmcError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`analyze`] runs (monotone, never reset).
///
/// The Tarjan pass is `O(n + nnz)` and callers holding cached results (the
/// engine's `ChainFacts` pool) are expected to share them instead of
/// re-analyzing; this diagnostic counter lets tests assert exactly that —
/// "structure analysis ran once per distinct chain" — without instrumenting
/// every call site.
static ANALYSIS_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of times [`analyze`] has run in this process.
pub fn analysis_runs() -> u64 {
    ANALYSIS_RUNS.load(Ordering::Relaxed)
}

/// Result of [`analyze`].
#[derive(Clone, Debug)]
pub struct StructureInfo {
    /// Indices of absorbing states (`A` of the paper), ascending.
    pub absorbing: Vec<usize>,
    /// Number of SCCs among the non-absorbing states.
    pub transient_sccs: usize,
    /// `true` when every non-absorbing state can reach some absorbing state
    /// (vacuously true when there are none).
    pub absorbing_reachable: bool,
}

impl StructureInfo {
    /// `true` when the chain satisfies the paper's assumptions.
    pub fn satisfies_paper_assumptions(&self) -> bool {
        self.transient_sccs <= 1
    }

    /// Whether the chain is irreducible in the paper's sense (`A = 0`).
    pub fn is_irreducible(&self) -> bool {
        self.absorbing.is_empty() && self.transient_sccs == 1
    }
}

/// Analyzes the structure of a chain and checks the paper's assumptions.
///
/// Returns an error when the non-absorbing part splits into several SCCs, or
/// when initial mass sits on an absorbing state (`P[X(0)=f_i] = 0` in the
/// paper).
pub fn analyze(ctmc: &Ctmc) -> Result<StructureInfo, CtmcError> {
    ANALYSIS_RUNS.fetch_add(1, Ordering::Relaxed);
    let n = ctmc.n_states();
    let absorbing = ctmc.absorbing_states();
    let is_absorbing = {
        let mut v = vec![false; n];
        for &a in &absorbing {
            v[a] = true;
        }
        v
    };
    for (i, &p) in ctmc.initial().iter().enumerate() {
        if p > 0.0 && is_absorbing[i] {
            return Err(CtmcError::InitialMassOnAbsorbing { state: i });
        }
    }

    let sccs = tarjan_scc_restricted(ctmc, &is_absorbing);
    let info = StructureInfo {
        absorbing_reachable: absorbing_reachable(ctmc, &is_absorbing),
        transient_sccs: sccs,
        absorbing,
    };
    if info.transient_sccs > 1 {
        return Err(CtmcError::NotStronglyConnected {
            components: info.transient_sccs,
        });
    }
    Ok(info)
}

/// Iterative Tarjan SCC count over the subgraph of non-absorbing states.
fn tarjan_scc_restricted(ctmc: &Ctmc, skip: &[bool]) -> usize {
    let n = ctmc.n_states();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS state: (node, edge iterator position).
    for start in 0..n {
        if skip[start] || index[start] != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ = |v: usize| -> Vec<usize> {
            ctmc.generator()
                .row(v)
                .filter(|&(j, rate)| j != v && rate > 0.0 && !skip[j])
                .map(|(j, _)| j)
                .collect()
        };
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, succ(start), 0));

        while let Some((v, neighbours, pos)) = call_stack.last_mut() {
            if *pos < neighbours.len() {
                let w = neighbours[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    let w_succ = succ(w);
                    call_stack.push((w, w_succ, 0));
                } else if on_stack[w] {
                    let lv = low[*v].min(index[w]);
                    low[*v] = lv;
                }
            } else {
                let v = *v;
                call_stack.pop();
                if let Some((parent, _, _)) = call_stack.last() {
                    let lp = low[*parent].min(low[v]);
                    low[*parent] = lp;
                }
                if low[v] == index[v] {
                    scc_count += 1;
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    scc_count
}

/// Checks every non-absorbing state can reach an absorbing one (reverse BFS
/// from the absorbing set). Vacuously true with no absorbing states.
fn absorbing_reachable(ctmc: &Ctmc, is_absorbing: &[bool]) -> bool {
    let n = ctmc.n_states();
    if !is_absorbing.iter().any(|&a| a) {
        return true;
    }
    // Build reverse adjacency implicitly via the transpose.
    let qt = ctmc.generator().transpose();
    let mut seen = is_absorbing.to_vec();
    let mut queue: Vec<usize> = (0..n).filter(|&i| is_absorbing[i]).collect();
    while let Some(v) = queue.pop() {
        for (j, rate) in qt.row(v) {
            if rate > 0.0 && !seen[j] {
                seen[j] = true;
                queue.push(j);
            }
        }
    }
    seen.iter().all(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irreducible_two_state() {
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 1.0), (1, 0, 2.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap();
        let info = analyze(&c).unwrap();
        assert!(info.is_irreducible());
        assert!(info.satisfies_paper_assumptions());
        assert!(info.absorbing.is_empty());
    }

    #[test]
    fn absorbing_chain_structure() {
        // 0 <-> 1 -> 2 (absorbing)
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 0.1)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        let info = analyze(&c).unwrap();
        assert_eq!(info.absorbing, vec![2]);
        assert_eq!(info.transient_sccs, 1);
        assert!(info.absorbing_reachable);
        assert!(!info.is_irreducible());
    }

    #[test]
    fn split_transient_part_rejected() {
        // 0 -> 2, 1 -> 2: states 0 and 1 are separate singleton SCCs.
        let c = Ctmc::from_rates(
            3,
            &[(0, 2, 1.0), (1, 2, 1.0)],
            vec![0.5, 0.5, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        let err = analyze(&c);
        assert!(matches!(
            err,
            Err(CtmcError::NotStronglyConnected { components: 2 })
        ));
    }

    #[test]
    fn initial_mass_on_absorbing_rejected() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![0.5, 0.5], vec![0.0, 1.0]).unwrap();
        assert!(matches!(
            analyze(&c),
            Err(CtmcError::InitialMassOnAbsorbing { state: 1 })
        ));
    }

    #[test]
    fn big_cycle_is_one_scc() {
        let n = 500;
        let mut rates = Vec::new();
        for i in 0..n {
            rates.push((i, (i + 1) % n, 1.0));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let c = Ctmc::from_rates(n, &rates, init, vec![0.0; n]).unwrap();
        let info = analyze(&c).unwrap();
        assert!(info.is_irreducible());
    }

    #[test]
    fn chain_with_unreachable_absorbing_ok() {
        // 0 <-> 1, plus isolated absorbing state 2 never entered: the
        // "reach absorbing" diagnostic is false but structure is still legal.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 1.0)],
            vec![1.0, 0.0, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        let info = analyze(&c).unwrap();
        assert_eq!(info.absorbing, vec![2]);
        assert!(!info.absorbing_reachable);
    }
}
