//! Diagnostics: model statistics and Graphviz export.
//!
//! Reconstructing a published model from prose (as done for the RAID chain)
//! needs inspection tooling; these helpers render small chains as DOT graphs
//! and summarize large ones.

use crate::chain::Ctmc;
use std::fmt::Write as _;

/// Summary statistics of a chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CtmcStats {
    /// Number of states.
    pub n_states: usize,
    /// Number of off-diagonal transitions.
    pub n_transitions: usize,
    /// Maximum exit rate (`Λ` lower bound).
    pub max_exit_rate: f64,
    /// Minimum non-zero exit rate (stiffness indicator together with max).
    pub min_exit_rate: f64,
    /// Number of absorbing states.
    pub n_absorbing: usize,
    /// Largest reward rate.
    pub r_max: f64,
}

impl CtmcStats {
    /// Stiffness ratio `max exit rate / min non-zero exit rate` (∞-free:
    /// returns 1 for chains without transitions).
    pub fn stiffness(&self) -> f64 {
        if self.min_exit_rate > 0.0 {
            self.max_exit_rate / self.min_exit_rate
        } else {
            1.0
        }
    }
}

/// Computes summary statistics.
pub fn stats(ctmc: &Ctmc) -> CtmcStats {
    let n = ctmc.n_states();
    let mut n_transitions = 0usize;
    let mut max_exit: f64 = 0.0;
    let mut min_exit = f64::INFINITY;
    let mut n_absorbing = 0usize;
    for i in 0..n {
        let e = ctmc.exit_rate(i);
        if e == 0.0 {
            n_absorbing += 1;
        } else {
            max_exit = max_exit.max(e);
            min_exit = min_exit.min(e);
        }
        n_transitions += ctmc.generator().row(i).filter(|&(j, _)| j != i).count();
    }
    CtmcStats {
        n_states: n,
        n_transitions,
        max_exit_rate: max_exit,
        min_exit_rate: if min_exit.is_finite() { min_exit } else { 0.0 },
        n_absorbing,
        r_max: ctmc.max_reward(),
    }
}

/// Renders the chain as a Graphviz `digraph` (small models only; the output
/// grows with nnz). States are labelled `i [r=reward]`; edges carry rates.
pub fn to_dot(ctmc: &Ctmc, names: Option<&[String]>) -> String {
    let mut out = String::from("digraph ctmc {\n  rankdir=LR;\n");
    for i in 0..ctmc.n_states() {
        let label = match names {
            Some(ns) => ns[i].clone(),
            None => format!("s{i}"),
        };
        let shape = if ctmc.exit_rate(i) == 0.0 {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  {i} [label=\"{label}\\nr={}\" shape={shape}];",
            ctmc.rewards()[i]
        );
    }
    for (i, j, rate) in ctmc.generator().iter() {
        if i != j {
            let _ = writeln!(out, "  {i} -> {j} [label=\"{rate:.3e}\"];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc::from_rates(
            3,
            &[(0, 1, 0.5), (1, 0, 2.0), (1, 2, 0.1)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.5, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn stats_are_correct() {
        let s = stats(&chain());
        assert_eq!(s.n_states, 3);
        assert_eq!(s.n_transitions, 3);
        assert_eq!(s.max_exit_rate, 2.1);
        assert_eq!(s.min_exit_rate, 0.5);
        assert_eq!(s.n_absorbing, 1);
        assert_eq!(s.r_max, 1.0);
        assert!((s.stiffness() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = to_dot(&chain(), None);
        assert!(dot.starts_with("digraph ctmc {"));
        assert!(dot.ends_with("}\n"));
        // One node line per state, one edge line per transition.
        assert_eq!(dot.matches("shape=circle").count(), 2);
        assert_eq!(dot.matches("shape=doublecircle").count(), 1);
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("s1"));
    }

    #[test]
    fn dot_with_custom_names() {
        let names: Vec<String> = ["up", "degraded", "failed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let dot = to_dot(&chain(), Some(&names));
        assert!(dot.contains("degraded"));
        assert!(!dot.contains("s1 "));
    }

    #[test]
    fn stiffness_of_transition_free_chain() {
        let c = Ctmc::from_rates(2, &[], vec![1.0, 0.0], vec![0.0; 2]).unwrap();
        assert_eq!(stats(&c).stiffness(), 1.0);
    }
}
