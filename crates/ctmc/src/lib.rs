//! Continuous-time Markov chain representation and model compilation.
//!
//! The paper analyses rewarded CTMCs `X` with state space `Ω = S ∪ {f_1…f_A}`
//! where the `f_i` are absorbing, all states in `S` are strongly connected,
//! and a non-negative reward rate `r_i` is attached to every state. This crate
//! provides:
//!
//! * [`Ctmc`] — validated sparse generator + initial distribution + rewards,
//! * [`structure`] — Tarjan SCC analysis verifying the paper's structural
//!   assumptions (absorbing detection, strong connectivity of `S`),
//! * [`uniformize`] — randomization `P = I + Q/Λ` with the transposed matrix
//!   precomputed for gather-style propagation,
//! * [`build`] — a small "stochastic model compiler": implement [`ModelSpec`]
//!   for your high-level model (state struct + transition function) and
//!   [`CtmcBuilder`] explores the reachable state space breadth-first into a
//!   [`Ctmc`] (this replaces the authors' in-house modeling tool).

//! ```
//! use regenr_ctmc::{CtmcBuilder, ModelSpec};
//!
//! // A birth-death model defined at the high level and compiled to a CTMC.
//! struct Queue { cap: u32 }
//! impl ModelSpec for Queue {
//!     type State = u32;
//!     fn initial(&self) -> Vec<(u32, f64)> { vec![(0, 1.0)] }
//!     fn transitions(&self, &n: &u32) -> Vec<(u32, f64)> {
//!         let mut out = Vec::new();
//!         if n < self.cap { out.push((n + 1, 1.0)); }
//!         if n > 0 { out.push((n - 1, 2.0)); }
//!         out
//!     }
//!     fn reward(&self, &n: &u32) -> f64 { n as f64 }
//! }
//! let built = CtmcBuilder::default().explore(&Queue { cap: 5 }).unwrap();
//! assert_eq!(built.ctmc.n_states(), 6);
//! ```

pub mod build;
pub mod chain;
pub mod export;
pub mod structure;
pub mod uniformize;

pub use build::{BuiltModel, CtmcBuilder, ModelSpec};
pub use chain::{Ctmc, CtmcError, RewardedCtmc};
pub use export::{stats, to_dot, CtmcStats};
pub use structure::{analysis_runs, analyze, StructureInfo};
pub use uniformize::{Stepper, Uniformized};
