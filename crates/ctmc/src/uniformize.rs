//! Randomization (uniformization) of a CTMC.
//!
//! Given a CTMC with generator `Q` and a rate `Λ ≥ max_i |q_ii|`, the
//! randomized DTMC has transition matrix `P = I + Q/Λ`; the CTMC at time `t`
//! equals the DTMC observed at a Poisson(`Λt`) number of steps. Every solver
//! in the workspace starts from a [`Uniformized`] view.

use crate::chain::Ctmc;
use regenr_sparse::{
    effective_threads, ChunkPlan, CsrMatrix, KernelChoice, KernelKind, ParallelConfig, WorkerPool,
};
use std::sync::{Arc, Mutex};

/// Shared memo of nnz-balanced [`ChunkPlan`]s for `Pᵀ`, keyed by
/// `(chunk count, kernel choice)` — a plan carries the resolved
/// structure-adaptive kernel layout, so forcing different kernels yields
/// distinct plans. Wrapped in an `Arc` so clones of a [`Uniformized`] share
/// the same plans (they describe the same matrix); the inner list is tiny —
/// one entry per distinct configuration ever requested.
#[derive(Clone, Debug, Default)]
struct PlanCache(Arc<Mutex<PlanList>>);

/// `((chunk count, kernel choice), plan)` pairs; linear scan — a handful of
/// entries at most.
type PlanList = Vec<((usize, KernelChoice), Arc<ChunkPlan>)>;

impl PlanCache {
    fn get_or_plan(
        &self,
        matrix: &CsrMatrix,
        chunks: usize,
        choice: KernelChoice,
    ) -> Arc<ChunkPlan> {
        let mut plans = regenr_sparse::pool::lock(&self.0);
        if let Some((_, plan)) = plans.iter().find(|(key, _)| *key == (chunks, choice)) {
            return plan.clone();
        }
        let plan = Arc::new(ChunkPlan::with_kernel(matrix, chunks, choice));
        plans.push(((chunks, choice), plan.clone()));
        plan
    }
}

/// A uniformized view of a CTMC: the randomized DTMC matrix `P`, its transpose
/// (for gather-style products) and the randomization rate `Λ`.
#[derive(Clone, Debug)]
pub struct Uniformized {
    /// Randomization rate `Λ`.
    pub lambda: f64,
    /// `P = I + Q/Λ` (row-stochastic).
    pub p: CsrMatrix,
    /// `Pᵀ`, used to propagate row distributions as `π ← Pᵀπ`.
    pub p_t: CsrMatrix,
    /// Chunk plans for `p_t`, computed once per chunk count (see
    /// [`Uniformized::stepper`]).
    plans: PlanCache,
}

/// A DTMC stepping kernel bound to one uniformization: the chunk plan — and
/// with it the structure-adaptive SpMV kernel the plan resolved — is
/// computed **once** (and cached on the [`Uniformized`]) instead of per
/// product, and repeated steps run on the persistent shared [`WorkerPool`] —
/// the execution shape every SpMV-bound solver loop wants. Obtain one from
/// [`Uniformized::stepper`]; results are bitwise identical to the serial
/// product regardless of kernel, pool size, or chunk count.
pub struct Stepper<'a> {
    p_t: &'a CsrMatrix,
    /// Single-chunk plans run the kernel directly on the calling thread
    /// with zero dispatch overhead (matrix below the parallel threshold, or
    /// one thread requested).
    plan: Arc<ChunkPlan>,
    pool: &'static Arc<WorkerPool>,
}

impl Stepper<'_> {
    /// One DTMC step: `out = Pᵀ·π`.
    pub fn step(&self, pi: &[f64], out: &mut [f64]) {
        self.p_t.mul_vec_pooled_into(pi, out, &self.plan, self.pool);
    }

    /// Whether steps are dispatched to the worker pool (`false` ⇒ the
    /// kernel runs serially on the calling thread).
    pub fn is_pooled(&self) -> bool {
        self.plan.len() > 1
    }

    /// The structure-adaptive kernel steps execute (reported in the
    /// engine's per-cell output).
    pub fn kernel_kind(&self) -> KernelKind {
        self.plan.kernel_kind()
    }
}

impl Uniformized {
    /// Uniformizes at `Λ = (1+θ) · max_i |q_ii|`.
    ///
    /// `θ = 0` is the paper's choice (rate exactly the maximum output rate).
    /// Strictly positive `θ` guarantees an aperiodic DTMC (every state gets a
    /// self-loop), which matters for steady-state detection. If the chain has
    /// no transitions at all (`max = 0`), `Λ = 1` is used.
    pub fn new(ctmc: &Ctmc, theta: f64) -> Self {
        assert!(theta >= 0.0, "safety factor must be non-negative");
        let max_rate = ctmc.generator().max_abs_diag();
        let lambda = if max_rate == 0.0 {
            1.0
        } else {
            max_rate * (1.0 + theta)
        };
        Self::with_rate(ctmc, lambda)
    }

    /// Uniformizes at an explicit rate `Λ ≥ max_i |q_ii|`.
    ///
    /// # Panics
    /// If `Λ` is below the maximum output rate (the resulting matrix would
    /// have negative diagonal entries).
    pub fn with_rate(ctmc: &Ctmc, lambda: f64) -> Self {
        let max_rate = ctmc.generator().max_abs_diag();
        assert!(
            lambda >= max_rate * (1.0 - 1e-12),
            "uniformization rate {lambda} below max output rate {max_rate}"
        );
        let p = ctmc.generator().identity_plus_scaled(1.0 / lambda);
        debug_assert!(p.is_row_stochastic(1e-9));
        let p_t = p.transpose();
        Uniformized {
            lambda,
            p,
            p_t,
            plans: PlanCache::default(),
        }
    }

    /// A stepping kernel with its chunk plan (and structure-adaptive SpMV
    /// kernel) resolved once under `cfg` (see [`Stepper`]). Solver loops
    /// should build this once per solve and call [`Stepper::step`] per
    /// product; [`Uniformized::step_into`] re-plans on every call.
    pub fn stepper(&self, cfg: &ParallelConfig) -> Stepper<'_> {
        let threads = effective_threads(cfg.threads);
        let chunks = if self.p_t.nnz() >= cfg.min_nnz && threads > 1 {
            threads
        } else {
            // Below the parallel threshold the kernel still runs (its serial
            // wins are exactly what the threshold regime keeps), just
            // without pool dispatch.
            1
        };
        Stepper {
            p_t: &self.p_t,
            plan: self.plans.get_or_plan(&self.p_t, chunks, cfg.kernel),
            pool: WorkerPool::global(),
        }
    }

    /// The kernel a stepper under `cfg` executes — for reports; resolves
    /// (and caches) the plan exactly as [`Uniformized::stepper`] would.
    pub fn kernel_for(&self, cfg: &ParallelConfig) -> KernelKind {
        self.stepper(cfg).kernel_kind()
    }

    /// One DTMC step: `out = πᵀP` computed as `Pᵀ·π` (gather), optionally in
    /// parallel. Convenience wrapper around [`Uniformized::stepper`] for
    /// one-shot steps.
    pub fn step_into(&self, pi: &[f64], out: &mut [f64], cfg: &ParallelConfig) {
        self.stepper(cfg).step(pi, out);
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.nrows()
    }

    /// Approximate heap footprint in bytes: both CSR matrices by allocator
    /// capacity (see [`CsrMatrix::heap_bytes`]) plus whatever kernel
    /// layouts the plan cache holds **at call time**. Used by bounded
    /// artifact caches for byte accounting; audited against a counting
    /// allocator by the engine's byte-accounting test. Caveat: caches
    /// charge at insertion, when the plan cache is typically still empty —
    /// layouts built by later steppers (bounded at ≤ 2× the `Pᵀ` entries
    /// per cached configuration by the kernels' fill guard) are visible to
    /// a re-query but not to an already-recorded charge (see the ROADMAP
    /// re-accounting note).
    pub fn approx_bytes(&self) -> usize {
        self.p.heap_bytes() + self.p_t.heap_bytes() + self.plan_bytes()
    }

    /// Heap bytes currently held by cached chunk plans' kernel layouts.
    pub fn plan_bytes(&self) -> usize {
        let plans = regenr_sparse::pool::lock(&self.plans.0);
        plans.iter().map(|(_, plan)| plan.kernel_bytes()).sum()
    }

    /// Asserts this uniformization is plausibly built from `ctmc`: same
    /// state count and a rate at least the chain's maximum exit rate.
    /// Solvers accepting a caller-supplied (cached) uniformization call this
    /// to catch artifact/chain mix-ups cheaply (`O(n)`, not `O(nnz)`).
    ///
    /// # Panics
    /// If the state counts differ or the rate is below the maximum exit
    /// rate (either means the artifact cannot belong to this chain).
    pub fn assert_built_from(&self, ctmc: &Ctmc) {
        assert_eq!(
            self.n_states(),
            ctmc.n_states(),
            "uniformization does not match the chain"
        );
        assert!(
            self.lambda >= ctmc.generator().max_abs_diag() * (1.0 - 1e-12),
            "uniformization rate {} below the chain's max exit rate (artifact from a different chain?)",
            self.lambda
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc::from_rates(
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (2, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.5, 0.0],
        )
        .unwrap()
    }

    #[test]
    fn rate_is_max_exit_rate() {
        let u = Uniformized::new(&chain(), 0.0);
        assert_eq!(u.lambda, 4.0);
        assert!(u.p.is_row_stochastic(1e-12));
        // P[1][1] = 1 - 4/4 = 0, P[0][0] = 1 - 2/4 = 0.5.
        assert_eq!(u.p.get(1, 1), 0.0);
        assert_eq!(u.p.get(0, 0), 0.5);
        assert_eq!(u.p.get(0, 1), 0.5);
    }

    #[test]
    fn safety_factor_adds_self_loops() {
        let u = Uniformized::new(&chain(), 0.1);
        assert!((u.lambda - 4.4).abs() < 1e-12);
        // Every diagonal entry now strictly positive => aperiodic.
        for i in 0..3 {
            assert!(u.p.get(i, i) > 0.0, "state {i} lacks self-loop");
        }
    }

    #[test]
    fn step_preserves_mass() {
        let u = Uniformized::new(&chain(), 0.0);
        let cfg = ParallelConfig::default();
        let mut pi = vec![1.0, 0.0, 0.0];
        let mut next = vec![0.0; 3];
        for _ in 0..50 {
            u.step_into(&pi, &mut next, &cfg);
            std::mem::swap(&mut pi, &mut next);
            let mass: f64 = pi.iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn absorbing_only_chain_gets_unit_rate() {
        let c = Ctmc::from_rates(2, &[], vec![1.0, 0.0], vec![0.0, 0.0]).unwrap();
        let u = Uniformized::new(&c, 0.0);
        assert_eq!(u.lambda, 1.0);
        assert_eq!(u.p.get(0, 0), 1.0);
        assert_eq!(u.p.get(1, 1), 1.0);
    }

    #[test]
    #[should_panic]
    fn too_small_rate_panics() {
        Uniformized::with_rate(&chain(), 1.0);
    }

    #[test]
    fn stepper_matches_step_into_and_caches_plans() {
        let u = Uniformized::new(&chain(), 0.0);
        // Force the pooled path even on this tiny chain.
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 4,
            kernel: KernelChoice::Auto,
        };
        let stepper = u.stepper(&cfg);
        assert!(stepper.is_pooled());
        let pi = [0.2, 0.3, 0.5];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        stepper.step(&pi, &mut a);
        u.p_t.mul_vec_into(&pi, &mut b);
        assert_eq!(a, b, "pooled step must be bitwise identical to serial");
        // Same configuration → the cached plan is shared (same allocation).
        let again = u.stepper(&cfg);
        assert!(
            Arc::ptr_eq(&stepper.plan, &again.plan),
            "plan must be computed once per matrix"
        );
        // A forced kernel resolves its own plan, and tiny matrices
        // auto-select the generic kernel.
        let forced = u.stepper(&ParallelConfig {
            kernel: KernelChoice::Sliced,
            ..cfg
        });
        assert!(!Arc::ptr_eq(&stepper.plan, &forced.plan));
        assert_eq!(forced.kernel_kind(), KernelKind::Sliced);
        assert_eq!(stepper.kernel_kind(), KernelKind::Generic);
        let mut c = vec![0.0; 3];
        forced.step(&pi, &mut c);
        assert_eq!(a, c, "forced kernel must be bitwise identical");
        // Below the nnz threshold the stepper runs serially.
        assert!(!u.stepper(&ParallelConfig::default()).is_pooled());
    }
}
