//! Randomization (uniformization) of a CTMC.
//!
//! Given a CTMC with generator `Q` and a rate `Λ ≥ max_i |q_ii|`, the
//! randomized DTMC has transition matrix `P = I + Q/Λ`; the CTMC at time `t`
//! equals the DTMC observed at a Poisson(`Λt`) number of steps. Every solver
//! in the workspace starts from a [`Uniformized`] view.

use crate::chain::Ctmc;
use regenr_sparse::{
    effective_threads, Backend, BackendChoice, ChunkPlan, CsrMatrix, IndexWidthChoice,
    KernelChoice, KernelKind, ParallelConfig, SellSort, WorkerPool, MAX_RHS_BLOCK,
};
use std::sync::{Arc, Mutex};

/// Callback invoked with the layout byte count of every chunk plan built
/// *after* registration — how a byte-bounded artifact cache holding this
/// uniformization learns about lazily built kernel layouts (they
/// materialize on first stepper construction, typically long after the
/// artifact was inserted and charged). See
/// [`Uniformized::set_plan_bytes_hook`].
type PlanBytesHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Shared memo of nnz-balanced [`ChunkPlan`]s for `Pᵀ`, keyed by
/// [`PlanKey`] `(chunks, kernel, backend, block, index width, σ-sort)` — a
/// plan carries the resolved structure-adaptive kernel layout and execution
/// backend, so forcing different kernels, backends, or layout options
/// yields distinct plans. Wrapped in an `Arc` so clones of a
/// [`Uniformized`] share the same plans (they describe the same matrix);
/// the inner list is tiny — one entry per distinct configuration ever
/// requested.
#[derive(Clone, Debug, Default)]
struct PlanCache(Arc<Mutex<PlanCacheInner>>);

/// Everything that distinguishes one cached plan from another: the chunk
/// decomposition, the kernel/backend resolution, the blocked-RHS width the
/// stepper will drive it at, and the layout options (column-index storage
/// width, SELL-σ sorting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PlanKey {
    chunks: usize,
    kernel: KernelChoice,
    backend: BackendChoice,
    block: usize,
    width: IndexWidthChoice,
    sort: SellSort,
}

/// `(key, plan)` pairs; linear scan — a handful of entries at most.
type PlanList = Vec<(PlanKey, Arc<ChunkPlan>)>;

#[derive(Default)]
struct PlanCacheInner {
    plans: PlanList,
    hook: Option<PlanBytesHook>,
}

impl std::fmt::Debug for PlanCacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCacheInner")
            .field("plans", &self.plans)
            .field("hook", &self.hook.as_ref().map(|_| "…"))
            .finish()
    }
}

impl PlanCache {
    fn get_or_plan(&self, matrix: &CsrMatrix, key: PlanKey) -> Arc<ChunkPlan> {
        let (plan, charge) = {
            let mut inner = regenr_sparse::pool::lock(&self.0);
            if let Some((_, plan)) = inner.plans.iter().find(|(k, _)| *k == key) {
                return plan.clone();
            }
            let plan = Arc::new(ChunkPlan::with_options(
                matrix,
                key.chunks,
                key.kernel,
                key.backend,
                key.width,
                key.sort,
            ));
            inner.plans.push((key, plan.clone()));
            let bytes = plan.kernel_bytes();
            (plan, (bytes > 0).then(|| inner.hook.clone()).flatten())
        };
        // Invoke the re-accounting hook *after* releasing the plan lock:
        // the hook takes its owner's pool lock, and nothing holding a pool
        // lock may wait on the plan lock in return.
        if let Some(hook) = charge {
            hook(plan.kernel_bytes());
        }
        plan
    }
}

/// A uniformized view of a CTMC: the randomized DTMC matrix `P`, its transpose
/// (for gather-style products) and the randomization rate `Λ`.
#[derive(Clone, Debug)]
pub struct Uniformized {
    /// Randomization rate `Λ`.
    pub lambda: f64,
    /// `P = I + Q/Λ` (row-stochastic).
    pub p: CsrMatrix,
    /// `Pᵀ`, used to propagate row distributions as `π ← Pᵀπ`.
    pub p_t: CsrMatrix,
    /// Chunk plans for `p_t`, computed once per chunk count (see
    /// [`Uniformized::stepper`]).
    plans: PlanCache,
    /// Source position in `p`'s value array for each `p_t` entry — the
    /// transpose permutation, computed lazily by the first
    /// [`Uniformized::rebind_values`] and shared with every rebound
    /// descendant (same pattern ⇒ same permutation). Later rebinds fill
    /// `Pᵀ` with a sequential-write gather instead of re-running the
    /// transpose counting sort.
    t_perm: std::sync::OnceLock<Arc<Vec<u32>>>,
}

/// A DTMC stepping kernel bound to one uniformization: the chunk plan — and
/// with it the structure-adaptive SpMV kernel the plan resolved — is
/// computed **once** (and cached on the [`Uniformized`]) instead of per
/// product, and repeated steps run on the persistent shared [`WorkerPool`] —
/// the execution shape every SpMV-bound solver loop wants. Obtain one from
/// [`Uniformized::stepper`]; results are bitwise identical to the serial
/// product regardless of kernel, pool size, or chunk count.
pub struct Stepper<'a> {
    p_t: &'a CsrMatrix,
    /// Single-chunk plans run the kernel directly on the calling thread
    /// with zero dispatch overhead (matrix below the parallel threshold, or
    /// one thread requested).
    plan: Arc<ChunkPlan>,
    pool: &'static Arc<WorkerPool>,
    /// Blocked-RHS width `k` this stepper was planned for: how many
    /// interleaved distributions one [`Stepper::step_block`] pass moves.
    block: usize,
}

impl Stepper<'_> {
    /// One DTMC step: `out = Pᵀ·π`.
    pub fn step(&self, pi: &[f64], out: &mut [f64]) {
        self.p_t.mul_vec_pooled_into(pi, out, &self.plan, self.pool);
    }

    /// One blocked DTMC step over `k = self.block()` interleaved
    /// distributions (`pi[s*k + j]` is column `j`'s mass in state `s`):
    /// every column is stepped exactly as [`Stepper::step`] would step it
    /// alone — bitwise identical per column — but the matrix streams
    /// through memory once for all `k`.
    pub fn step_block(&self, pi: &[f64], out: &mut [f64]) {
        self.p_t
            .mul_mat_pooled_into(pi, out, &self.plan, self.pool, self.block);
    }

    /// The blocked-RHS width this stepper was planned for (1 = serial).
    pub fn block(&self) -> usize {
        self.block
    }

    /// The resolved column-index storage width in bits (16 or 32).
    pub fn index_width(&self) -> u8 {
        self.plan.index_width()
    }

    /// Whether the resolved layout is SELL-σ row-sorted.
    pub fn sorted(&self) -> bool {
        self.plan.sorted()
    }

    /// Whether steps are dispatched to the worker pool (`false` ⇒ the
    /// kernel runs serially on the calling thread).
    pub fn is_pooled(&self) -> bool {
        self.plan.len() > 1
    }

    /// The structure-adaptive kernel steps execute (reported in the
    /// engine's per-cell output).
    pub fn kernel_kind(&self) -> KernelKind {
        self.plan.kernel_kind()
    }

    /// The execution backend the kernel runs on (`scalar` unless the
    /// `simd` feature is active and the resolved kernel has a vector
    /// variant the CPU supports) — reported alongside the kernel.
    pub fn backend(&self) -> Backend {
        self.plan.backend()
    }
}

impl Uniformized {
    /// Uniformizes at `Λ = (1+θ) · max_i |q_ii|`.
    ///
    /// `θ = 0` is the paper's choice (rate exactly the maximum output rate).
    /// Strictly positive `θ` guarantees an aperiodic DTMC (every state gets a
    /// self-loop), which matters for steady-state detection. If the chain has
    /// no transitions at all (`max = 0`), `Λ = 1` is used.
    pub fn new(ctmc: &Ctmc, theta: f64) -> Self {
        assert!(theta >= 0.0, "safety factor must be non-negative");
        let max_rate = ctmc.generator().max_abs_diag();
        let lambda = if max_rate == 0.0 {
            1.0
        } else {
            max_rate * (1.0 + theta)
        };
        Self::with_rate(ctmc, lambda)
    }

    /// Uniformizes at an explicit rate `Λ ≥ max_i |q_ii|`.
    ///
    /// # Panics
    /// If `Λ` is below the maximum output rate (the resulting matrix would
    /// have negative diagonal entries).
    pub fn with_rate(ctmc: &Ctmc, lambda: f64) -> Self {
        let max_rate = ctmc.generator().max_abs_diag();
        assert!(
            lambda >= max_rate * (1.0 - 1e-12),
            "uniformization rate {lambda} below max output rate {max_rate}"
        );
        let p = ctmc.generator().identity_plus_scaled(1.0 / lambda);
        debug_assert!(p.is_row_stochastic(1e-9));
        let p_t = p.transpose();
        Uniformized {
            lambda,
            p,
            p_t,
            plans: PlanCache::default(),
            t_perm: std::sync::OnceLock::new(),
        }
    }

    /// A stepping kernel with its chunk plan (and structure-adaptive SpMV
    /// kernel) resolved once under `cfg` (see [`Stepper`]). Solver loops
    /// should build this once per solve and call [`Stepper::step`] per
    /// product; [`Uniformized::step_into`] re-plans on every call.
    pub fn stepper(&self, cfg: &ParallelConfig) -> Stepper<'_> {
        self.stepper_block(cfg, 1)
    }

    /// Like [`Uniformized::stepper`] planned for blocked-RHS stepping:
    /// [`Stepper::step_block`] moves `block` interleaved distributions per
    /// streaming pass of `Pᵀ`. Plans are cached per
    /// `(chunks, kernel, backend, block, index width, σ-sort)`, so mixing
    /// serial and blocked steppers over one uniformization never rebuilds
    /// a layout it already has for the same key.
    ///
    /// # Panics
    /// If `block` is 0 or exceeds [`MAX_RHS_BLOCK`].
    pub fn stepper_block(&self, cfg: &ParallelConfig, block: usize) -> Stepper<'_> {
        assert!(
            (1..=MAX_RHS_BLOCK).contains(&block),
            "rhs block {block} out of range"
        );
        let threads = effective_threads(cfg.threads);
        let chunks = if self.p_t.nnz() >= cfg.min_nnz && threads > 1 {
            threads
        } else {
            // Below the parallel threshold the kernel still runs (its serial
            // wins are exactly what the threshold regime keeps), just
            // without pool dispatch.
            1
        };
        let key = PlanKey {
            chunks,
            kernel: cfg.kernel,
            backend: cfg.backend,
            block,
            width: cfg.index_width,
            sort: cfg.sell_sort,
        };
        Stepper {
            p_t: &self.p_t,
            plan: self.plans.get_or_plan(&self.p_t, key),
            pool: WorkerPool::global(),
            block,
        }
    }

    /// One DTMC step: `out = πᵀP` computed as `Pᵀ·π` (gather), optionally in
    /// parallel. Convenience wrapper around [`Uniformized::stepper`] for
    /// one-shot steps.
    pub fn step_into(&self, pi: &[f64], out: &mut [f64], cfg: &ParallelConfig) {
        self.stepper(cfg).step(pi, out);
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.nrows()
    }

    /// Approximate heap footprint in bytes: both CSR matrices by allocator
    /// capacity (see [`CsrMatrix::heap_bytes`]) plus whatever kernel
    /// layouts the plan cache holds **at call time**. Audited against a
    /// counting allocator by the engine's byte-accounting test.
    ///
    /// Byte-bounded caches should charge [`Uniformized::matrix_bytes`] at
    /// insertion and register a [`Uniformized::set_plan_bytes_hook`] for
    /// the lazily built layouts instead of re-querying this total: the sum
    /// of the two always equals this method's answer, with every layout
    /// charged exactly once at the moment it materializes.
    pub fn approx_bytes(&self) -> usize {
        self.matrix_bytes() + self.plan_bytes()
    }

    /// Heap bytes of the two CSR matrices alone (capacity-accounted) —
    /// the part of the footprint that exists at construction time.
    pub fn matrix_bytes(&self) -> usize {
        self.p.heap_bytes() + self.p_t.heap_bytes()
    }

    /// Heap bytes currently held by cached chunk plans' kernel layouts
    /// (bounded at ≤ 2× the `Pᵀ` entries per cached configuration by the
    /// kernels' fill guard).
    pub fn plan_bytes(&self) -> usize {
        let inner = regenr_sparse::pool::lock(&self.plans.0);
        inner
            .plans
            .iter()
            .map(|(_, plan)| plan.kernel_bytes())
            .sum()
    }

    /// Registers the callback that is handed the layout byte count of every
    /// chunk plan built **after** this call (plans already cached — there
    /// are none when an artifact cache registers at insertion — are *not*
    /// replayed; query [`Uniformized::plan_bytes`] for those). This is the
    /// re-accounting hook a byte-bounded artifact cache uses to keep its
    /// `max_bytes` honest: kernel layouts are built lazily on first stepper
    /// construction, after the artifact was inserted and charged, and would
    /// otherwise be invisible to eviction pressure. Clones share the plan
    /// cache and therefore the hook; re-registering replaces it.
    pub fn set_plan_bytes_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        regenr_sparse::pool::lock(&self.plans.0).hook = Some(Arc::new(hook));
    }

    /// Rebuilds this uniformization for a **rate variant** of the chain it
    /// was built from — same sparsity structure, different numbers — while
    /// reusing every cached chunk plan's kernel selection, compact-index
    /// copy, and SELL-σ layout instead of re-deriving them from scratch.
    /// The donor's plans are re-bound to the new `Pᵀ` via
    /// [`ChunkPlan::rebind`] (structure cloned, values refilled), so the
    /// returned artifact answers its first stepper request without a
    /// matrix profile pass or layout build. The plan-bytes hook is **not**
    /// carried over: the new artifact has its own owner (a cache registers
    /// its own hook at insertion), and all rebound layouts exist at
    /// construction time — charge [`Uniformized::approx_bytes`] up front.
    ///
    /// `Λ` is derived exactly as [`Uniformized::new`] would for `ctmc`, so
    /// the result is bitwise identical to a cold `Uniformized::new(ctmc,
    /// theta)` in `lambda`, `p`, and `p_t`; only the plan cache seeding
    /// differs, and rebound layouts embed the same values a fresh build
    /// would.
    ///
    /// # Panics
    /// If `ctmc`'s uniformized matrix has a different sparsity pattern
    /// than this one's (the donor belongs to a structurally different
    /// chain).
    pub fn rebind_values(&self, ctmc: &Ctmc, theta: f64) -> Self {
        assert!(theta >= 0.0, "safety factor must be non-negative");
        let max_rate = ctmc.generator().max_abs_diag();
        let lambda = if max_rate == 0.0 {
            1.0
        } else {
            max_rate * (1.0 + theta)
        };
        // Fill `P = I + Q/Λ` values straight through the donor's pattern: a
        // lockstep walk of each donor `P` row against the corresponding `Q`
        // row. `P`'s pattern is `Q`'s plus a materialized diagonal (see
        // `identity_plus_scaled`), so the only donor entry allowed to miss
        // in `Q` is the diagonal — any other mismatch, or a `Q` entry the
        // donor lacks, means the chains are structurally different and the
        // walk panics rather than rebinding garbage. This replaces a full
        // `identity_plus_scaled` + `transpose` (allocation, counting sort)
        // with two value passes over cloned patterns, which is what makes a
        // delta-warm grid point cheap relative to a cold build.
        let q = ctmc.generator();
        let n = self.p.nrows();
        let scale = 1.0 / lambda;
        assert!(
            q.nrows() == n && self.p.nnz() <= q.nnz() + n,
            "uniformization rebind requires identical sparsity structure"
        );
        let mut vals = vec![0.0; self.p.nnz()];
        for i in 0..n {
            let mut qk = q.row_ptr()[i];
            let qe = q.row_ptr()[i + 1];
            let (ps, pe) = (self.p.row_ptr()[i], self.p.row_ptr()[i + 1]);
            for (&j, v) in self.p.col_idx()[ps..pe].iter().zip(&mut vals[ps..pe]) {
                if qk < qe && q.col_idx()[qk] == j {
                    let x = q.values()[qk] * scale;
                    *v = if j as usize == i { 1.0 + x } else { x };
                    qk += 1;
                } else {
                    // Donor-only entry: must be the materialized diagonal.
                    assert!(
                        j as usize == i,
                        "uniformization rebind requires identical sparsity structure"
                    );
                    *v = 1.0;
                }
            }
            assert!(
                qk == qe,
                "uniformization rebind requires identical sparsity structure"
            );
        }
        let p = self.p.with_values(vals);
        debug_assert!(p.is_row_stochastic(1e-9));
        // `Pᵀ` values via the cached transpose permutation: the donor's
        // `Pᵀ` row_ptr already *is* the counting sort's prefix table, and
        // within a transpose row the entries appear in source-row order —
        // exactly the order a row-major walk of `P` emits them. The
        // permutation is computed once per donor lineage and shared, so
        // every later grid point fills `Pᵀ` with one sequential-write
        // gather pass.
        let src = self
            .t_perm
            .get_or_init(|| {
                let mut next: Vec<usize> = self.p_t.row_ptr()[..n].to_vec();
                let mut src = vec![0u32; self.p.nnz()];
                for i in 0..n {
                    for pk in self.p.row_ptr()[i]..self.p.row_ptr()[i + 1] {
                        let j = self.p.col_idx()[pk] as usize;
                        src[next[j]] = pk as u32;
                        next[j] += 1;
                    }
                }
                Arc::new(src)
            })
            .clone();
        let p_vals = p.values();
        let tvals: Vec<f64> = src.iter().map(|&k| p_vals[k as usize]).collect();
        let p_t = self.p_t.with_values(tvals);
        let plans = PlanCache::default();
        {
            let donor = regenr_sparse::pool::lock(&self.plans.0);
            let mut inner = regenr_sparse::pool::lock(&plans.0);
            for (key, plan) in donor.plans.iter() {
                inner
                    .plans
                    .push((*key, Arc::new(plan.rebind(&self.p_t, &p_t))));
            }
        }
        Uniformized {
            lambda,
            p,
            p_t,
            plans,
            t_perm: std::sync::OnceLock::from(src),
        }
    }

    /// Asserts this uniformization is plausibly built from `ctmc`: same
    /// state count and a rate at least the chain's maximum exit rate.
    /// Solvers accepting a caller-supplied (cached) uniformization call this
    /// to catch artifact/chain mix-ups cheaply (`O(n)`, not `O(nnz)`).
    ///
    /// # Panics
    /// If the state counts differ or the rate is below the maximum exit
    /// rate (either means the artifact cannot belong to this chain).
    pub fn assert_built_from(&self, ctmc: &Ctmc) {
        assert_eq!(
            self.n_states(),
            ctmc.n_states(),
            "uniformization does not match the chain"
        );
        assert!(
            self.lambda >= ctmc.generator().max_abs_diag() * (1.0 - 1e-12),
            "uniformization rate {} below the chain's max exit rate (artifact from a different chain?)",
            self.lambda
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc::from_rates(
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (2, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.5, 0.0],
        )
        .unwrap()
    }

    #[test]
    fn rate_is_max_exit_rate() {
        let u = Uniformized::new(&chain(), 0.0);
        assert_eq!(u.lambda, 4.0);
        assert!(u.p.is_row_stochastic(1e-12));
        // P[1][1] = 1 - 4/4 = 0, P[0][0] = 1 - 2/4 = 0.5.
        assert_eq!(u.p.get(1, 1), 0.0);
        assert_eq!(u.p.get(0, 0), 0.5);
        assert_eq!(u.p.get(0, 1), 0.5);
    }

    #[test]
    fn safety_factor_adds_self_loops() {
        let u = Uniformized::new(&chain(), 0.1);
        assert!((u.lambda - 4.4).abs() < 1e-12);
        // Every diagonal entry now strictly positive => aperiodic.
        for i in 0..3 {
            assert!(u.p.get(i, i) > 0.0, "state {i} lacks self-loop");
        }
    }

    #[test]
    fn step_preserves_mass() {
        let u = Uniformized::new(&chain(), 0.0);
        let cfg = ParallelConfig::default();
        let mut pi = vec![1.0, 0.0, 0.0];
        let mut next = vec![0.0; 3];
        for _ in 0..50 {
            u.step_into(&pi, &mut next, &cfg);
            std::mem::swap(&mut pi, &mut next);
            let mass: f64 = pi.iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn absorbing_only_chain_gets_unit_rate() {
        let c = Ctmc::from_rates(2, &[], vec![1.0, 0.0], vec![0.0, 0.0]).unwrap();
        let u = Uniformized::new(&c, 0.0);
        assert_eq!(u.lambda, 1.0);
        assert_eq!(u.p.get(0, 0), 1.0);
        assert_eq!(u.p.get(1, 1), 1.0);
    }

    #[test]
    #[should_panic]
    fn too_small_rate_panics() {
        Uniformized::with_rate(&chain(), 1.0);
    }

    /// The plan-bytes hook reports every lazily built kernel layout exactly
    /// once: cached plans don't re-fire, layout-free kernels charge
    /// nothing, and the cumulative charge equals `plan_bytes()`.
    #[test]
    fn plan_bytes_hook_charges_lazy_layouts_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 64;
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let c = Ctmc::from_rates(n, &rates, init, vec![1.0; n]).unwrap();
        let u = Uniformized::new(&c, 0.0);
        let charged = Arc::new(AtomicUsize::new(0));
        let sink = charged.clone();
        u.set_plan_bytes_hook(move |b| {
            sink.fetch_add(b, Ordering::Relaxed);
        });
        assert_eq!(u.plan_bytes(), 0, "no plans before the first stepper");
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 1,
            kernel: KernelChoice::Sliced,
            ..Default::default()
        };
        let _ = u.stepper(&cfg);
        let first = charged.load(Ordering::Relaxed);
        assert!(first > 0, "a layout-backed plan must charge its bytes");
        assert_eq!(first, u.plan_bytes());
        // Same configuration: the cached plan must not charge again.
        let _ = u.stepper(&cfg);
        assert_eq!(charged.load(Ordering::Relaxed), first);
        // Layout-free kernels (zero layout bytes) never invoke the hook:
        // shortrow under the full-width index policy keeps no layout.
        let _ = u.stepper(&ParallelConfig {
            kernel: KernelChoice::ShortRow,
            index_width: IndexWidthChoice::W64,
            ..cfg
        });
        assert_eq!(charged.load(Ordering::Relaxed), first);
        assert_eq!(u.plan_bytes(), first);
        // Under the auto policy the same kernel takes a compact u16 index
        // copy (64 columns fit), a lazy layout charged like any other.
        let _ = u.stepper(&ParallelConfig {
            kernel: KernelChoice::ShortRow,
            ..cfg
        });
        let with_compact = charged.load(Ordering::Relaxed);
        assert!(with_compact > first, "compact index copy must be charged");
        assert_eq!(u.plan_bytes(), with_compact);
        // matrix_bytes + plan_bytes is exactly approx_bytes.
        assert_eq!(u.approx_bytes(), u.matrix_bytes() + u.plan_bytes());
    }

    /// `rebind_values` on a rate-scaled chain is bitwise identical to a
    /// cold build — matrices, `Λ`, and stepped products — while arriving
    /// with the donor's plans already re-bound (no hook replay needed,
    /// layouts present at construction time).
    #[test]
    fn rebind_values_matches_cold_build_and_preseeds_plans() {
        let n = 64;
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0 + i as f64 * 0.01));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let base = Ctmc::from_rates(n, &rates, init.clone(), vec![1.0; n]).unwrap();
        let scaled_rates: Vec<_> = rates.iter().map(|&(i, j, r)| (i, j, r * 1.75)).collect();
        let variant = Ctmc::from_rates(n, &scaled_rates, init, vec![1.0; n]).unwrap();
        let donor = Uniformized::new(&base, 0.0);
        // Populate the donor with a layout-backed plan and a plain one.
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 2,
            kernel: KernelChoice::Sliced,
            ..Default::default()
        };
        let _ = donor.stepper(&cfg);
        let _ = donor.stepper(&ParallelConfig {
            kernel: KernelChoice::Generic,
            ..cfg
        });
        let warm = donor.rebind_values(&variant, 0.0);
        let cold = Uniformized::new(&variant, 0.0);
        assert_eq!(warm.lambda.to_bits(), cold.lambda.to_bits());
        assert_eq!(warm.p_t.values(), cold.p_t.values());
        assert_eq!(warm.p_t.row_ptr(), cold.p_t.row_ptr());
        // Both donor plans arrived re-bound: layouts exist *before* the
        // first stepper request, and no hook fires for them.
        assert_eq!(warm.plan_bytes(), donor.plan_bytes());
        assert!(warm.plan_bytes() > 0, "sliced layout must carry over");
        use std::sync::atomic::{AtomicUsize, Ordering};
        let charged = Arc::new(AtomicUsize::new(0));
        let sink = charged.clone();
        warm.set_plan_bytes_hook(move |b| {
            sink.fetch_add(b, Ordering::Relaxed);
        });
        let pi: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        warm.stepper(&cfg).step(&pi, &mut got);
        cold.stepper(&cfg).step(&pi, &mut want);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "rebound step must be bitwise");
        }
        assert_eq!(
            charged.load(Ordering::Relaxed),
            0,
            "pre-seeded plans must not re-charge"
        );
    }

    /// Rebinding across genuinely different structures is rejected — a
    /// donor from another chain must never silently produce wrong plans.
    #[test]
    #[should_panic(expected = "identical sparsity structure")]
    fn rebind_values_rejects_different_structure() {
        let u = Uniformized::new(&chain(), 0.0);
        let other = Ctmc::from_rates(
            3,
            &[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.5, 0.0],
        )
        .unwrap();
        let _ = u.rebind_values(&other, 0.0);
    }

    #[test]
    fn stepper_matches_step_into_and_caches_plans() {
        let u = Uniformized::new(&chain(), 0.0);
        // Force the pooled path even on this tiny chain.
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 4,
            kernel: KernelChoice::Auto,
            ..Default::default()
        };
        let stepper = u.stepper(&cfg);
        assert!(stepper.is_pooled());
        let pi = [0.2, 0.3, 0.5];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        stepper.step(&pi, &mut a);
        u.p_t.mul_vec_into(&pi, &mut b);
        assert_eq!(a, b, "pooled step must be bitwise identical to serial");
        // Same configuration → the cached plan is shared (same allocation).
        let again = u.stepper(&cfg);
        assert!(
            Arc::ptr_eq(&stepper.plan, &again.plan),
            "plan must be computed once per matrix"
        );
        // A forced kernel resolves its own plan, and tiny matrices
        // auto-select the generic kernel.
        let forced = u.stepper(&ParallelConfig {
            kernel: KernelChoice::Sliced,
            ..cfg
        });
        assert!(!Arc::ptr_eq(&stepper.plan, &forced.plan));
        assert_eq!(forced.kernel_kind(), KernelKind::Sliced);
        assert_eq!(stepper.kernel_kind(), KernelKind::Generic);
        let mut c = vec![0.0; 3];
        forced.step(&pi, &mut c);
        assert_eq!(a, c, "forced kernel must be bitwise identical");
        // Below the nnz threshold the stepper runs serially.
        assert!(!u.stepper(&ParallelConfig::default()).is_pooled());
    }

    /// Blocked steppers: each interleaved column steps bitwise identically
    /// to the serial stepper, and plans are cached per block width.
    #[test]
    fn blocked_stepper_is_bitwise_serial_per_column_and_caches_per_block() {
        let u = Uniformized::new(&chain(), 0.0);
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 3,
            ..Default::default()
        };
        let serial = u.stepper(&cfg);
        let pi = [0.2, 0.3, 0.5];
        let mut want = vec![0.0; 3];
        serial.step(&pi, &mut want);
        for k in [1usize, 2, 4, 8] {
            let blocked = u.stepper_block(&cfg, k);
            assert_eq!(blocked.block(), k);
            let xk: Vec<f64> = (0..3 * k).map(|i| pi[i / k]).collect();
            let mut got = vec![0.0; 3 * k];
            blocked.step_block(&xk, &mut got);
            for s in 0..3 {
                for j in 0..k {
                    assert_eq!(
                        got[s * k + j].to_bits(),
                        want[s].to_bits(),
                        "k={k} state {s} col {j}"
                    );
                }
            }
        }
        // block=1 shares the serial plan; other widths resolve their own.
        assert!(Arc::ptr_eq(&serial.plan, &u.stepper_block(&cfg, 1).plan));
        let b4 = u.stepper_block(&cfg, 4);
        assert!(!Arc::ptr_eq(&serial.plan, &b4.plan));
        assert!(Arc::ptr_eq(&b4.plan, &u.stepper_block(&cfg, 4).plan));
    }
}
