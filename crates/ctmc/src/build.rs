//! High-level model specification and reachable-state-space generation.
//!
//! The paper's evaluation models (level-5 RAID dependability) were produced by
//! the authors' in-house modeling tool. This module is our substitute: a model
//! is a type implementing [`ModelSpec`] — a state struct plus a transition
//! function — and [`CtmcBuilder::explore`] compiles it into a validated
//! [`Ctmc`] by breadth-first exploration of the reachable state space.
//!
//! State numbering is deterministic (BFS discovery order from the initial
//! states, which are numbered first in the given order), so state indices are
//! stable across runs and usable in regression tests.

use crate::chain::{Ctmc, CtmcError};
use regenr_sparse::CooBuilder;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A high-level stochastic model: implement this for your domain model and
/// compile it with [`CtmcBuilder::explore`].
pub trait ModelSpec {
    /// State descriptor. Must be hashable; keep it small (it is cloned into
    /// the state table).
    type State: Clone + Eq + Hash;

    /// Initial states with their probabilities (must sum to 1).
    fn initial(&self) -> Vec<(Self::State, f64)>;

    /// Outgoing transitions `(target, rate)` of a state; rates must be > 0.
    /// An empty vector makes the state absorbing.
    fn transitions(&self, state: &Self::State) -> Vec<(Self::State, f64)>;

    /// Reward rate of a state (≥ 0).
    fn reward(&self, state: &Self::State) -> f64;
}

/// Result of state-space exploration: the compiled chain plus the mapping
/// between state structs and indices.
#[derive(Clone, Debug)]
pub struct BuiltModel<S> {
    /// The compiled, validated CTMC.
    pub ctmc: Ctmc,
    /// `states[i]` is the high-level state with index `i`.
    pub states: Vec<S>,
    /// Reverse mapping.
    pub index: HashMap<S, usize>,
}

impl<S: Clone + Eq + Hash> BuiltModel<S> {
    /// Index of a high-level state, if reachable.
    pub fn state_index(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }
}

/// Breadth-first reachable-state-space compiler.
pub struct CtmcBuilder {
    /// Hard cap on the number of explored states (guards against model bugs
    /// that make the space explode).
    pub max_states: usize,
}

impl Default for CtmcBuilder {
    fn default() -> Self {
        CtmcBuilder {
            max_states: 5_000_000,
        }
    }
}

impl CtmcBuilder {
    /// Builder with a custom exploration cap.
    pub fn with_max_states(max_states: usize) -> Self {
        CtmcBuilder { max_states }
    }

    /// Explores the reachable state space of `spec` and compiles it.
    ///
    /// Exceeding `max_states` returns [`CtmcError::StateSpaceExceeded`] — a
    /// clean input-level error, so generated models (spec files) can be
    /// rejected without panicking.
    pub fn explore<M: ModelSpec>(&self, spec: &M) -> Result<BuiltModel<M::State>, CtmcError> {
        regenr_failpoint::failpoint_return!(
            "ctmc-explore",
            Err(CtmcError::Injected {
                failpoint: "ctmc-explore"
            })
        );
        let mut states: Vec<M::State> = Vec::new();
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();

        for (s, p) in spec.initial() {
            let id = match index.entry(s.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = states.len();
                    if id >= self.max_states {
                        return Err(CtmcError::StateSpaceExceeded {
                            max_states: self.max_states,
                        });
                    }
                    e.insert(id);
                    states.push(s);
                    queue.push_back(id);
                    id
                }
            };
            initial_pairs.push((id, p));
        }

        // Triplets are accumulated first because the state count is unknown
        // until exploration finishes.
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        while let Some(id) = queue.pop_front() {
            let from = states[id].clone();
            for (target, rate) in spec.transitions(&from) {
                assert!(
                    rate > 0.0 && rate.is_finite(),
                    "model produced a non-positive or non-finite rate {rate}"
                );
                let tid = match index.entry(target.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let tid = states.len();
                        if tid >= self.max_states {
                            return Err(CtmcError::StateSpaceExceeded {
                                max_states: self.max_states,
                            });
                        }
                        e.insert(tid);
                        states.push(target);
                        queue.push_back(tid);
                        tid
                    }
                };
                if tid != id {
                    triplets.push((id, tid, rate));
                }
            }
        }

        let n = states.len();
        regenr_failpoint::failpoint_return!(
            "ctmc-csr-build",
            Err(CtmcError::Injected {
                failpoint: "ctmc-csr-build"
            })
        );
        let mut exit = vec![0.0f64; n];
        let mut b = CooBuilder::with_capacity(n, n, triplets.len() + n);
        for (i, j, r) in triplets {
            b.push(i, j, r);
            exit[i] += r;
        }
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                b.push(i, i, -e);
            }
        }

        let mut initial = vec![0.0f64; n];
        for (id, p) in initial_pairs {
            initial[id] += p;
        }
        let rewards: Vec<f64> = states.iter().map(|s| spec.reward(s)).collect();
        let ctmc = Ctmc::new(b.build(), initial, rewards)?;
        Ok(BuiltModel {
            ctmc,
            states,
            index,
        })
    }

    /// Streaming variant of [`CtmcBuilder::explore`]: frontier expansion
    /// feeds the COO accumulator incrementally instead of materializing the
    /// full state table and a separate triplet buffer.
    ///
    /// Eager exploration holds, at peak, the state vector, the hash index,
    /// the BFS queue *and* an unbounded triplet vector that is only folded
    /// into the matrix builder after exploration finishes. Here each
    /// transition goes straight into a growable [`CooBuilder`] as it is
    /// discovered, rewards and exit rates grow state-by-state, and no state
    /// vector is kept at all (the queue carries the state structs) — so
    /// million-state compositions build without the duplicated peak.
    ///
    /// State numbering is BFS discovery order, identical to `explore`: the
    /// two methods produce bit-for-bit the same [`Ctmc`]. The trade-off is
    /// that no [`BuiltModel`] index is returned.
    pub fn explore_streaming<M: ModelSpec>(&self, spec: &M) -> Result<Ctmc, CtmcError> {
        regenr_failpoint::failpoint_return!(
            "ctmc-explore-streaming",
            Err(CtmcError::Injected {
                failpoint: "ctmc-explore-streaming"
            })
        );
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();
        let mut exit: Vec<f64> = Vec::new();
        let mut rewards: Vec<f64> = Vec::new();
        let mut b = CooBuilder::new(0, 0);

        for (s, p) in spec.initial() {
            let id = match index.entry(s.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = exit.len();
                    if id >= self.max_states {
                        return Err(CtmcError::StateSpaceExceeded {
                            max_states: self.max_states,
                        });
                    }
                    e.insert(id);
                    exit.push(0.0);
                    rewards.push(spec.reward(&s));
                    queue.push_back((s, id));
                    id
                }
            };
            initial_pairs.push((id, p));
        }

        while let Some((from, id)) = queue.pop_front() {
            for (target, rate) in spec.transitions(&from) {
                assert!(
                    rate > 0.0 && rate.is_finite(),
                    "model produced a non-positive or non-finite rate {rate}"
                );
                let tid = match index.entry(target.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let tid = exit.len();
                        if tid >= self.max_states {
                            return Err(CtmcError::StateSpaceExceeded {
                                max_states: self.max_states,
                            });
                        }
                        e.insert(tid);
                        exit.push(0.0);
                        rewards.push(spec.reward(&target));
                        queue.push_back((target, tid));
                        tid
                    }
                };
                if tid != id {
                    // Both endpoints are < exit.len() (the states known so far).
                    b.grow(exit.len(), exit.len());
                    b.push(id, tid, rate);
                    exit[id] += rate;
                }
            }
        }

        let n = exit.len();
        regenr_failpoint::failpoint_return!(
            "ctmc-csr-build",
            Err(CtmcError::Injected {
                failpoint: "ctmc-csr-build"
            })
        );
        drop(index);
        b.grow(n, n);
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                b.push(i, i, -e);
            }
        }
        let mut initial = vec![0.0f64; n];
        for (id, p) in initial_pairs {
            initial[id] += p;
        }
        Ctmc::new(b.build(), initial, rewards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An M/M/1/K queue: arrivals λ, service μ, capacity K; reward = queue
    /// occupancy (a classic performability structure).
    struct Mm1k {
        lambda: f64,
        mu: f64,
        k: u32,
    }

    impl ModelSpec for Mm1k {
        type State = u32;

        fn initial(&self) -> Vec<(u32, f64)> {
            vec![(0, 1.0)]
        }

        fn transitions(&self, &n: &u32) -> Vec<(u32, f64)> {
            let mut out = Vec::new();
            if n < self.k {
                out.push((n + 1, self.lambda));
            }
            if n > 0 {
                out.push((n - 1, self.mu));
            }
            out
        }

        fn reward(&self, &n: &u32) -> f64 {
            n as f64
        }
    }

    #[test]
    fn mm1k_has_k_plus_one_states() {
        let built = CtmcBuilder::default()
            .explore(&Mm1k {
                lambda: 1.0,
                mu: 2.0,
                k: 10,
            })
            .unwrap();
        assert_eq!(built.ctmc.n_states(), 11);
        assert_eq!(built.states[0], 0);
        // BFS order: 0, 1, 2, ...
        for (i, s) in built.states.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        assert_eq!(built.ctmc.exit_rate(0), 1.0);
        assert_eq!(built.ctmc.exit_rate(5), 3.0);
        assert_eq!(built.ctmc.exit_rate(10), 2.0);
        assert_eq!(built.ctmc.rewards()[7], 7.0);
        assert_eq!(built.state_index(&3), Some(3));
        assert_eq!(built.state_index(&11), None);
    }

    /// Transitions to the same target are merged by the COO builder.
    struct TwoPaths;
    impl ModelSpec for TwoPaths {
        type State = u8;
        fn initial(&self) -> Vec<(u8, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, &s: &u8) -> Vec<(u8, f64)> {
            match s {
                0 => vec![(1, 2.0), (1, 3.0)], // two events, same lumped target
                1 => vec![(0, 1.0)],
                _ => vec![],
            }
        }
        fn reward(&self, _: &u8) -> f64 {
            0.0
        }
    }

    #[test]
    fn duplicate_transitions_are_summed() {
        let built = CtmcBuilder::default().explore(&TwoPaths).unwrap();
        assert_eq!(built.ctmc.generator().get(0, 1), 5.0);
        assert_eq!(built.ctmc.exit_rate(0), 5.0);
    }

    /// Unbounded birth chain — trips any finite exploration cap.
    struct Unbounded;
    impl ModelSpec for Unbounded {
        type State = u64;
        fn initial(&self) -> Vec<(u64, f64)> {
            vec![(0, 1.0)]
        }
        fn transitions(&self, &s: &u64) -> Vec<(u64, f64)> {
            vec![(s + 1, 1.0)]
        }
        fn reward(&self, _: &u64) -> f64 {
            0.0
        }
    }

    #[test]
    fn cap_is_a_clean_error() {
        let builder = CtmcBuilder::with_max_states(100);
        for result in [
            builder.explore(&Unbounded).map(|_| ()),
            builder.explore_streaming(&Unbounded).map(|_| ()),
        ] {
            match result {
                Err(CtmcError::StateSpaceExceeded { max_states }) => assert_eq!(max_states, 100),
                other => panic!("expected StateSpaceExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn streaming_matches_eager_bitwise() {
        let spec = Mm1k {
            lambda: 0.7,
            mu: 1.3,
            k: 25,
        };
        let eager = CtmcBuilder::default().explore(&spec).unwrap().ctmc;
        let streamed = CtmcBuilder::default().explore_streaming(&spec).unwrap();
        assert_eq!(eager.n_states(), streamed.n_states());
        assert_eq!(eager.generator().row_ptr(), streamed.generator().row_ptr());
        assert_eq!(eager.generator().col_idx(), streamed.generator().col_idx());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(eager.generator().values()),
            bits(streamed.generator().values())
        );
        assert_eq!(bits(eager.initial()), bits(streamed.initial()));
        assert_eq!(bits(eager.rewards()), bits(streamed.rewards()));
    }

    #[test]
    fn split_initial_distribution() {
        let spec = Mm1k {
            lambda: 1.0,
            mu: 1.0,
            k: 3,
        };
        struct Wrapper(Mm1k);
        impl ModelSpec for Wrapper {
            type State = u32;
            fn initial(&self) -> Vec<(u32, f64)> {
                vec![(0, 0.25), (2, 0.75)]
            }
            fn transitions(&self, s: &u32) -> Vec<(u32, f64)> {
                self.0.transitions(s)
            }
            fn reward(&self, s: &u32) -> f64 {
                self.0.reward(s)
            }
        }
        let built = CtmcBuilder::default().explore(&Wrapper(spec)).unwrap();
        assert_eq!(built.ctmc.initial()[built.state_index(&0).unwrap()], 0.25);
        assert_eq!(built.ctmc.initial()[built.state_index(&2).unwrap()], 0.75);
    }
}
