//! The validated CTMC type.

use regenr_sparse::{CooBuilder, CsrMatrix};
use std::fmt;

/// Errors raised while constructing or validating a [`Ctmc`].
#[derive(Clone, Debug, PartialEq)]
pub enum CtmcError {
    /// An off-diagonal generator entry was negative.
    NegativeRate { from: usize, to: usize, rate: f64 },
    /// A generator row does not sum to ~0.
    RowSumNonZero { state: usize, sum: f64 },
    /// The initial distribution has negative mass or does not sum to 1.
    BadInitialDistribution { sum: f64 },
    /// A reward rate was negative (the paper assumes `r_i ≥ 0`).
    NegativeReward { state: usize, reward: f64 },
    /// Dimension mismatch between generator / rewards / initial vector.
    DimensionMismatch { what: &'static str },
    /// The regenerative state is invalid for the requested operation
    /// (absorbing, unreachable, or carries no initial/return structure).
    BadRegenerativeState { state: usize, reason: &'static str },
    /// The chain violates the paper's structural assumption: the non-absorbing
    /// part must be a single strongly connected component.
    NotStronglyConnected { components: usize },
    /// Initial probability mass was placed on an absorbing state (the paper
    /// assumes `P[X(0) = f_i] = 0`).
    InitialMassOnAbsorbing { state: usize },
    /// State-space exploration exceeded the configured cap. For generated
    /// models (e.g. `compose` specs) this is an input condition, not a bug:
    /// callers surface it as a spec-level error.
    StateSpaceExceeded { max_states: usize },
    /// A fault injected by an armed failpoint (`failpoints` builds only).
    /// Infrastructure, never a property of the model — supervisors retry,
    /// and serve must not report it as a model error.
    Injected { failpoint: &'static str },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::NegativeRate { from, to, rate } => {
                write!(
                    f,
                    "negative transition rate {rate} from state {from} to {to}"
                )
            }
            CtmcError::RowSumNonZero { state, sum } => {
                write!(f, "generator row {state} sums to {sum}, expected 0")
            }
            CtmcError::BadInitialDistribution { sum } => {
                write!(f, "initial distribution sums to {sum}, expected 1")
            }
            CtmcError::NegativeReward { state, reward } => {
                write!(f, "negative reward rate {reward} at state {state}")
            }
            CtmcError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            CtmcError::BadRegenerativeState { state, reason } => {
                write!(f, "bad regenerative state {state}: {reason}")
            }
            CtmcError::NotStronglyConnected { components } => write!(
                f,
                "non-absorbing states form {components} strongly connected components, expected 1"
            ),
            CtmcError::InitialMassOnAbsorbing { state } => {
                write!(f, "initial probability mass on absorbing state {state}")
            }
            CtmcError::StateSpaceExceeded { max_states } => {
                write!(f, "state space exceeded the cap of {max_states} states")
            }
            CtmcError::Injected { failpoint } => {
                write!(f, "fault injected at failpoint {failpoint}")
            }
        }
    }
}

impl std::error::Error for CtmcError {}

/// A finite, homogeneous CTMC with a reward-rate structure.
///
/// Invariants enforced at construction:
/// * off-diagonal generator entries non-negative, row sums ≈ 0,
/// * initial distribution non-negative with total mass ≈ 1,
/// * rewards non-negative (the paper's assumption `r_i ≥ 0`).
#[derive(Clone, Debug)]
pub struct Ctmc {
    generator: CsrMatrix,
    initial: Vec<f64>,
    rewards: Vec<f64>,
}

/// Alias emphasising the reward structure in APIs that need it.
pub type RewardedCtmc = Ctmc;

/// Tolerance for validation checks (row sums, initial mass). Generators are
/// assembled from `f64` rate sums, so exact zero is not attainable.
const VALIDATION_TOL: f64 = 1e-9;

impl Ctmc {
    /// Builds a CTMC from a generator `Q`, initial distribution `α` and reward
    /// vector `r`, validating all invariants.
    pub fn new(
        generator: CsrMatrix,
        initial: Vec<f64>,
        rewards: Vec<f64>,
    ) -> Result<Self, CtmcError> {
        let n = generator.nrows();
        if generator.ncols() != n {
            return Err(CtmcError::DimensionMismatch {
                what: "generator must be square",
            });
        }
        if initial.len() != n {
            return Err(CtmcError::DimensionMismatch {
                what: "initial distribution length",
            });
        }
        if rewards.len() != n {
            return Err(CtmcError::DimensionMismatch {
                what: "reward vector length",
            });
        }
        for (i, j, v) in generator.iter() {
            if i != j && v < 0.0 {
                return Err(CtmcError::NegativeRate {
                    from: i,
                    to: j,
                    rate: v,
                });
            }
        }
        for (i, s) in generator.row_sums().iter().enumerate() {
            // Scale the tolerance with the exit rate: large rates accumulate
            // proportionally larger float error.
            let scale = generator.get(i, i).abs().max(1.0);
            if s.abs() > VALIDATION_TOL * scale {
                return Err(CtmcError::RowSumNonZero { state: i, sum: *s });
            }
        }
        let mass: f64 = initial.iter().sum();
        if initial.iter().any(|&p| p < 0.0) || (mass - 1.0).abs() > VALIDATION_TOL {
            return Err(CtmcError::BadInitialDistribution { sum: mass });
        }
        for (i, &r) in rewards.iter().enumerate() {
            if r < 0.0 {
                return Err(CtmcError::NegativeReward {
                    state: i,
                    reward: r,
                });
            }
        }
        Ok(Ctmc {
            generator,
            initial,
            rewards,
        })
    }

    /// Convenience constructor from rate triplets `(from, to, rate)`; the
    /// diagonal is filled in automatically.
    pub fn from_rates(
        n: usize,
        rates: &[(usize, usize, f64)],
        initial: Vec<f64>,
        rewards: Vec<f64>,
    ) -> Result<Self, CtmcError> {
        let mut exit = vec![0.0f64; n];
        let mut b = CooBuilder::with_capacity(n, n, rates.len() + n);
        for &(i, j, rate) in rates {
            if rate < 0.0 {
                return Err(CtmcError::NegativeRate {
                    from: i,
                    to: j,
                    rate,
                });
            }
            if i == j {
                continue; // self-rates are meaningless in a CTMC
            }
            b.push(i, j, rate);
            exit[i] += rate;
        }
        for (i, &e) in exit.iter().enumerate() {
            if e > 0.0 {
                b.push(i, i, -e);
            }
        }
        Ctmc::new(b.build(), initial, rewards)
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.generator.nrows()
    }

    /// The infinitesimal generator `Q`.
    pub fn generator(&self) -> &CsrMatrix {
        &self.generator
    }

    /// The initial distribution `α`.
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// The reward-rate vector `r`.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Largest reward rate `r_max = max_i r_i` (drives every error bound in
    /// the paper).
    pub fn max_reward(&self) -> f64 {
        self.rewards.iter().copied().fold(0.0, f64::max)
    }

    /// Exit rate `-q_ii` of a state.
    pub fn exit_rate(&self, i: usize) -> f64 {
        -self.generator.get(i, i)
    }

    /// States with zero exit rate.
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.n_states())
            .filter(|&i| self.exit_rate(i) == 0.0)
            .collect()
    }

    /// Replaces the reward vector (same chain, different measure), validating
    /// non-negativity.
    pub fn with_rewards(&self, rewards: Vec<f64>) -> Result<Ctmc, CtmcError> {
        Ctmc::new(self.generator.clone(), self.initial.clone(), rewards)
    }

    /// Replaces the initial distribution.
    pub fn with_initial(&self, initial: Vec<f64>) -> Result<Ctmc, CtmcError> {
        Ctmc::new(self.generator.clone(), initial, self.rewards.clone())
    }

    /// Expected reward rate under a distribution `π`: `Σ_i π_i r_i`.
    pub fn reward_dot(&self, pi: &[f64]) -> f64 {
        debug_assert_eq!(pi.len(), self.rewards.len());
        pi.iter().zip(&self.rewards).map(|(p, r)| p * r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        // 0 --λ--> 1, 1 --μ--> 0.
        Ctmc::from_rates(
            2,
            &[(0, 1, 0.001), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn valid_chain_accepted() {
        let c = two_state();
        assert_eq!(c.n_states(), 2);
        assert_eq!(c.exit_rate(0), 0.001);
        assert_eq!(c.exit_rate(1), 1.0);
        assert_eq!(c.max_reward(), 1.0);
        assert!(c.absorbing_states().is_empty());
    }

    #[test]
    fn negative_rate_rejected() {
        let err = Ctmc::from_rates(2, &[(0, 1, -1.0)], vec![1.0, 0.0], vec![0.0, 0.0]);
        assert!(matches!(err, Err(CtmcError::NegativeRate { .. })));
    }

    #[test]
    fn bad_row_sum_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0); // missing diagonal -1
        let err = Ctmc::new(b.build(), vec![1.0, 0.0], vec![0.0, 0.0]);
        assert!(matches!(
            err,
            Err(CtmcError::RowSumNonZero { state: 0, .. })
        ));
    }

    #[test]
    fn bad_initial_rejected() {
        let err = Ctmc::from_rates(2, &[(0, 1, 1.0), (1, 0, 1.0)], vec![0.7, 0.7], vec![0.0; 2]);
        assert!(matches!(err, Err(CtmcError::BadInitialDistribution { .. })));
    }

    #[test]
    fn negative_reward_rejected() {
        let err = Ctmc::from_rates(
            2,
            &[(0, 1, 1.0), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, -1.0],
        );
        assert!(matches!(
            err,
            Err(CtmcError::NegativeReward { state: 1, .. })
        ));
    }

    #[test]
    fn absorbing_detection() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        assert_eq!(c.absorbing_states(), vec![2]);
    }

    #[test]
    fn self_rates_ignored() {
        let c = Ctmc::from_rates(
            2,
            &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 0.0],
        )
        .unwrap();
        assert_eq!(c.exit_rate(0), 1.0);
    }

    #[test]
    fn reward_dot_product() {
        let c = two_state();
        assert_eq!(c.reward_dot(&[0.25, 0.75]), 0.75);
    }

    #[test]
    fn with_rewards_revalidates() {
        let c = two_state();
        assert!(c.with_rewards(vec![1.0, -0.1]).is_err());
        let c2 = c.with_rewards(vec![2.0, 3.0]).unwrap();
        assert_eq!(c2.max_reward(), 3.0);
    }
}
