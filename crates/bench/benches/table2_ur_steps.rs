//! Table 2 workload (UR measure): RR/RRL construction vs SR stepping.
//!
//! SR's step count is `Θ(Λt)` — the bench keeps it to horizons where a
//! criterion measurement stays reasonable (the full grid, including the
//! millions-of-steps entries, is produced by `repro -- table2`/`fig4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{make_rrl, make_sr, Variant, Workload};
use regenr_transient::MeasureKind;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let w = Workload::new();
    let chain = w.chain(20, Variant::Ur);
    let rrl = make_rrl(&chain);
    let sr = make_sr(&chain);

    let mut group = c.benchmark_group("table2_ur_steps_g20");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for t in [10.0, 100.0, 1_000.0] {
        group.bench_with_input(BenchmarkId::new("rr_rrl_construction", t), &t, |b, &t| {
            b.iter(|| black_box(rrl.parameters(t).unwrap().construction_steps()))
        });
        group.bench_with_input(BenchmarkId::new("sr_full_solve", t), &t, |b, &t| {
            b.iter(|| black_box(sr.solve(MeasureKind::Trr, t).value))
        });
    }
    // The large-t regime where RRL's flat cost pays off (SR is omitted here;
    // see `repro -- fig4` for the full curve).
    for t in [10_000.0, 100_000.0] {
        group.bench_with_input(BenchmarkId::new("rrl_full_solve", t), &t, |b, &t| {
            b.iter(|| black_box(rrl.trr(t).unwrap().value))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
