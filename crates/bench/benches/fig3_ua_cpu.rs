//! Figure 3 workload: end-to-end CPU time of RRL vs RR vs RSD for `UA(t)`.
//!
//! The paper's Fig. 3 is a log–log CPU-time plot over
//! `t ∈ {1 … 10⁵} h`; criterion covers the moderate horizons for both model
//! sizes (the full curve including RR's `Θ(Λt)` inner solve at `t = 10⁵` is
//! produced by `repro -- fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{make_rr, make_rrl, make_rsd, Variant, Workload};
use regenr_transient::MeasureKind;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let w = Workload::new();
    for g in [20u32, 40] {
        let chain = w.chain(g, Variant::Ua);
        let rrl = make_rrl(&chain);
        let rr = make_rr(&chain);
        let rsd = make_rsd(&chain);

        let mut group = c.benchmark_group(format!("fig3_ua_cpu_g{g}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(5));
        for t in [10.0, 1_000.0] {
            group.bench_with_input(BenchmarkId::new("rrl", t), &t, |b, &t| {
                b.iter(|| black_box(rrl.trr(t).unwrap().value))
            });
            group.bench_with_input(BenchmarkId::new("rr", t), &t, |b, &t| {
                b.iter(|| black_box(rr.solve(MeasureKind::Trr, t).unwrap().value))
            });
            group.bench_with_input(BenchmarkId::new("rsd", t), &t, |b, &t| {
                b.iter(|| black_box(rsd.solve(MeasureKind::Trr, t).value))
            });
        }
        // Large-t regime: RRL and RSD stay flat (RR left to `repro`).
        let t_large = 100_000.0;
        group.bench_with_input(BenchmarkId::new("rrl", t_large), &t_large, |b, &t| {
            b.iter(|| black_box(rrl.trr(t).unwrap().value))
        });
        group.bench_with_input(BenchmarkId::new("rsd", t_large), &t_large, |b, &t| {
            b.iter(|| black_box(rsd.solve(MeasureKind::Trr, t).value))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
