//! Substrate microbenchmarks: the building blocks every solver leans on.
//!
//! * sparse vector–matrix step on the G=40 RAID matrix — the inner loop of
//!   SR/RSD and of the RR/RRL construction — comparing the serial kernel,
//!   the warm-pool stepper, and the per-call scoped-spawn baseline at each
//!   chunk count;
//! * Poisson weight generation at small and huge `Λt`;
//! * Wynn ε-acceleration of an oscillating series;
//! * closed-form transform evaluation (one Durbin abscissa).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{make_rrl, Variant, Workload};
use regenr_core::TransformEvaluator;
use regenr_ctmc::Uniformized;
use regenr_numeric::{Complex64, EpsilonAcceleratorC, PoissonWeights};
use regenr_sparse::ParallelConfig;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let w = Workload::new();
    let chain = w.chain(40, Variant::Ua);
    let unif = Uniformized::new(&chain, 0.0);
    let n = chain.n_states();
    let pi: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("substrate_spmv_g40");
    group.bench_function("serial", |b| {
        b.iter(|| {
            unif.p_t.mul_vec_into(&pi, &mut out);
            black_box(out[0])
        })
    });
    for threads in [2usize, 4, 8] {
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads,
            ..Default::default()
        };
        // Warm pool + cached chunk plan: what the solvers' steppers run.
        let stepper = unif.stepper(&cfg);
        group.bench_with_input(BenchmarkId::new("pooled", threads), &(), |b, ()| {
            b.iter(|| {
                stepper.step(&pi, &mut out);
                black_box(out[0])
            })
        });
        // Per-call scoped-spawn baseline (the pre-pool strategy). Note the
        // `threads` axis is the *chunk* count; the pooled kernel executes
        // on at most the global pool's threads, the spawn kernel creates
        // exactly `threads` scoped threads per call.
        group.bench_with_input(
            BenchmarkId::new("spawn_per_call", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    unif.p_t.mul_vec_spawn_into(&pi, &mut out, cfg);
                    black_box(out[0])
                })
            },
        );
    }
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_poisson");
    for lambda in [25.0, 2.5e4, 2.5e6] {
        group.bench_with_input(
            BenchmarkId::new("weights", lambda),
            &lambda,
            |b, &lambda| b.iter(|| black_box(PoissonWeights::new(lambda, 1e-12).len())),
        );
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    c.bench_function("substrate_epsilon_64_terms", |b| {
        b.iter(|| {
            let mut acc = EpsilonAcceleratorC::new();
            let mut partial = Complex64::ZERO;
            for k in 1..=64 {
                let kf = k as f64;
                partial += Complex64::new((0.9f64).powi(k) * kf.cos(), kf.sin() / kf);
                acc.push(partial);
            }
            black_box(acc.estimate())
        })
    });
}

fn bench_transform_eval(c: &mut Criterion) {
    let w = Workload::new();
    let chain = w.chain(20, Variant::Ur);
    let rrl = make_rrl(&chain);
    let params = rrl.parameters(1e4).unwrap();
    let ev = TransformEvaluator::new(&params);
    let s = Complex64::new(2.3e-4, 0.71);
    c.bench_function("substrate_transform_eval_k2936", |b| {
        b.iter(|| black_box(ev.trr(black_box(s))))
    });
}

criterion_group!(
    benches,
    bench_spmv,
    bench_poisson,
    bench_epsilon,
    bench_transform_eval
);
criterion_main!(benches);
