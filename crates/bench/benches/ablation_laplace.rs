//! Ablation of the Laplace-inversion design choices (paper Section 2.2).
//!
//! The paper motivates `T = 8t` + ε-acceleration as the sweet spot between
//! Crump's fast-but-unstable `T = t` and Piessens–Huysmans' stable-but-slow
//! `T = 16t`. This bench isolates the *inversion stage* (transform
//! evaluations only, construction hoisted out) across those settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{Variant, Workload, EPSILON};
use regenr_core::{RegenOptions, RrlOptions, RrlSolver};
use regenr_laplace::InverterOptions;
use regenr_transient::MeasureKind;
use std::hint::black_box;

fn bench_inversion(c: &mut Criterion) {
    let w = Workload::new();
    let chain = w.chain(20, Variant::Ur);
    let t = 10_000.0;

    let base = RrlSolver::new(
        &chain,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon: EPSILON,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    // Construction is shared by every configuration; do it once.
    let params = base.parameters(t).unwrap();

    let mut group = c.benchmark_group("ablation_laplace_inversion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for mult in [1.0, 8.0, 16.0] {
        for accel in [true, false] {
            // Unaccelerated runs never converge within any practical term
            // budget (see `repro -- ablation`); cap the series here so the
            // bench measures the per-term cost rather than spinning.
            let max_terms = if accel { 100_000 } else { 2_000 };
            let solver = RrlSolver::new(
                &chain,
                0,
                RrlOptions {
                    regen: RegenOptions {
                        epsilon: EPSILON,
                        ..Default::default()
                    },
                    inverter: InverterOptions {
                        t_multiplier: mult,
                        accelerate: accel,
                        max_terms,
                        ..Default::default()
                    },
                },
            )
            .unwrap();
            let label = format!("T={mult}t/accel={accel}");
            group.bench_with_input(BenchmarkId::new("invert", label), &t, |b, &t| {
                b.iter(|| black_box(solver.invert_params(&params, MeasureKind::Trr, t).value))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inversion);
criterion_main!(benches);
