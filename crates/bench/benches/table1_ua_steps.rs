//! Table 1 workload (UA measure): cost of the step-bounded stages.
//!
//! The paper's Table 1 reports *step counts*; this bench measures what those
//! steps cost — the RR/RRL model-construction stage (K killed-chain products)
//! and the RSD stepping-until-detection stage — at representative horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{make_rrl, make_rsd, Variant, Workload};
use regenr_transient::MeasureKind;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let w = Workload::new();
    let chain = w.chain(20, Variant::Ua);
    let rrl = make_rrl(&chain);
    let rsd = make_rsd(&chain);

    let mut group = c.benchmark_group("table1_ua_steps_g20");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for t in [10.0, 1_000.0, 100_000.0] {
        group.bench_with_input(BenchmarkId::new("rr_rrl_construction", t), &t, |b, &t| {
            b.iter(|| black_box(rrl.parameters(t).unwrap().construction_steps()))
        });
        group.bench_with_input(BenchmarkId::new("rsd_detection", t), &t, |b, &t| {
            b.iter(|| black_box(rsd.solve(MeasureKind::Trr, t).steps))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
