//! Figure 4 workload: end-to-end CPU time of RRL vs RR vs SR for `UR(t)`.
//!
//! The paper's Fig. 4 shows SR exploding for large `t` while RRL stays flat;
//! criterion measures the crossover region (the extreme entries are produced
//! by `repro -- fig4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regenr_bench::{make_rr, make_rrl, make_sr, Variant, Workload};
use regenr_transient::MeasureKind;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let w = Workload::new();
    for g in [20u32, 40] {
        let chain = w.chain(g, Variant::Ur);
        let rrl = make_rrl(&chain);
        let rr = make_rr(&chain);
        let sr = make_sr(&chain);

        let mut group = c.benchmark_group(format!("fig4_ur_cpu_g{g}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(5));
        for t in [10.0, 1_000.0] {
            group.bench_with_input(BenchmarkId::new("rrl", t), &t, |b, &t| {
                b.iter(|| black_box(rrl.trr(t).unwrap().value))
            });
            group.bench_with_input(BenchmarkId::new("rr", t), &t, |b, &t| {
                b.iter(|| black_box(rr.solve(MeasureKind::Trr, t).unwrap().value))
            });
            group.bench_with_input(BenchmarkId::new("sr", t), &t, |b, &t| {
                b.iter(|| black_box(sr.solve(MeasureKind::Trr, t).value))
            });
        }
        // Large-t regime: only RRL remains tractable at bench sample counts.
        group.bench_with_input(BenchmarkId::new("rrl", 100_000.0), &100_000.0, |b, &t| {
            b.iter(|| black_box(rrl.trr(t).unwrap().value))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
