//! Calibration of the reconstruction success probability `P_R` (DESIGN.md §4).
//!
//! The paper never states P_R numerically. This example bisects it against
//! the published `UR(1e5 h) = 0.50480` at G=20 and then checks the G=40
//! value `0.74750` *out of sample* — one fitted scalar matching two
//! independent observables to all five published digits.

use regenr_core::{RegenOptions, RrlOptions, RrlSolver};
use regenr_models::{RaidModel, RaidParams};

fn ur(g: u32, p_r: f64, t: f64) -> f64 {
    let params = RaidParams {
        p_r,
        ..RaidParams::paper(g)
    }
    .with_absorbing_failure();
    let built = RaidModel::new(params).build().unwrap();
    let opts = RrlOptions {
        regen: RegenOptions {
            epsilon: 1e-10,
            ..Default::default()
        },
        ..Default::default()
    };
    RrlSolver::new(&built.ctmc, 0, opts)
        .unwrap()
        .trr(t)
        .unwrap()
        .value
}

fn main() {
    let t = 1e5;
    let (mut lo, mut hi) = (0.9975f64, 0.9999f64);
    for _ in 0..25 {
        let mid = 0.5 * (lo + hi);
        if ur(20, mid, t) > 0.50480 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let pr = 0.5 * (lo + hi);
    println!("calibrated P_R = {pr:.7}");
    println!("UR20 = {:.5} (paper 0.50480)", ur(20, pr, t));
    println!("UR40 = {:.5} (paper 0.74750, out-of-sample)", ur(40, pr, t));
}
