//! Shared infrastructure for the `regenr` benchmark harness.
//!
//! The paper's evaluation (Section 3) consists of two tables (step counts)
//! and two figures (CPU-time curves) over the same workload grid:
//!
//! * models: level-5 RAID, `G ∈ {20, 40}`, `C_H = 1`, `D_H = 3`;
//! * measures: `UA(t)` (irreducible) and `UR(t)` (absorbing);
//! * horizons: `t ∈ {1, 10, 10², 10³, 10⁴, 10⁵} h`;
//! * error bound `ε = 10⁻¹²`.
//!
//! [`Workload`] materializes and caches the four *built* chains; the `repro`
//! binary and the criterion benches share it. Solver-side artifacts
//! (uniformizations, killed-chain parameters) are cached one layer down by
//! `regenr_engine::ArtifactCache`, which generalizes this per-chain memo to
//! arbitrary models keyed by structural fingerprint — `repro engine` runs
//! the same grid through that path.

use parking_lot::Mutex;
use regenr_core::{RegenOptions, RrOptions, RrSolver, RrlOptions, RrlSolver};
use regenr_ctmc::Ctmc;
use regenr_models::{RaidModel, RaidParams};
use regenr_transient::{MeasureKind, RsdOptions, RsdSolver, SrOptions, SrSolver};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// The paper's error bound.
pub const EPSILON: f64 = 1e-12;
/// The paper's horizon grid (hours).
pub const T_GRID: [f64; 6] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];
/// The paper's model sizes.
pub const G_VALUES: [u32; 2] = [20, 40];

/// Which paper measure/model variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Point unavailability — irreducible model (`A = 0`).
    Ua,
    /// Unreliability — absorbing failed state (`A = 1`).
    Ur,
}

/// Lazily built, cached RAID chains for the benchmark grid.
#[derive(Default)]
pub struct Workload {
    cache: Mutex<HashMap<(u32, Variant), Arc<Ctmc>>>,
}

impl Workload {
    /// New empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The RAID chain for `(G, variant)`, built on first use.
    pub fn chain(&self, g: u32, variant: Variant) -> Arc<Ctmc> {
        let mut cache = self.cache.lock();
        cache
            .entry((g, variant))
            .or_insert_with(|| {
                let mut params = RaidParams::paper(g);
                if variant == Variant::Ur {
                    params = params.with_absorbing_failure();
                }
                Arc::new(
                    RaidModel::new(params)
                        .build()
                        .expect("RAID model builds")
                        .ctmc,
                )
            })
            .clone()
    }
}

/// SR with the paper's settings.
pub fn make_sr(ctmc: &Ctmc) -> SrSolver<'_> {
    SrSolver::new(
        ctmc,
        SrOptions {
            epsilon: EPSILON,
            ..Default::default()
        },
    )
}

/// RSD with the paper's settings.
pub fn make_rsd(ctmc: &Ctmc) -> RsdSolver<'_> {
    RsdSolver::new(
        ctmc,
        RsdOptions {
            epsilon: EPSILON,
            ..Default::default()
        },
    )
}

/// RR with the paper's settings (regenerative state = pristine = index 0).
pub fn make_rr(ctmc: &Ctmc) -> RrSolver<'_> {
    RrSolver::new(
        ctmc,
        0,
        RrOptions {
            regen: RegenOptions {
                epsilon: EPSILON,
                ..Default::default()
            },
        },
    )
    .expect("pristine state is regenerative")
}

/// RRL with the paper's settings.
pub fn make_rrl(ctmc: &Ctmc) -> RrlSolver<'_> {
    RrlSolver::new(
        ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon: EPSILON,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("pristine state is regenerative")
}

/// One timed run of a solver closure; returns `(value, seconds)`.
pub fn time_once<F: FnOnce() -> f64>(f: F) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// The measure for a variant (both paper measures are `TRR`-shaped).
pub fn measure_of(_variant: Variant) -> MeasureKind {
    MeasureKind::Trr
}

/// A simple CSV sink under `results/`.
pub struct CsvWriter {
    file: std::fs::File,
}

impl CsvWriter {
    /// Creates `results/<name>.csv` (directories included) with a header row.
    pub fn create(name: &str, header: &str) -> std::io::Result<Self> {
        std::fs::create_dir_all("results")?;
        let mut file = std::fs::File::create(format!("results/{name}.csv"))?;
        writeln!(file, "{header}")?;
        Ok(CsvWriter { file })
    }

    /// Appends one row.
    pub fn row(&mut self, fields: &[String]) -> std::io::Result<()> {
        writeln!(self.file, "{}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_caches_chains() {
        let w = Workload::new();
        let a = w.chain(20, Variant::Ua);
        let b = w.chain(20, Variant::Ua);
        assert!(Arc::ptr_eq(&a, &b), "second access must hit the cache");
        assert_eq!(a.n_states(), 3841);
    }

    #[test]
    fn ua_and_ur_differ_in_absorbing_structure() {
        let w = Workload::new();
        let ua = w.chain(20, Variant::Ua);
        let ur = w.chain(20, Variant::Ur);
        assert_eq!(ua.n_states(), ur.n_states());
        assert!(ua.absorbing_states().is_empty());
        assert_eq!(ur.absorbing_states().len(), 1);
    }

    #[test]
    fn timer_returns_value_and_duration() {
        let (v, s) = time_once(|| 42.0);
        assert_eq!(v, 42.0);
        assert!(s >= 0.0);
    }
}
