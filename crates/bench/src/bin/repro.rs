//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p regenr-bench --release --bin repro -- [--quick] <what>
//!   what ∈ { sizes | table1 | table2 | fig3 | fig4 | scalars | ablation |
//!            sweep | compose | engine | sensitivity | kernels | serve |
//!            chaos | all }
//!
//! `chaos` (not part of `all`) storms an in-process server with faults
//! injected through the failpoint layer; build with `--features failpoints`.
//! ```
//!
//! Output goes to stdout (pretty tables) and `results/*.csv` (series data).
//! `--quick` caps the `Θ(Λt)` methods (SR everywhere, RR's inner solve) at
//! `t ≤ 10³ h`, which keeps a full run to a couple of minutes; without it the
//! harness faithfully runs the paper's complete grid (SR alone then performs
//! millions of vector–matrix products, exactly the cost the paper plots).

use regenr_bench::*;
use regenr_transient::MeasureKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let w = Workload::new();
    match what {
        "sizes" => sizes(&w),
        "table1" => table1(&w),
        "table2" => table2(&w),
        "fig3" => fig3(&w, quick),
        "fig4" => fig4(&w, quick),
        "scalars" => scalars(&w),
        "ablation" => {
            ablation(&w);
            ablation_theta(&w);
        }
        "sweep" => sweep(),
        "compose" => compose_corpus(),
        "engine" => engine_grid(&w),
        "sensitivity" => sensitivity(),
        "kernels" => kernel_ablation(&w),
        "serve" => serve_load(),
        "chaos" => chaos(),
        "all" => {
            sizes(&w);
            table1(&w);
            table2(&w);
            fig3(&w, quick);
            fig4(&w, quick);
            scalars(&w);
            ablation(&w);
            ablation_theta(&w);
            sweep();
            compose_corpus();
            engine_grid(&w);
            sensitivity();
            kernel_ablation(&w);
            serve_load();
        }
        other => {
            eprintln!("unknown target {other:?}; see --help in the module docs");
            std::process::exit(2);
        }
    }
}

/// Model sizes vs the paper's (DESIGN.md experiment "sizes").
fn sizes(w: &Workload) {
    println!("\n== model sizes (paper: 3,841/24,785 at G=20; 14,081/94,405 at G=40) ==");
    let mut csv = CsvWriter::create("sizes", "g,variant,states,transitions").unwrap();
    for g in G_VALUES {
        for (variant, name) in [(Variant::Ua, "UA"), (Variant::Ur, "UR")] {
            let c = w.chain(g, variant);
            let diag = (0..c.n_states())
                .filter(|&i| c.generator().get(i, i) != 0.0)
                .count();
            let transitions = c.generator().nnz() - diag;
            println!(
                "  G={g} {name}: {} states, {} transitions, Λ = {:.4}",
                c.n_states(),
                transitions,
                c.generator().max_abs_diag()
            );
            csv.row(&[
                g.to_string(),
                name.to_string(),
                c.n_states().to_string(),
                transitions.to_string(),
            ])
            .unwrap();
        }
    }
}

/// Table 1: steps of RR/RRL vs RSD for UA(t).
fn table1(w: &Workload) {
    println!("\n== Table 1: steps for UA(t) (paper values in parentheses) ==");
    let paper_rr: [[usize; 6]; 2] = [
        [56, 323, 2_234, 2_708, 2_938, 3_157],
        [86, 554, 4_187, 5_123, 5_549, 5_957],
    ];
    let paper_rsd: [[usize; 6]; 2] = [
        [66, 355, 2_612, 2_612, 2_612, 2_612],
        [99, 594, 4_823, 4_823, 4_823, 4_823],
    ];
    let mut csv = CsvWriter::create("table1", "g,t,rr_rrl_steps,rsd_steps").unwrap();
    for (gi, &g) in G_VALUES.iter().enumerate() {
        let chain = w.chain(g, Variant::Ua);
        let rrl = make_rrl(&chain);
        let rsd = make_rsd(&chain);
        println!("  G={g}:");
        println!(
            "  {:>9} {:>18} {:>18}",
            "t (h)", "RR/RRL steps", "RSD steps"
        );
        for (ti, &t) in T_GRID.iter().enumerate() {
            let k = rrl.trr(t).unwrap().construction_steps;
            let r = rsd.solve(MeasureKind::Trr, t).steps;
            println!(
                "  {:>9.0} {:>10} ({:>5}) {:>10} ({:>5})",
                t, k, paper_rr[gi][ti], r, paper_rsd[gi][ti]
            );
            csv.row(&[g.to_string(), t.to_string(), k.to_string(), r.to_string()])
                .unwrap();
        }
    }
}

/// Table 2: steps of RR/RRL vs SR for UR(t).
fn table2(w: &Workload) {
    println!("\n== Table 2: steps for UR(t) (paper values in parentheses) ==");
    let paper_rr: [[usize; 6]; 2] = [
        [56, 323, 2_233, 2_708, 2_937, 3_157],
        [86, 554, 4_186, 5_122, 5_547, 5_955],
    ];
    let paper_sr: [[usize; 6]; 2] = [
        [65, 354, 2_726, 24_844, 240_958, 2_386_068],
        [98, 593, 4_849, 45_234, 442_203, 4_390_141],
    ];
    let mut csv = CsvWriter::create("table2", "g,t,rr_rrl_steps,sr_steps").unwrap();
    for (gi, &g) in G_VALUES.iter().enumerate() {
        let chain = w.chain(g, Variant::Ur);
        let rrl = make_rrl(&chain);
        let sr = make_sr(&chain);
        println!("  G={g}:");
        println!("  {:>9} {:>18} {:>20}", "t (h)", "RR/RRL steps", "SR steps");
        for (ti, &t) in T_GRID.iter().enumerate() {
            let k = rrl.trr(t).unwrap().construction_steps;
            // SR's step count is its Poisson right point — computable without
            // running the expensive propagation.
            let lambda_t = sr.lambda() * t;
            let pw = regenr_numeric::PoissonWeights::new(lambda_t, EPSILON);
            let s = pw.right as usize;
            println!(
                "  {:>9.0} {:>10} ({:>5}) {:>10} ({:>9})",
                t, k, paper_rr[gi][ti], s, paper_sr[gi][ti]
            );
            csv.row(&[g.to_string(), t.to_string(), k.to_string(), s.to_string()])
                .unwrap();
        }
    }
}

/// Figure 3: CPU time of RRL / RR / RSD for UA(t), log–log series.
fn fig3(w: &Workload, quick: bool) {
    println!(
        "\n== Figure 3: CPU seconds for UA(t) {} ==",
        quick_note(quick)
    );
    let mut csv = CsvWriter::create("fig3", "g,t,method,seconds,value").unwrap();
    for g in G_VALUES {
        let chain = w.chain(g, Variant::Ua);
        let rrl = make_rrl(&chain);
        let rr = make_rr(&chain);
        let rsd = make_rsd(&chain);
        println!("  G={g}:");
        println!("  {:>9} {:>12} {:>12} {:>12}", "t (h)", "RRL", "RR", "RSD");
        for &t in &T_GRID {
            let (v_rrl, s_rrl) = time_once(|| rrl.trr(t).unwrap().value);
            let (v_rsd, s_rsd) = time_once(|| rsd.solve(MeasureKind::Trr, t).value);
            check(v_rrl, v_rsd, 1e-8, &format!("fig3 G={g} t={t} RRL vs RSD"));
            csv_row(&mut csv, g, t, "RRL", s_rrl, v_rrl);
            csv_row(&mut csv, g, t, "RSD", s_rsd, v_rsd);
            let rr_cell = if quick && t > 1_000.0 {
                csv_row(&mut csv, g, t, "RR", f64::NAN, f64::NAN);
                "   (skipped)".to_string()
            } else {
                let (v_rr, s_rr) = time_once(|| rr.solve(MeasureKind::Trr, t).unwrap().value);
                check(v_rrl, v_rr, 1e-8, &format!("fig3 G={g} t={t} RRL vs RR"));
                csv_row(&mut csv, g, t, "RR", s_rr, v_rr);
                format!("{s_rr:>12.4}")
            };
            println!("  {t:>9.0} {s_rrl:>12.4} {rr_cell} {s_rsd:>12.4}");
        }
    }
}

/// Figure 4: CPU time of RRL / RR / SR for UR(t), log–log series.
fn fig4(w: &Workload, quick: bool) {
    println!(
        "\n== Figure 4: CPU seconds for UR(t) {} ==",
        quick_note(quick)
    );
    let mut csv = CsvWriter::create("fig4", "g,t,method,seconds,value").unwrap();
    for g in G_VALUES {
        let chain = w.chain(g, Variant::Ur);
        let rrl = make_rrl(&chain);
        let rr = make_rr(&chain);
        let sr = make_sr(&chain);
        println!("  G={g}:");
        println!("  {:>9} {:>12} {:>12} {:>12}", "t (h)", "RRL", "RR", "SR");
        for &t in &T_GRID {
            let (v_rrl, s_rrl) = time_once(|| rrl.trr(t).unwrap().value);
            csv_row(&mut csv, g, t, "RRL", s_rrl, v_rrl);
            let skip = quick && t > 1_000.0;
            let rr_cell = if skip {
                csv_row(&mut csv, g, t, "RR", f64::NAN, f64::NAN);
                "   (skipped)".to_string()
            } else {
                let (v_rr, s_rr) = time_once(|| rr.solve(MeasureKind::Trr, t).unwrap().value);
                check(v_rrl, v_rr, 1e-8, &format!("fig4 G={g} t={t} RRL vs RR"));
                csv_row(&mut csv, g, t, "RR", s_rr, v_rr);
                format!("{s_rr:>12.4}")
            };
            let sr_cell = if skip {
                csv_row(&mut csv, g, t, "SR", f64::NAN, f64::NAN);
                "   (skipped)".to_string()
            } else {
                let (v_sr, s_sr) = time_once(|| sr.solve(MeasureKind::Trr, t).value);
                check(v_rrl, v_sr, 1e-8, &format!("fig4 G={g} t={t} RRL vs SR"));
                csv_row(&mut csv, g, t, "SR", s_sr, v_sr);
                format!("{s_sr:>12.4}")
            };
            println!("  {t:>9.0} {s_rrl:>12.4} {rr_cell} {sr_cell}");
        }
    }
}

/// The paper's reported scalars: UR(1e5), abscissae counts, LT share.
fn scalars(w: &Workload) {
    println!("\n== scalars ==");
    let mut csv = CsvWriter::create(
        "scalars",
        "g,ur_1e5,paper_ur,abscissae_min,abscissae_max,lt_share",
    )
    .unwrap();
    for (g, paper_ur) in [(20u32, 0.50480), (40, 0.74750)] {
        let chain = w.chain(g, Variant::Ur);
        let rrl = make_rrl(&chain);
        let ur = rrl.trr(1e5).unwrap();
        let mut abs_min = usize::MAX;
        let mut abs_max = 0usize;
        let mut lt_share: f64 = 0.0;
        for &t in &T_GRID {
            let s = rrl.trr(t).unwrap();
            abs_min = abs_min.min(s.abscissae);
            abs_max = abs_max.max(s.abscissae);
            let total = (s.construction_time + s.inversion_time).as_secs_f64();
            lt_share = lt_share.max(s.inversion_time.as_secs_f64() / total.max(1e-12));
        }
        println!(
            "  G={g}: UR(1e5) = {:.5} (paper {paper_ur}); abscissae {abs_min}–{abs_max} \
             (paper 105–329); LT share ≤ {:.1}% (paper ~1–2%)",
            ur.value,
            100.0 * lt_share
        );
        csv.row(&[
            g.to_string(),
            format!("{:.6}", ur.value),
            paper_ur.to_string(),
            abs_min.to_string(),
            abs_max.to_string(),
            format!("{lt_share:.4}"),
        ])
        .unwrap();
    }
}

/// Ablations: T-multiplier and ε-acceleration choices of Section 2.2.
fn ablation(w: &Workload) {
    use regenr_core::{RegenOptions, RrlOptions, RrlSolver};
    use regenr_laplace::InverterOptions;
    println!("\n== ablation: inversion tuning (G=20, UR, t = 1e4 h) ==");
    let chain = w.chain(20, Variant::Ur);
    let t = 1e4;
    let reference = make_rrl(&chain).trr(t).unwrap().value;
    let mut csv = CsvWriter::create(
        "ablation_laplace",
        "t_multiplier,accelerate,abscissae,converged,abs_error",
    )
    .unwrap();
    println!(
        "  {:>6} {:>12} {:>10} {:>10} {:>12}",
        "T/t", "accelerated", "abscissae", "converged", "error"
    );
    for mult in [1.0, 2.0, 4.0, 8.0, 16.0] {
        for accel in [true, false] {
            let solver = RrlSolver::new(
                &chain,
                0,
                RrlOptions {
                    regen: RegenOptions {
                        epsilon: EPSILON,
                        ..Default::default()
                    },
                    inverter: InverterOptions {
                        t_multiplier: mult,
                        accelerate: accel,
                        max_terms: 100_000,
                        ..Default::default()
                    },
                },
            )
            .unwrap();
            let s = solver.trr(t).unwrap();
            let err = (s.value - reference).abs();
            println!(
                "  {mult:>6.0} {accel:>12} {:>10} {:>10} {err:>12.2e}",
                s.abscissae, s.inversion_converged
            );
            csv.row(&[
                mult.to_string(),
                accel.to_string(),
                s.abscissae.to_string(),
                s.inversion_converged.to_string(),
                format!("{err:.3e}"),
            ])
            .unwrap();
        }
    }
}

/// Ablation: uniformization safety factor θ (Λ = (1+θ)·max rate). Larger Λ
/// means more self-loop mass in the DTMC: a(k) decays more slowly per step,
/// so K grows — the paper's θ = 0 choice is optimal for construction cost.
fn ablation_theta(w: &Workload) {
    use regenr_core::{RegenOptions, RrlOptions, RrlSolver};
    println!("\n== ablation: uniformization safety factor (G=20, UA, t = 1e4 h) ==");
    let chain = w.chain(20, Variant::Ua);
    let mut csv = CsvWriter::create("ablation_theta", "theta,lambda,k_steps,value").unwrap();
    println!(
        "  {:>6} {:>10} {:>8} {:>14}",
        "theta", "lambda", "K", "UA(1e4)"
    );
    let mut reference = None;
    for theta in [0.0, 0.05, 0.2, 0.5, 1.0] {
        let solver = RrlSolver::new(
            &chain,
            0,
            RrlOptions {
                regen: RegenOptions {
                    epsilon: EPSILON,
                    theta,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let s = solver.trr(1e4).unwrap();
        let v = reference.get_or_insert(s.value);
        assert!(
            (s.value - *v).abs() < 1e-9,
            "theta={theta}: value changed: {} vs {v}",
            s.value
        );
        println!(
            "  {theta:>6.2} {:>10.4} {:>8} {:>14.6e}",
            solver.lambda(),
            s.construction_steps,
            s.value
        );
        csv.row(&[
            theta.to_string(),
            format!("{:.4}", solver.lambda()),
            s.construction_steps.to_string(),
            format!("{:.8e}", s.value),
        ])
        .unwrap();
    }
}

/// Corpus sweep: every spec under `specs/` runs three times with the
/// method forced to SR, RR and Auto, and the three value columns must
/// agree — the cross-method consistency check the paper's evaluation
/// rests on. On top of the per-cell agreement this asserts the compose
/// pipeline end to end: the large scenario really exceeds 100k states
/// (so it built through the streaming explorer), the canned `duplex`
/// kind and its compose spelling produce bitwise-equal values, and a
/// component-order permutation of a compose spec yields the same
/// fingerprints, an artifact-cache hit, and a byte-identical `--stable`
/// report.
fn compose_corpus() {
    use regenr_engine::{stable_report_to_json, Engine, Json, SweepSpec};
    use std::collections::BTreeMap;

    println!("\n== compose corpus: cross-method agreement over specs/ ==");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir("specs")
        .expect("specs/ directory (run from the repo root)")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(files.len() >= 6, "corpus must hold at least 6 scenarios");

    let measure_name = |m: MeasureKind| match m {
        MeasureKind::Trr => "trr",
        MeasureKind::Mrr => "mrr",
    };
    const METHODS: [&str; 3] = ["sr", "rr", "auto"];
    let mut csv = CsvWriter::create(
        "compose_corpus",
        "spec,model,measure,t,states,sr,rr,auto,max_rel_delta",
    )
    .unwrap();

    let mut largest = 0usize;
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        // (model, measure, t-bits) → [sr, rr, auto] values; BTreeMap so the
        // printed/CSV order is stable across runs.
        let mut cells: BTreeMap<(String, &'static str, u64), [f64; 3]> = BTreeMap::new();
        let mut states: BTreeMap<String, usize> = BTreeMap::new();
        for (mi, method) in METHODS.iter().enumerate() {
            let Json::Obj(mut members) = Json::parse(&text).unwrap() else {
                panic!("{stem}: spec must be a JSON object");
            };
            members.retain(|(k, _)| k != "method");
            members.push(("method".into(), Json::Str((*method).to_string())));
            let spec =
                SweepSpec::from_json(&Json::Obj(members)).unwrap_or_else(|e| panic!("{stem}: {e}"));
            for r in &spec.requests {
                states.insert(r.name.clone(), r.model.n_states());
            }
            let engine = Engine::with_cache_config(spec.options, spec.cache);
            let report = engine.sweep(&spec.requests);
            assert!(
                report.failures.is_empty(),
                "{stem} [{method}]: {:?}",
                report.failures
            );
            for cell in &report.reports {
                cells
                    .entry((
                        cell.model.clone(),
                        measure_name(cell.measure),
                        cell.t.to_bits(),
                    ))
                    .or_insert([f64::NAN; 3])[mi] = cell.value;
            }
        }
        let mut worst = 0.0f64;
        for ((model, measure, t_bits), vals) in &cells {
            let t = f64::from_bits(*t_bits);
            let [sr, rr, auto] = *vals;
            assert!(
                vals.iter().all(|v| v.is_finite()),
                "{stem}/{model} {measure}({t}): a forced method produced no cell"
            );
            let scale = sr.abs().max(1.0);
            let delta = (sr - rr).abs().max((sr - auto).abs()) / scale;
            worst = worst.max(delta);
            assert!(
                delta < 1e-6,
                "{stem}/{model} {measure}({t}): methods disagree (sr={sr} rr={rr} auto={auto})"
            );
            csv.row(&[
                stem.clone(),
                model.clone(),
                measure.to_string(),
                t.to_string(),
                states[model].to_string(),
                format!("{sr:.12e}"),
                format!("{rr:.12e}"),
                format!("{auto:.12e}"),
                format!("{delta:.3e}"),
            ])
            .unwrap();
        }
        let max_states = states.values().copied().max().unwrap_or(0);
        largest = largest.max(max_states);
        println!(
            "  {stem}: {} cells × 3 methods, ≤{} states, worst rel Δ {worst:.3e}",
            cells.len(),
            max_states
        );

        // The duplex pair is chain-identical by construction (single class —
        // no crew-priority ambiguity), so its values must agree bitwise.
        if stem == "duplex_mission" {
            for ((model, measure, t_bits), vals) in &cells {
                if model != "duplex" {
                    continue;
                }
                let twin = cells
                    .get(&("duplex_composed".to_string(), measure, *t_bits))
                    .expect("composed twin cell");
                for (a, b) in vals.iter().zip(twin) {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "duplex vs compose spelling must agree bitwise ({a} vs {b})"
                    );
                }
            }
            println!("    duplex kind ≡ compose spelling (bitwise)");
        }
    }
    assert!(
        largest >= 100_000,
        "corpus must include a ≥100k-state streaming-built scenario (got {largest})"
    );

    // Component-order independence: permute a compose spec's component
    // list, run original and permuted through ONE engine — fingerprints
    // match, the second sweep is served from the artifact cache, and the
    // `--stable` reports diff byte-for-byte.
    let text = std::fs::read_to_string("specs/cluster_repairable.json").unwrap();
    let forward = Json::parse(&text).unwrap();
    let permuted = {
        let Json::Obj(members) = forward.clone() else {
            unreachable!()
        };
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| {
                    if k != "models" {
                        return (k, v);
                    }
                    let Json::Arr(models) = v else {
                        panic!("models array")
                    };
                    let models = models
                        .into_iter()
                        .map(|m| {
                            let Json::Obj(mm) = m else {
                                panic!("model object")
                            };
                            Json::Obj(
                                mm.into_iter()
                                    .map(|(mk, mv)| {
                                        if mk == "components" {
                                            let Json::Arr(mut c) = mv else {
                                                panic!("components array")
                                            };
                                            c.reverse();
                                            (mk, Json::Arr(c))
                                        } else {
                                            (mk, mv)
                                        }
                                    })
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Json::Arr(models))
                })
                .collect(),
        )
    };
    let spec_a = SweepSpec::from_json(&forward).unwrap();
    let spec_b = SweepSpec::from_json(&permuted).unwrap();
    let engine = Engine::new();
    let report_a = engine.sweep(&spec_a.requests);
    let report_b = engine.sweep(&spec_b.requests);
    assert!(report_a.failures.is_empty() && report_b.failures.is_empty());
    let fp = |r: &regenr_engine::SweepReport| {
        r.reports.iter().map(|c| c.fingerprint).collect::<Vec<_>>()
    };
    assert_eq!(
        fp(&report_a),
        fp(&report_b),
        "permuted component list must fingerprint identically"
    );
    assert!(
        report_b.cache.uniformized.hits > report_a.cache.uniformized.hits
            && report_b.cache.uniformized.misses == report_a.cache.uniformized.misses,
        "permuted rerun must hit the artifact cache (a: {:?}, b: {:?})",
        report_a.cache.uniformized,
        report_b.cache.uniformized
    );
    let stable_a = stable_report_to_json(&report_a).to_string();
    let stable_b = stable_report_to_json(&report_b).to_string();
    assert_eq!(stable_a, stable_b, "stable reports must be byte-identical");
    println!(
        "  permutation: fingerprints equal, +{} cache hits, stable reports byte-identical",
        report_b.cache.uniformized.hits - report_a.cache.uniformized.hits
    );
}

/// Parametric sweep over hot-spare provisioning — the paper's Section 3
/// introduces `G`, `C_H`, `D_H` as the varied parameters; this regenerates
/// the dependability trade-off surface they imply.
fn sweep() {
    use regenr_models::{RaidModel, RaidParams};
    println!("\n== sweep: UA(1e4 h) and UR(1e4 h) vs hot-spare provisioning (G=20) ==");
    let mut csv = CsvWriter::create("sweep", "g,c_h,d_h,ua_1e4,ur_1e4,states").unwrap();
    println!(
        "  {:>4} {:>4} {:>4} {:>13} {:>13} {:>8}",
        "G", "C_H", "D_H", "UA(1e4)", "UR(1e4)", "states"
    );
    for c_h in [0u32, 1, 2] {
        for d_h in [1u32, 3, 5] {
            let base = RaidParams {
                c_h,
                d_h,
                ..RaidParams::paper(20)
            };
            let ua_chain = RaidModel::new(base).build().unwrap().ctmc;
            let ur_chain = RaidModel::new(base.with_absorbing_failure())
                .build()
                .unwrap()
                .ctmc;
            let ua = make_rrl(&ua_chain).trr(1e4).unwrap().value;
            let ur = make_rrl(&ur_chain).trr(1e4).unwrap().value;
            println!(
                "  {:>4} {c_h:>4} {d_h:>4} {ua:>13.4e} {ur:>13.4e} {:>8}",
                20,
                ua_chain.n_states()
            );
            csv.row(&[
                "20".into(),
                c_h.to_string(),
                d_h.to_string(),
                format!("{ua:.6e}"),
                format!("{ur:.6e}"),
                ua_chain.n_states().to_string(),
            ])
            .unwrap();
        }
    }
    // Sanity: more spares must not hurt dependability.
    println!("  (monotonicity in D_H/C_H is asserted by tests/paper_results.rs)");
}

/// The whole paper grid through `regenr-engine`'s `Auto` dispatch: one
/// parallel sweep over (model × horizon), with dispatch reasons, step
/// counts, and artifact-cache counters — the production path that replaces
/// hand-picking a solver per workload.
fn engine_grid(w: &Workload) {
    use regenr_engine::{Engine, SolveRequest};
    println!("\n== engine: Auto dispatch over the paper grid ==");
    let mut csv = CsvWriter::create(
        "engine",
        "g,variant,t,method,reason,steps,value,unif_cache_hit",
    )
    .unwrap();
    let engine = Engine::new();
    let reqs: Vec<SolveRequest> = G_VALUES
        .iter()
        .flat_map(|&g| {
            [(Variant::Ua, "ua"), (Variant::Ur, "ur")].map(|(variant, tag)| {
                SolveRequest::new(
                    format!("raid_g{g}_{tag}"),
                    w.chain(g, variant),
                    T_GRID.to_vec(),
                )
                .epsilon(EPSILON)
            })
        })
        .collect();
    let report = engine.sweep(&reqs);
    assert!(
        report.failures.is_empty(),
        "engine sweep failed: {:?}",
        report.failures
    );
    println!(
        "  {:>12} {:>9} {:>7} {:>26} {:>8} {:>14} {:>6}",
        "model", "t (h)", "method", "reason", "steps", "value", "cache"
    );
    for r in &report.reports {
        println!(
            "  {:>12} {:>9.0} {:>7} {:>26} {:>8} {:>14.6e} {:>6}",
            r.model,
            r.t,
            r.method.name(),
            r.reason.as_str(),
            r.steps,
            r.value,
            if r.unif_cache_hit { "hit" } else { "miss" }
        );
        let (g, variant) = r.model.split_once("_g").map_or(("?", "?"), |(_, rest)| {
            rest.split_once('_').unwrap_or((rest, "?"))
        });
        csv.row(&[
            g.to_string(),
            variant.to_uppercase(),
            r.t.to_string(),
            r.method.name().to_string(),
            r.reason.as_str().to_string(),
            r.steps.to_string(),
            format!("{:.10e}", r.value),
            r.unif_cache_hit.to_string(),
        ])
        .unwrap();
    }
    let cache = report.cache;
    println!(
        "  cache: uniformized {}h/{}m, structure {}h/{}m, regen-params {}h/{}m; wall {:.2}s",
        cache.uniformized.hits,
        cache.uniformized.misses,
        cache.structure.hits,
        cache.structure.misses,
        cache.regen_params.hits,
        cache.regen_params.misses,
        report.wall.as_secs_f64()
    );
    let exec = report.exec;
    println!(
        "  execution: {} sweep workers on a {}-thread pool; pool runs {} (+{} inline), \
         workspace takes {} ({} fresh, {} reused)",
        exec.sweep_workers,
        exec.pool_threads,
        exec.pool.pooled_runs,
        exec.pool.inline_runs,
        exec.workspace.takes,
        exec.workspace.fresh_allocs,
        exec.workspace.reused
    );
    pool_vs_spawn(w);
}

/// Measures the execution-layer refactor directly: repeated SpMV stepping
/// over the G=40 RAID matrix (the hot loop of every randomization solver)
/// through (a) the persistent worker pool with a cached chunk plan versus
/// (b) the original per-product `std::thread::scope` spawning, at the same
/// chunk decomposition. Serial stepping is the baseline; all three produce
/// bitwise-identical iterates.
fn pool_vs_spawn(w: &Workload) {
    use regenr_ctmc::Uniformized;
    use regenr_sparse::{ParallelConfig, WorkerPool};

    println!("\n== execution core: pooled vs per-call-spawn SpMV (G=40 UR stepping) ==");
    let chain = w.chain(40, Variant::Ur);
    let unif = Uniformized::new(&chain, 0.0);
    let n = chain.n_states();
    let steps = 400usize;
    // `chunks` fixes the work decomposition both parallel kernels share;
    // how many threads actually execute it differs per kernel — the spawn
    // baseline creates one scoped thread per chunk, while the pooled path
    // runs on the global pool (and degrades to inline/serial on a
    // single-core pool). The CSV records both so the artifact never
    // overstates the pool's concurrency.
    let pool_threads = WorkerPool::global().threads();
    let chunks = pool_threads.max(4);
    let cfg = ParallelConfig {
        min_nnz: 0,
        threads: chunks,
        // The pool-vs-spawn comparison isolates the execution strategy, so
        // both run the same generic kernel.
        kernel: regenr_sparse::KernelChoice::Generic,
        ..Default::default()
    };
    let exec_threads = |kernel: &str| match kernel {
        "serial" => 1,
        "pooled" => pool_threads.min(chunks),
        _ => chunks,
    };

    let mut csv =
        CsvWriter::create("exec_pool", "kernel,chunks,exec_threads,steps,seconds").unwrap();
    let mut run = |name: &str, step: &mut dyn FnMut(&[f64], &mut [f64])| -> f64 {
        let mut pi = chain.initial().to_vec();
        let mut next = vec![0.0; n];
        // Warm-up step so thread creation / plan caching settles.
        step(&pi, &mut next);
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            step(&pi, &mut next);
            std::mem::swap(&mut pi, &mut next);
        }
        let secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(pi.iter().sum::<f64>());
        csv.row(&[
            name.into(),
            chunks.to_string(),
            exec_threads(name).to_string(),
            steps.to_string(),
            format!("{secs:.6}"),
        ])
        .unwrap();
        secs.max(f64::MIN_POSITIVE)
    };

    let serial = run("serial", &mut |pi, next| {
        unif.p_t.mul_vec_into(pi, next);
    });
    let stepper = unif.stepper(&cfg);
    let pooled = run("pooled", &mut |pi, next| stepper.step(pi, next));
    let spawn = run("spawn_per_call", &mut |pi, next| {
        unif.p_t.mul_vec_spawn_into(pi, next, &cfg);
    });
    println!(
        "  {steps} steps over {n} states x {} nnz, {chunks} chunks \
         (pool executes on {} thread(s), spawn creates {chunks}/call):",
        unif.p_t.nnz(),
        exec_threads("pooled"),
    );
    println!("  {:>16} {:>10.4}s", "serial", serial);
    println!(
        "  {:>16} {:>10.4}s ({:.2}x vs per-call spawn)",
        "pooled (warm)",
        pooled,
        spawn / pooled
    );
    println!("  {:>16} {:>10.4}s", "spawn per call", spawn);
    println!(
        "  pool wall-time improvement over per-call spawning: {:+.1}%",
        (spawn - pooled) / spawn * 100.0
    );
    if pool_threads < chunks {
        println!(
            "  note: the global pool has only {pool_threads} thread(s) here, so the \
             pooled kernel ran (near-)serially; on a {chunks}-core machine both \
             kernels execute {chunks}-way parallel and the delta isolates \
             thread-creation cost."
        );
    }
}

/// The artifact-graph delta-warm path under a sensitivity sweep: a G=40
/// RAID rate grid (`lambda_d` scaled over 40 points, expressed through the
/// spec layer's `"sensitivity"` form) solved twice — *cold*, clearing the
/// cache before every point so each grid point pays the full uniformize +
/// Tarjan + chunk-plan build, and *delta-warm*, sharing one engine so every
/// point after the first re-binds the cached plans/layouts/facts onto its
/// own rates. Asserts the reuse actually happened (`derived_hits > 0`, the
/// process-global structure-analysis counter flat across the warm grid),
/// that warm results are bitwise identical to cold, and that the warm
/// median per-point time beats cold by ≥ 2×. `results/sensitivity.csv`
/// records the per-point build/solve breakdown for both modes.
fn sensitivity() {
    use regenr_ctmc::analysis_runs;
    use regenr_engine::{Engine, SolveReport, SweepSpec};

    println!("\n== sensitivity: G=40 RAID lambda_d grid, cold vs delta-warm ==");
    let grid: Vec<String> = (0..40)
        .map(|i| format!("{}", 0.25 + 0.05 * i as f64))
        .collect();
    let spec_json = format!(
        r#"{{"epsilon": 1e-12, "threads": 1, "horizons": [0.01, 0.1],
            "cache": {{"max_entries": 8}}, "models": [
            {{"kind": "raid", "g": 40, "absorbing": true,
              "sensitivity": {{"param": "lambda_d", "grid": [{}]}}}}]}}"#,
        grid.join(", ")
    );
    let spec = SweepSpec::parse(&spec_json).expect("sensitivity spec parses");
    assert_eq!(spec.requests.len(), 40, "one request per grid point");

    let mut csv = CsvWriter::create(
        "sensitivity",
        "point,factor,mode,build_seconds,solve_seconds,total_seconds,unif_hit",
    )
    .unwrap();
    // One grid pass: per point, total wall of the sweep call split into the
    // solver cells' own wall (solve) and the remainder (artifact builds +
    // dispatch). Returns (per-point totals, reports).
    let mut run_grid = |mode: &str, engine: &Engine, cold: bool| -> (Vec<f64>, Vec<SolveReport>) {
        let mut totals = Vec::with_capacity(spec.requests.len());
        let mut reports = Vec::new();
        for (i, req) in spec.requests.iter().enumerate() {
            if cold {
                engine.cache().clear();
            }
            let t0 = std::time::Instant::now();
            let sweep = engine.sweep(std::slice::from_ref(req));
            let total = t0.elapsed().as_secs_f64();
            assert!(sweep.failures.is_empty(), "{mode}: {:?}", sweep.failures);
            let solve: f64 = sweep.reports.iter().map(|r| r.wall.as_secs_f64()).sum();
            let factor = req.name.rsplit('=').next().unwrap_or("?");
            csv.row(&[
                i.to_string(),
                factor.to_string(),
                mode.into(),
                format!("{:.6}", (total - solve).max(0.0)),
                format!("{solve:.6}"),
                format!("{total:.6}"),
                sweep.reports.iter().any(|r| r.unif_cache_hit).to_string(),
            ])
            .unwrap();
            totals.push(total);
            reports.extend(sweep.reports);
        }
        (totals, reports)
    };

    // Both engines honour the spec's cache cap. Warm, the cap matters: an
    // unbounded pool would retain all 40 uniformizations, so every point
    // would allocate its matrices from fresh kernel pages; capped, the
    // cost-aware eviction drops stale grid points (the structural parent is
    // dependent-weighted and survives) and the allocator recycles their
    // pages. Cold clears the cache per point anyway.
    let cold_engine = Engine::with_cache_config(spec.options, spec.cache);
    let (cold_totals, cold_reports) = run_grid("cold", &cold_engine, true);

    let warm_engine = Engine::with_cache_config(spec.options, spec.cache);
    // Prime with the first grid point, then count structure analyses: the
    // remaining 39 points must not trigger a single fresh Tarjan pass.
    let t0 = std::time::Instant::now();
    let first = warm_engine.sweep(std::slice::from_ref(&spec.requests[0]));
    let first_total = t0.elapsed().as_secs_f64();
    assert!(first.failures.is_empty(), "{:?}", first.failures);
    let analyses_before = analysis_runs();
    // Replay the whole grid warm: point 0 hits the just-primed cache,
    // points 1.. ride the delta path (derived facts + plan rebinds).
    let (warm_points, warm_reports) = run_grid("warm", &warm_engine, false);
    let warm_tail: Vec<f64> = std::iter::once(first_total)
        .chain(warm_points.iter().copied())
        .collect();
    assert_eq!(
        analysis_runs(),
        analyses_before,
        "warm grid points must re-bind cached chain facts, not re-analyze"
    );
    let stats = warm_engine.cache().stats();
    assert!(
        stats.derived_hits > 0,
        "the grid shares one structure: {stats:?}"
    );
    assert!(
        stats.rebinds > 0,
        "rate variants must re-bind plans: {stats:?}"
    );

    // Warm results are bitwise identical to cleared-cache cold solves.
    for (c, h) in cold_reports.iter().zip(&warm_reports) {
        assert_eq!(c.model, h.model);
        assert_eq!(
            c.value.to_bits(),
            h.value.to_bits(),
            "{}: cold {} != warm {}",
            c.model,
            c.value,
            h.value
        );
    }

    let median = |xs: &[f64]| -> f64 {
        let mut s = xs.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    // Skip the priming point when judging the warm path — it is a cold
    // build by construction.
    let cold_med = median(&cold_totals);
    let warm_med = median(&warm_tail[1..]);
    let speedup = cold_med / warm_med;
    println!(
        "  40 points x 2 horizons; cold median {:.4}s, delta-warm median {:.4}s ({speedup:.2}x)",
        cold_med, warm_med
    );
    println!(
        "  warm cache: derived_hits {}, rebinds {}, unif {}h/{}m; analyses flat at {}",
        stats.derived_hits,
        stats.rebinds,
        stats.uniformized.hits,
        stats.uniformized.misses,
        analyses_before
    );
    assert!(
        speedup >= 2.0,
        "delta-warm must be >= 2x faster than cold per grid point, got {speedup:.2}x"
    );
    println!("  bitwise: warm values identical to cold-cache solves (80 cells)");
}

/// A synthetic diag-dense matrix — the diagsplit selection regime: long
/// ragged rows (so neither shortrow nor sliced fires first) with a fully
/// stored diagonal, row sums ≈ 1 so repeated stepping stays bounded (no
/// denormal stalls polluting the timings).
fn diag_dense_matrix(n: usize) -> regenr_sparse::CsrMatrix {
    use regenr_sparse::CooBuilder;
    let mut b = CooBuilder::new(n, n);
    for i in 0..n {
        b.push(i, i, 0.4);
        let len = if i % 2 == 0 { 20 } else { 90 };
        for d in 1..len {
            b.push(i, (i + d * 7 + 1) % n, 0.6 / (len - 1) as f64);
        }
    }
    b.build()
}

/// Kernel × backend ablation: warm repeated stepping on the uniformized
/// `Pᵀ` of the paper's G=20/40 UR models plus a synthetic diag-dense
/// matrix (the diagsplit selection regime), one timing per (kernel,
/// backend) pair — scalar always, plus every SIMD backend this build and
/// CPU support for the kernels that have vector variants. All timings are
/// single-threaded best-of-3 so the numbers isolate the *kernel* (the
/// pool-vs-spawn comparison in `engine` isolates the execution strategy).
/// Every final iterate is asserted bitwise identical to the scalar generic
/// baseline; diagsplit is asserted at least as fast as generic on its own
/// selection regime (the per-row flag branch that used to drag it below
/// its prototype is gone); `results/kernels.csv` records the grid.
fn kernel_ablation(w: &Workload) {
    use regenr_ctmc::Uniformized;
    use regenr_sparse::{
        simd, Backend, BackendChoice, ChunkPlan, CsrMatrix, KernelChoice, KernelKind,
        MatrixProfile, WorkerPool,
    };

    let steps = 400usize;
    let rounds = 5usize;
    println!(
        "\n== kernels: structure-adaptive SpMV ablation (stepping, serial, \
         interleaved best of {rounds}) =="
    );
    let backends = simd::available();
    println!(
        "  backends available in this build/CPU: {}",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut csv = CsvWriter::create(
        "kernels",
        "model,kernel,backend,selected,rhs_block,index_width,steps,seconds,\
         speedup_vs_generic,speedup_vs_scalar",
    )
    .unwrap();
    let force = |b: Backend| match b {
        Backend::Scalar => BackendChoice::Scalar,
        Backend::Sse2 => BackendChoice::Sse2,
        Backend::Avx2 => BackendChoice::Avx2,
    };
    // Names derive from KernelKind::name()/Backend::name() — the same
    // strings the CLI and reports use — so the CSV can never drift.
    let kernels = [
        KernelChoice::Generic,
        KernelChoice::ShortRow,
        KernelChoice::DiagSplit,
        KernelChoice::Sliced,
    ];
    // One timed pass of `steps` products through a prebuilt plan (serial:
    // single-chunk plans run on the calling thread). Every pass restarts
    // from `x0`, so final-iterate bits are comparable across kernels and
    // backends. Timing takes the minimum over `rounds` passes interleaved
    // *across* configurations (round-robin) — consecutive-pass timing on a
    // busy machine lets frequency/noise drift hit one configuration
    // wholesale; interleaving spreads it evenly so the ratios are fair.
    let pass = |m: &CsrMatrix, x0: &[f64], plan: &ChunkPlan| -> (f64, Vec<u64>) {
        let pool = WorkerPool::global();
        let n = m.nrows();
        let mut pi = x0.to_vec();
        let mut next = vec![0.0; n];
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            m.mul_vec_pooled_into(&pi, &mut next, plan, pool);
            std::mem::swap(&mut pi, &mut next);
        }
        let secs = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        (secs, pi.iter().map(|v| v.to_bits()).collect())
    };

    let g20 = Uniformized::new(&w.chain(20, Variant::Ur), 0.0);
    let g40 = Uniformized::new(&w.chain(40, Variant::Ur), 0.0);
    let dd = diag_dense_matrix(1024);
    let e0 = |n: usize| {
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        x
    };
    let grid: [(&str, &CsrMatrix, Vec<f64>); 3] = [
        (
            "ur_g20",
            &g20.p_t,
            w.chain(20, Variant::Ur).initial().to_vec(),
        ),
        (
            "ur_g40",
            &g40.p_t,
            w.chain(40, Variant::Ur).initial().to_vec(),
        ),
        ("diagdense", &dd, e0(dd.nrows())),
    ];

    for (model, m, x0) in grid {
        let profile = MatrixProfile::analyze(m);
        let selected = profile.select();
        println!(
            "  {model}: {} rows, {} nnz, mean row {:.1}, diag density {:.3} -> selected kernel: {}",
            m.nrows(),
            m.nnz(),
            profile.mean_row_len,
            profile.diag_density,
            selected
        );
        if model == "diagdense" {
            assert_eq!(
                selected,
                KernelKind::DiagSplit,
                "the synthetic matrix must sit in diagsplit's selection regime"
            );
        }
        // One configuration per (kernel, backend) pair: scalar always, plus
        // every available SIMD backend for the kernels with vector variants
        // (the others run scalar regardless, so extra rows would be
        // duplicates).
        let mut configs: Vec<(KernelKind, Backend, ChunkPlan)> = Vec::new();
        for choice in kernels {
            let kind = choice.forced().expect("ablation list is forced-only");
            let kernel_backends: &[Backend] = match kind {
                KernelKind::ShortRow | KernelKind::Sliced => &backends,
                _ => &backends[..1],
            };
            for &backend in kernel_backends {
                let plan = ChunkPlan::with_kernel_backend(m, 1, choice, force(backend));
                configs.push((kind, backend, plan));
            }
        }
        // Correctness pass: every configuration bitwise identical to the
        // scalar generic baseline (this also warms layouts and caches).
        let generic_bits = pass(m, &x0, &configs[0].2).1;
        for (kind, backend, plan) in &configs {
            let (_, bits) = pass(m, &x0, plan);
            assert_eq!(
                &bits, &generic_bits,
                "{model} kernel {kind} backend {backend}: iterates must be bitwise \
                 identical to generic"
            );
        }
        // Timing: round-robin over configurations, min per configuration.
        let mut best = vec![f64::INFINITY; configs.len()];
        for _ in 0..rounds {
            for (slot, (_, _, plan)) in configs.iter().enumerate() {
                let (secs, _) = pass(m, &x0, plan);
                best[slot] = best[slot].min(secs);
            }
        }
        let generic_secs = best[0];
        let mut diagsplit_secs = f64::INFINITY;
        let mut scalar_secs = f64::NAN;
        for ((kind, backend, plan), &secs) in configs.iter().zip(&best) {
            if *backend == Backend::Scalar {
                scalar_secs = secs;
                if *kind == KernelKind::DiagSplit {
                    diagsplit_secs = secs;
                }
            }
            let vs_generic = generic_secs / secs;
            let vs_scalar = scalar_secs / secs;
            let is_selected = *kind == selected;
            println!(
                "  {:>10}/{:<6}{} {:>9.4}s  {:>5.2}x vs generic, {:>5.2}x vs scalar",
                kind.name(),
                backend.name(),
                if is_selected { "*" } else { " " },
                secs,
                vs_generic,
                vs_scalar,
            );
            csv.row(&[
                model.to_string(),
                kind.name().to_string(),
                backend.name().to_string(),
                is_selected.to_string(),
                "1".to_string(),
                plan.index_width().to_string(),
                steps.to_string(),
                format!("{secs:.6}"),
                format!("{vs_generic:.3}"),
                format!("{vs_scalar:.3}"),
            ])
            .unwrap();
        }
        if model == "diagdense" {
            // The branchless rewrite's acceptance bar: on its own selection
            // regime diagsplit must no longer lose to the generic loop.
            assert!(
                diagsplit_secs <= generic_secs,
                "diagsplit ({diagsplit_secs:.4}s) must be at least as fast as generic \
                 ({generic_secs:.4}s) on diag-dense matrices"
            );
        }
        if model == "ur_g40" && backends.len() > 1 {
            // The SIMD layer's acceptance bar on the paper's G=40 UR grid:
            // the best vectorized sliced/shortrow backend must clear 1.15×
            // over the suite's scalar generic-CSR baseline (the CSV's
            // reference column). The vs-scalar-same-kernel column is
            // recorded too — that ratio is hardware-dependent (hardware
            // gathers only pay on gather-capable cores; this loop is
            // load-port/bandwidth bound), which is exactly why the
            // backend is a knob and Auto encodes measured policy.
            let best = configs
                .iter()
                .zip(&best)
                .filter(|((kind, backend, _), _)| {
                    matches!(kind, KernelKind::ShortRow | KernelKind::Sliced)
                        && *backend != Backend::Scalar
                })
                .map(|((kind, backend, _), &secs)| (kind, backend, generic_secs / secs))
                .max_by(|a, b| a.2.total_cmp(&b.2))
                .expect("SIMD builds ablate at least one vector backend");
            println!(
                "  acceptance: {}/{} = {:.2}x over scalar generic CSR at G=40 (bar: 1.15x)",
                best.0.name(),
                best.1.name(),
                best.2
            );
            assert!(
                best.2 >= 1.15,
                "best SIMD backend ({}/{}) must be >= 1.15x over generic at G=40, got {:.3}x",
                best.0.name(),
                best.1.name(),
                best.2
            );
        }

        // Blocked-RHS ablation (the multi-horizon grids only): k sweep
        // cells stepped through one k-column SpMM under the Auto kernel and
        // backend. Column j enters the block j serial steps ahead, so the
        // bitwise check proves per-column independence, not just that k
        // copies of one vector agree. `speedup_vs_generic` is per-cell
        // against the scalar generic single-RHS baseline; `speedup_vs_
        // scalar` is per-cell against this configuration's own k=1 row —
        // the matrix streams through memory once per step for all k cells,
        // which is where the bandwidth-wall win comes from.
        if model != "diagdense" {
            const KS: [usize; 4] = [1, 2, 4, 8];
            let max_k = *KS.last().unwrap();
            let pool = WorkerPool::global();
            let n = m.nrows();
            let auto_plan =
                ChunkPlan::with_kernel_backend(m, 1, KernelChoice::Auto, BackendChoice::Auto);
            // Serial reference trajectory: seeds are states 0..max_k, the
            // expected block outputs are states steps..steps+max_k.
            let mut seeds: Vec<Vec<f64>> = Vec::with_capacity(max_k);
            let mut refs: Vec<Vec<u64>> = Vec::with_capacity(max_k);
            {
                let mut cur = x0.clone();
                let mut nxt = vec![0.0; n];
                for step in 0..steps + max_k {
                    if step < max_k {
                        seeds.push(cur.clone());
                    }
                    if step >= steps {
                        refs.push(cur.iter().map(|v| v.to_bits()).collect());
                    }
                    m.mul_vec_pooled_into(&cur, &mut nxt, &auto_plan, pool);
                    std::mem::swap(&mut cur, &mut nxt);
                }
                refs.push(cur.iter().map(|v| v.to_bits()).collect());
            }
            let pass_block = |k: usize| -> f64 {
                let mut pi = vec![0.0; n * k];
                for (j, seed) in seeds.iter().take(k).enumerate() {
                    for (s, &v) in seed.iter().enumerate() {
                        pi[s * k + j] = v;
                    }
                }
                let mut next = vec![0.0; n * k];
                let t0 = std::time::Instant::now();
                for _ in 0..steps {
                    m.mul_mat_pooled_into(&pi, &mut next, &auto_plan, pool, k);
                    std::mem::swap(&mut pi, &mut next);
                }
                let secs = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
                // Column j advanced from state j to state j + steps.
                for j in 0..k {
                    for s in 0..n {
                        assert_eq!(
                            pi[s * k + j].to_bits(),
                            refs[j][s],
                            "{model} rhs_block {k}: column {j} must be bitwise \
                             identical to the serial iterate"
                        );
                    }
                }
                secs
            };
            let mut best_k = vec![f64::INFINITY; KS.len()];
            for _ in 0..rounds {
                for (slot, &k) in KS.iter().enumerate() {
                    best_k[slot] = best_k[slot].min(pass_block(k));
                }
            }
            let t1 = best_k[0];
            for (&k, &tk) in KS.iter().zip(&best_k) {
                let per_cell_vs_generic = generic_secs * k as f64 / tk;
                let per_cell_vs_k1 = t1 * k as f64 / tk;
                println!(
                    "  {:>10}/{:<6}  rhs_block {k}: {tk:>9.4}s  per-cell {:>5.2}x vs k=1, \
                     {:>5.2}x vs scalar generic",
                    auto_plan.kernel_kind().name(),
                    auto_plan.backend().name(),
                    per_cell_vs_k1,
                    per_cell_vs_generic,
                );
                csv.row(&[
                    model.to_string(),
                    auto_plan.kernel_kind().name().to_string(),
                    auto_plan.backend().name().to_string(),
                    (auto_plan.kernel_kind() == selected).to_string(),
                    k.to_string(),
                    auto_plan.index_width().to_string(),
                    steps.to_string(),
                    format!("{tk:.6}"),
                    format!("{per_cell_vs_generic:.3}"),
                    format!("{per_cell_vs_k1:.3}"),
                ])
                .unwrap();
                if model == "ur_g40" && k == 4 {
                    // The blocked layer's acceptance bar: at G=40, four
                    // cells per pass must cost well under four serial
                    // passes — >= 1.5x per cell over this configuration's
                    // own k=1 row.
                    assert!(
                        per_cell_vs_k1 >= 1.5,
                        "rhs_block 4 must be >= 1.5x per cell over k=1 at G=40, \
                         got {per_cell_vs_k1:.3}x"
                    );
                }
            }
        }
    }
    println!(
        "  (* = what Auto selects for this matrix; results/kernels.csv records the grid; \
         build with --features simd for the sse2/avx2 rows)"
    );
}

/// `repro serve` — load-generates the solver service: an in-process
/// `regenr serve` instance takes a single-client baseline, a 32-client
/// identical-spec storm (the coalescing case), a 32-client distinct-spec
/// barrage through the admission gate (429 + retry), and a deadline phase.
/// Per-phase latency percentiles, throughput, and serve-counter deltas go
/// to `results/serve.csv`. Two acceptance bars are asserted: the identical
/// storm must coalesce ≥ 90 % of its clients onto one computation, and its
/// wall time must stay within 2× the single-distinct-spec baseline —
/// i.e. 32 identical clients cost about one sweep, not 32.
fn serve_load() {
    use regenr_engine::serve::http::http_request;
    use regenr_engine::{ServeConfig, ServeStats, Server};
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    println!("\n== serve: request coalescing / admission / deadline load test ==");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_inflight: 4,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let runner = Arc::clone(&server);
    let run_handle = std::thread::spawn(move || runner.run().expect("accept loop"));

    // One client: POST the spec to /sweep (streaming), retrying on 429
    // until admitted; returns the time-to-last-byte in milliseconds and
    // how many times admission pushed back.
    fn client_for(addr: SocketAddr, spec: String) -> (f64, u32) {
        let t0 = Instant::now();
        let mut retries = 0u32;
        loop {
            let (status, body) = http_request(addr, "POST", "/sweep", &spec).expect("request");
            match status {
                200 => {
                    assert!(
                        std::str::from_utf8(&body)
                            .expect("ndjson body")
                            .lines()
                            .last()
                            .expect("summary record")
                            .contains("\"record\":\"summary\""),
                        "stream must end with a summary record"
                    );
                    return (t0.elapsed().as_secs_f64() * 1e3, retries);
                }
                429 => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("unexpected status {other}"),
            }
        }
    }
    let run_phase = |specs: Vec<String>| -> (Vec<f64>, u32, f64) {
        let t0 = Instant::now();
        let handles: Vec<_> = specs
            .into_iter()
            .map(|spec| std::thread::spawn(move || client_for(addr, spec)))
            .collect();
        let mut lat: Vec<f64> = Vec::new();
        let mut retries = 0u32;
        for h in handles {
            let (ms, r) = h.join().expect("client thread");
            lat.push(ms);
            retries += r;
        }
        lat.sort_by(f64::total_cmp);
        (lat, retries, t0.elapsed().as_secs_f64() * 1e3)
    };
    let pct = |sorted: &[f64], p: f64| -> f64 {
        sorted[((p / 100.0 * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
    };
    let raid_spec = |g: u32, extra: &str| {
        format!(
            r#"{{"horizons":[1,10,100,1000,10000,100000],"models":[{{"kind":"raid","g":{g}}},{{"kind":"raid","g":{g},"absorbing":true}}],"epsilon":1e-10{extra}}}"#
        )
    };

    let mut csv = CsvWriter::create(
        "serve",
        "phase,clients,retried_429,coalesced,rejected,deadline_expired,wall_ms,throughput_rps,p50_ms,p95_ms,p99_ms",
    )
    .unwrap();

    // Baseline: the storm's exact spec against a throwaway server, so the
    // ×2 acceptance bar compares identical cold-cache workloads — one
    // distinct client versus 32 coalesced ones.
    let storm_spec = raid_spec(20, "");
    let solo_wall = {
        let baseline = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        })
        .expect("bind baseline");
        let baddr = baseline.local_addr();
        let brunner = Arc::clone(&baseline);
        let bhandle = std::thread::spawn(move || brunner.run().expect("baseline loop"));
        let (solo_ms, _) = client_for(baddr, storm_spec.clone());
        baseline.shutdown();
        bhandle.join().expect("baseline drain");
        println!(
            "  {:>9}: 1 client in {solo_ms:>8.1} ms (distinct-spec cost)",
            "solo"
        );
        csv.row(&[
            "solo".into(),
            "1".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            format!("{solo_ms:.1}"),
            format!("{:.1}", 1e3 / solo_ms),
            format!("{solo_ms:.1}"),
            format!("{solo_ms:.1}"),
            format!("{solo_ms:.1}"),
        ])
        .unwrap();
        solo_ms
    };

    let mut before = server.stats();
    let mut phase = |name: &str, specs: Vec<String>| -> (f64, ServeStats) {
        let clients = specs.len();
        let (lat, retries, wall_ms) = run_phase(specs);
        let after = server.stats();
        let d = ServeStats {
            requests: after.requests - before.requests,
            sweeps: after.sweeps - before.sweeps,
            coalesced: after.coalesced - before.coalesced,
            rejected: after.rejected - before.rejected,
            deadline_expired: after.deadline_expired - before.deadline_expired,
            bad_requests: after.bad_requests - before.bad_requests,
            cells_streamed: after.cells_streamed - before.cells_streamed,
            inflight_highwater: after.inflight_highwater,
            promotions: after.promotions - before.promotions,
            handler_panics: after.handler_panics - before.handler_panics,
        };
        before = after;
        let rps = clients as f64 / (wall_ms / 1e3).max(1e-9);
        println!(
            "  {name:>9}: {clients:>2} clients in {wall_ms:>7.1} ms ({rps:>6.1} req/s) — \
             sweeps {} coalesced {} retried-429 {retries} deadline {}; \
             p50/p95/p99 = {:.1}/{:.1}/{:.1} ms",
            d.sweeps,
            d.coalesced,
            d.deadline_expired,
            pct(&lat, 50.0),
            pct(&lat, 95.0),
            pct(&lat, 99.0),
        );
        csv.row(&[
            name.into(),
            clients.to_string(),
            retries.to_string(),
            d.coalesced.to_string(),
            d.rejected.to_string(),
            d.deadline_expired.to_string(),
            format!("{wall_ms:.1}"),
            format!("{rps:.1}"),
            format!("{:.1}", pct(&lat, 50.0)),
            format!("{:.1}", pct(&lat, 95.0)),
            format!("{:.1}", pct(&lat, 99.0)),
        ])
        .unwrap();
        (wall_ms, d)
    };

    // Storm: 32 clients, all posting the identical (cold) spec.
    let (storm_wall, storm) = phase("storm", vec![storm_spec.clone(); 32]);
    // Distinct barrage: 32 clients, 32 distinct specs through the
    // admission gate (max_inflight = 4; clients retry on 429).
    let distinct: Vec<String> = (0..32)
        .map(|i| {
            format!(
                r#"{{"horizons":[1,10,100,{}],"models":[{{"kind":"raid","g":{}}}],"epsilon":1e-10}}"#,
                1000 + i,
                6 + (i % 8)
            )
        })
        .collect();
    let _ = phase("distinct", distinct);
    // Deadline: 8 identical clients whose sweep is cut mid-flight; the
    // partial streams stay well-formed and the server stays healthy.
    let _ = phase("deadline", vec![raid_spec(21, r#","deadline_ms":50"#); 8]);

    server.shutdown();
    run_handle.join().expect("drain");
    let total = server.stats();
    println!(
        "  totals: requests={} sweeps={} coalesced={} rejected={} deadline_expired={} \
         cells_streamed={} inflight_highwater={}",
        total.requests,
        total.sweeps,
        total.coalesced,
        total.rejected,
        total.deadline_expired,
        total.cells_streamed,
        total.inflight_highwater
    );

    // Acceptance bars (the subsystem's reason to exist).
    assert!(
        storm.coalesced >= 29,
        "identical-spec storm must coalesce >= 90% of 32 clients, got {}",
        storm.coalesced
    );
    assert_eq!(storm.sweeps, 1, "the storm must run exactly one sweep");
    assert!(
        storm_wall <= 2.0 * solo_wall,
        "32-client identical storm ({storm_wall:.1} ms) must cost <= 2x one distinct \
         spec ({solo_wall:.1} ms)"
    );
}

/// `repro chaos` — a fault storm against an in-process server with
/// failpoints armed. Each phase injects one class of infrastructure fault
/// (leader death, chunk panic, NaN corruption, cache-build abort, slow
/// writes) and asserts the robustness bars: no stranded client, recovered
/// values bitwise-identical to running the fallback method directly, and
/// a healthy server afterwards. Results land in `results/chaos.csv`.
#[cfg(feature = "failpoints")]
fn chaos() {
    use regenr_engine::serve::http::http_request;
    use regenr_engine::{Json, ServeConfig, Server};
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    println!("\n== chaos: failpoint-driven fault storm ==");
    regenr_failpoint::clear();
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_inflight: 4,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let runner = Arc::clone(&server);
    let run_handle = std::thread::spawn(move || runner.run().expect("accept loop"));

    // Storm `clients` identical posts at `path`; every client must come
    // back within the watchdog window — a stranded follower (stuck waiting
    // on a dead run) is exactly the bug this harness exists to catch.
    fn storm(
        addr: SocketAddr,
        path: &'static str,
        spec: &str,
        clients: usize,
    ) -> Vec<(u16, String)> {
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..clients {
            let tx = tx.clone();
            let spec = spec.to_string();
            std::thread::spawn(move || {
                let (status, body) = http_request(addr, "POST", path, &spec).expect("request");
                let _ = tx.send((status, String::from_utf8_lossy(&body).into_owned()));
            });
        }
        drop(tx);
        let mut out = Vec::with_capacity(clients);
        for i in 0..clients {
            match rx.recv_timeout(Duration::from_secs(120)) {
                Ok(r) => out.push(r),
                Err(_) => panic!("stranded client: only {i}/{clients} responses arrived"),
            }
        }
        out
    }

    fn num_at(doc: &Json, path: &[&str]) -> f64 {
        let mut j = doc;
        for key in path {
            j = j.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
        }
        let Json::Num(n) = j else {
            panic!("{path:?} is not a number")
        };
        *n
    }

    let mut csv = CsvWriter::create(
        "chaos",
        "phase,clients,ok,promotions,handler_panics,retries,recovered_cells,wall_ms",
    )
    .unwrap();
    let mut before_stats = server.stats();
    let mut before_robust = server.robustness();
    let mut record = |name: &str, clients: usize, ok: usize, wall_ms: f64| {
        let stats = server.stats();
        let robust = server.robustness();
        let promotions = stats.promotions - before_stats.promotions;
        let panics = stats.handler_panics - before_stats.handler_panics;
        let retries = robust.retries - before_robust.retries;
        let recovered = robust.recovered_cells - before_robust.recovered_cells;
        println!(
            "  {name:>12}: {ok}/{clients} ok in {wall_ms:>7.1} ms — promotions {promotions} \
             handler_panics {panics} retries {retries} recovered_cells {recovered}"
        );
        csv.row(&[
            name.into(),
            clients.to_string(),
            ok.to_string(),
            promotions.to_string(),
            panics.to_string(),
            retries.to_string(),
            recovered.to_string(),
            format!("{wall_ms:.1}"),
        ])
        .unwrap();
        before_stats = stats;
        before_robust = robust;
        (promotions, retries, recovered)
    };

    // Phase 1 — leader kill: 32 identical streaming clients; the elected
    // leader panics mid-handler (after the stall, so followers have
    // subscribed). A follower must be promoted and recompute: every
    // client still receives a complete stream with an "ok" summary.
    {
        regenr_failpoint::configure("serve-leader=panic,count=1").unwrap();
        let spec = r#"{"horizons":[1,10,100],"debug_stall_ms":150,"models":[{"kind":"raid","g":8}],"epsilon":1e-10}"#;
        let t0 = Instant::now();
        let results = storm(addr, "/sweep", spec, 32);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let fired = regenr_failpoint::fired_count("serve-leader");
        regenr_failpoint::clear();
        assert!(fired >= 1, "the leader-kill failpoint never fired");
        let ok = results
            .iter()
            .filter(|(status, body)| {
                *status == 200
                    && body
                        .lines()
                        .last()
                        .is_some_and(|l| l.contains(r#""record":"summary""#))
                    && body.lines().last().unwrap().contains(r#""status":"ok""#)
            })
            .count();
        let (promotions, _, _) = record("leader-kill", 32, ok, wall);
        assert_eq!(ok, 32, "every client must see a recovered, ok stream");
        assert!(promotions >= 1, "a follower must have been promoted");
    }

    // Phase 2 — chunk panic: a pool chunk panics mid-SpMV; the supervisor
    // catches the unwind, discards the worker's arenas, and retries the
    // same method under the spec's "max_retries" budget.
    {
        regenr_failpoint::configure("pool-chunk=panic,count=1").unwrap();
        let spec = r#"{"horizons":[10000],"max_retries":2,"models":[{"kind":"raid","g":20}],"epsilon":1e-10}"#;
        let t0 = Instant::now();
        let results = storm(addr, "/sweep/report", spec, 1);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let chunk_fired = regenr_failpoint::fired_count("pool-chunk") >= 1;
        regenr_failpoint::clear();
        let ok = results.iter().filter(|(s, _)| *s == 200).count();
        let (_, retries, _) = record("chunk-panic", 1, ok, wall);
        assert_eq!(ok, 1, "the chunk panic must be absorbed, not surfaced");
        if chunk_fired {
            assert!(retries >= 1, "the supervisor must have retried the job");
        } else {
            // Single-threaded machines run the pool inline and never reach
            // the chunk failpoint; the phase still proves a clean solve.
            println!("      (pool ran inline; chunk failpoint not reached)");
        }
    }

    // Phase 3 — NaN injection: RRL's inverted value is corrupted to NaN.
    // The health check rejects it and the supervisor falls back to RR; the
    // recovered value must be bitwise identical to asking for RR directly.
    let nan_value = {
        regenr_failpoint::configure("rrl-nan=nan,count=1").unwrap();
        let spec = r#"{"horizons":[10000],"method":"rrl","models":[{"kind":"raid","g":8,"absorbing":true}],"epsilon":1e-10}"#;
        let t0 = Instant::now();
        let results = storm(addr, "/sweep/report", spec, 1);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let fired = regenr_failpoint::fired_count("rrl-nan");
        regenr_failpoint::clear();
        assert!(fired >= 1, "the NaN failpoint never fired");
        let (status, body) = &results[0];
        assert_eq!(*status, 200, "the NaN must be recovered, not surfaced");
        let doc = Json::parse(body).expect("report json");
        let Some(Json::Arr(cells)) = doc.get("reports") else {
            panic!("report has no cells: {body}")
        };
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        let Some(Json::Str(via)) = cell.get("recovered_via") else {
            panic!("cell must be annotated with recovered_via: {body}")
        };
        assert_eq!(via, "rr", "RRL's first fallback is RR");
        assert!(num_at(cell, &["attempts"]) >= 2.0);
        let (_, _, recovered) = record("nan-inject", 1, 1, wall);
        assert!(recovered >= 1, "the recovery must be counted");
        num_at(cell, &["value"])
    };
    // The bitwise bar: the same sweep asked to run RR directly (no faults
    // armed) must produce the exact same bits the fallback produced.
    {
        let spec = r#"{"horizons":[10000],"method":"rr","models":[{"kind":"raid","g":8,"absorbing":true}],"epsilon":1e-10}"#;
        let (status, body) = http_request(addr, "POST", "/sweep/report", spec).expect("request");
        assert_eq!(status, 200);
        let doc = Json::parse(&body_str(&body)).expect("report json");
        let Some(Json::Arr(cells)) = doc.get("reports") else {
            panic!("no cells")
        };
        let direct = num_at(&cells[0], &["value"]);
        assert_eq!(
            nan_value.to_bits(),
            direct.to_bits(),
            "recovered value {nan_value:e} must be bitwise identical to direct RR {direct:e}"
        );
        println!("      bitwise: recovered rr == direct rr ({nan_value:.12e})");
    }

    // Phase 4 — cache-build abort: the uniformization build panics once
    // mid-construction. The cache's slot cleanup unpoisons the key and the
    // supervisor's retry rebuilds it.
    {
        regenr_failpoint::configure("cache-build-unif=panic,count=1").unwrap();
        let spec = r#"{"horizons":[100],"max_retries":1,"models":[{"kind":"raid","g":10}],"epsilon":1e-10}"#;
        let t0 = Instant::now();
        let results = storm(addr, "/sweep/report", spec, 1);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let fired = regenr_failpoint::fired_count("cache-build-unif");
        regenr_failpoint::clear();
        assert!(fired >= 1, "the cache-build failpoint never fired");
        let ok = results.iter().filter(|(s, _)| *s == 200).count();
        let (_, retries, _) = record("cache-abort", 1, ok, wall);
        assert_eq!(
            ok, 1,
            "the aborted cache build must be retried, not surfaced"
        );
        assert!(retries >= 1);
    }

    // Phase 5 — slow writes: every 5th cell record written to any client
    // stalls. Streams slow down but nobody wedges or drops records.
    {
        regenr_failpoint::configure("serve-write=delay:2,every=5").unwrap();
        let spec = r#"{"horizons":[1,10,100],"models":[{"kind":"raid","g":9}],"epsilon":1e-10}"#;
        let t0 = Instant::now();
        let results = storm(addr, "/sweep", spec, 32);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        regenr_failpoint::clear();
        let ok = results
            .iter()
            .filter(|(status, body)| {
                *status == 200
                    && body
                        .lines()
                        .last()
                        .is_some_and(|l| l.contains(r#""record":"summary""#))
            })
            .count();
        record("slow-write", 32, ok, wall);
        assert_eq!(ok, 32, "slow writes must not wedge or truncate any stream");
    }

    // The server must come out of the storm healthy: liveness green, stats
    // servable, and a fresh (never-faulted) sweep solving cleanly.
    let (status, body) = http_request(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(body_str(&body).contains("ok"), "healthz must be green");
    let (status, body) = http_request(addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    assert!(
        body_str(&body).contains("robustness"),
        "stats must carry the robustness aggregate"
    );
    let (status, _) = http_request(
        addr,
        "POST",
        "/sweep/report",
        r#"{"horizons":[1],"models":[{"kind":"raid","g":7}],"epsilon":1e-10}"#,
    )
    .expect("clean sweep");
    assert_eq!(status, 200, "the server must still solve after the storm");

    server.shutdown();
    run_handle.join().expect("drain");
    let total = server.stats();
    println!(
        "  healthy after storm: requests={} sweeps={} promotions={} handler_panics={}",
        total.requests, total.sweeps, total.promotions, total.handler_panics
    );
    println!("  chaos: all bars passed");
}

#[cfg(feature = "failpoints")]
fn body_str(body: &[u8]) -> String {
    String::from_utf8_lossy(body).into_owned()
}

#[cfg(not(feature = "failpoints"))]
fn chaos() {
    eprintln!(
        "repro chaos needs the failpoint layer compiled in:\n  cargo run -p regenr-bench \
         --release --features failpoints --bin repro -- chaos"
    );
    std::process::exit(2);
}

fn quick_note(quick: bool) -> &'static str {
    if quick {
        "(--quick: Θ(Λt) methods capped at t ≤ 1e3)"
    } else {
        "(full grid)"
    }
}

/// Cross-method agreement check. The tolerance is looser than ε because the
/// Θ(Λt) methods accumulate floating-point roundoff over millions of steps,
/// which the analytic error budget does not cover (at t = 1e5 the inner SR
/// of RR performs ~4.4e6 compensated accumulations and drifts by ~1e-8 —
/// still 8 agreeing digits). Disagreement beyond tolerance aborts; smaller
/// drift is reported as a warning so the timing harness keeps running.
fn check(a: f64, b: f64, tol: f64, ctx: &str) {
    let d = (a - b).abs();
    assert!(d < 1e-6, "{ctx}: {a} vs {b} — methods genuinely disagree");
    if d >= tol {
        eprintln!("  warning: {ctx}: drift {d:.2e} (roundoff of the Θ(Λt) method)");
    }
}

fn csv_row(csv: &mut CsvWriter, g: u32, t: f64, method: &str, secs: f64, value: f64) {
    csv.row(&[
        g.to_string(),
        t.to_string(),
        method.to_string(),
        format!("{secs:.6}"),
        format!("{value:.10e}"),
    ])
    .unwrap();
}
