//! Self-contained JSON reading/writing for the sweep CLI.
//!
//! The build environment has no registry access, so instead of `serde` the
//! engine carries this ~200-line JSON subset: the full value model, a
//! recursive-descent parser (strings with escapes, numbers, literals,
//! arrays, objects) and a compact writer. Good enough for sweep specs and
//! reports; not a general-purpose validator (e.g. duplicate keys are kept
//! last-wins by the accessors).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (last duplicate wins), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                message: "trailing characters after the document",
            });
        }
        Ok(value)
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Copy, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, message: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { pos: *pos, message })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        _ => Err(JsonError {
            pos: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static [u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError {
            pos: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or(JsonError {
            pos: start,
            message: "invalid number",
        })
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    pos: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).copied().ok_or(JsonError {
                    pos: *pos,
                    message: "unterminated escape",
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            pos: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                pos: *pos,
                                message: "invalid \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for sweep specs.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos - 1,
                            message: "unknown escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let tail = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    pos: *pos,
                    message: "invalid UTF-8",
                })?;
                let ch = tail.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    pos: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => {
                return Err(JsonError {
                    pos: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity literal (e.g. the ODE oracle
                    // reports error_bound = NaN); emit null so the document
                    // stays parseable.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x:e}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl Json {
    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str(&format!("{}", Json::Str(k.clone())));
                    out.push_str(": ");
                    v.pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => out.push_str(&format!("{other}")),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{ "a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "e": "x\ny" }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-0.03)
        );
    }

    #[test]
    fn roundtrips_through_display() {
        let doc = r#"{"name":"raid \"paper\"","g":20,"eps":1e-12,"flags":[true,false,null]}"#;
        let v = Json::parse(doc).unwrap();
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let doc = Json::Obj(vec![
            ("nan".into(), Json::Num(f64::NAN)),
            ("inf".into(), Json::Num(f64::INFINITY)),
        ]);
        let text = doc.to_string();
        assert_eq!(text, r#"{"nan":null,"inf":null}"#);
        assert!(Json::parse(&text).is_ok(), "output must stay parseable");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Json::parse(r#"{"a":[1,{"b":2}],"c":"s"}"#).unwrap();
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }
}
