//! Structural model fingerprints — the artifact-cache key.
//!
//! Two [`Ctmc`]s with identical state count, generator sparsity/rates,
//! initial distribution and rewards produce the same fingerprint, so
//! repeated [`crate::SolveRequest`]s over the same model (across horizons,
//! tolerances, measures, or independently rebuilt model instances) land on
//! the same cached artifacts. The hash is FNV-1a over the exact bit patterns
//! — no float rounding, so "almost equal" models intentionally do *not*
//! collide.

use crate::json::Json;
use regenr_ctmc::Ctmc;

/// Canonicalizes a spec document for keying: inside every model object
/// whose `"kind"` is `"compose"`, the `"components"` array is sorted by
/// component `"name"`. This mirrors the sort `spec.rs` applies before
/// compiling, so two specs that differ only in component order build the
/// identical chain (same [`fingerprint`], so the artifact cache hits) *and*
/// hash to the same serve coalescing key (so concurrent permuted posts
/// share one computation). Everything else — order of other keys, other
/// model kinds — is left untouched; the compact re-serialization of the
/// result already normalizes whitespace and float spelling.
pub fn canonicalize_spec(doc: &Json) -> Json {
    let Json::Obj(members) = doc else {
        return doc.clone();
    };
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                if k == "models" {
                    if let Json::Arr(models) = v {
                        let models = models.iter().map(canonicalize_model).collect();
                        return (k.clone(), Json::Arr(models));
                    }
                }
                (k.clone(), v.clone())
            })
            .collect(),
    )
}

fn canonicalize_model(model: &Json) -> Json {
    let Json::Obj(members) = model else {
        return model.clone();
    };
    if model.get("kind").and_then(Json::as_str) != Some("compose") {
        return model.clone();
    }
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                if k == "components" {
                    if let Json::Arr(comps) = v {
                        let mut sorted = comps.clone();
                        // Stable: malformed entries without a name keep
                        // their relative order (validation rejects them
                        // later with a precise error).
                        sorted.sort_by_key(|c| {
                            c.get("name").and_then(Json::as_str).map(str::to_string)
                        });
                        return (k.clone(), Json::Arr(sorted));
                    }
                }
                (k.clone(), v.clone())
            })
            .collect(),
    )
}

/// 64-bit FNV-1a state over *words*: one xor + one multiply per `u64`
/// instead of the textbook byte loop. Fingerprints are in-process cache
/// keys, never persisted, so the only requirements are determinism and
/// dispersion — and word-granular FNV keeps both while making the
/// per-request fingerprint pass ~8× cheaper, which matters because a
/// sensitivity sweep fingerprints a fresh model per grid point.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x1000_0000_01b3);
    }

    #[inline]
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// Computes the structural fingerprint of a chain.
pub fn fingerprint(ctmc: &Ctmc) -> u64 {
    let mut h = Fnv::new();
    let g = ctmc.generator();
    h.write_u64(ctmc.n_states() as u64);
    for &p in g.row_ptr() {
        h.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        h.write_u64(j as u64);
    }
    for &v in g.values() {
        h.write_f64(v);
    }
    for &a in ctmc.initial() {
        h.write_f64(a);
    }
    for &r in ctmc.rewards() {
        h.write_f64(r);
    }
    h.0
}

/// The full fingerprint split along the structure/value axis — the keys of
/// the two-level artifact graph in [`crate::cache::ArtifactCache`].
///
/// `structure` covers everything [`regenr_ctmc::structure::analyze`]'s
/// output can depend on: the CSR sparsity pattern, the *support* of the rate
/// values (Tarjan and absorbing-reachability both filter edges on
/// `rate > 0.0`, so a rate dropping to exactly zero is a structural change,
/// not a value change), the support of the initial distribution (initial
/// mass on an absorbing state is a structural rejection), and the support of
/// the reward vector. Two chains with equal `structure` fingerprints have
/// identical topology facts, chunk plans, and kernel layouts; only the
/// numbers differ — which is what `value` hashes. `unif`/`unif_structure`
/// are the generator-only analogues (initials and rewards ignored), keying
/// the uniformization pool and its delta-rebind donor index respectively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelFps {
    /// The classic full fingerprint ([`fingerprint`]): structure + values.
    pub full: u64,
    /// Pattern + value/initial/reward supports — the structural key.
    pub structure: u64,
    /// Rate, initial, and reward numbers — the value key.
    pub value: u64,
    /// Generator-only full fingerprint ([`unif_fingerprint`]).
    pub unif: u64,
    /// Generator-only structural key: pattern + rate support. Equal
    /// `unif_structure` means an existing `Uniformized` can be rebound to
    /// the new rates, reusing its plans and layouts.
    pub unif_structure: u64,
}

/// Domain separator for [`ModelFps::structure`].
const STRUCT_FP_SEP: u64 = 0x7374_7275_6374_2d00; // "struct-"
/// Domain separator for [`ModelFps::value`].
const VALUE_FP_SEP: u64 = 0x7661_6c75_652d_6600; // "value-f"
/// Domain separator for [`ModelFps::unif_structure`].
const UNIF_STRUCT_FP_SEP: u64 = 0x7573_7472_7563_7400; // "ustruct"

/// Computes every fingerprint of [`ModelFps`] in one traversal of the
/// model's arrays (five running hash states fed per element), so a
/// sensitivity grid pays one memory pass per point instead of five. The
/// `full` and `unif` components are bit-identical to standalone
/// [`fingerprint`] / [`unif_fingerprint`] calls.
pub fn model_fps(ctmc: &Ctmc) -> ModelFps {
    let g = ctmc.generator();
    let n = ctmc.n_states() as u64;

    let mut f = Fnv::new(); // full ([`fingerprint`])
    let mut u = Fnv::new(); // unif ([`unif_fingerprint`])
    u.write_u64(0x756e_6966_2d66_7000);
    let mut s = Fnv::new(); // structure
    let mut us = Fnv::new(); // unif structure
    s.write_u64(STRUCT_FP_SEP);
    us.write_u64(UNIF_STRUCT_FP_SEP);
    let mut v = Fnv::new(); // value
    v.write_u64(VALUE_FP_SEP);

    f.write_u64(n);
    u.write_u64(n);
    s.write_u64(n);
    us.write_u64(n);
    for &p in g.row_ptr() {
        f.write_u64(p as u64);
        u.write_u64(p as u64);
        s.write_u64(p as u64);
        us.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        f.write_u64(j as u64);
        u.write_u64(j as u64);
        s.write_u64(j as u64);
        us.write_u64(j as u64);
    }
    for &x in g.values() {
        let support = (x != 0.0) as u64;
        f.write_f64(x);
        u.write_f64(x);
        s.write_u64(support);
        us.write_u64(support);
        v.write_f64(x);
    }
    for &a in ctmc.initial() {
        f.write_f64(a);
        s.write_u64((a > 0.0) as u64);
        v.write_f64(a);
    }
    for &r in ctmc.rewards() {
        f.write_f64(r);
        s.write_u64((r != 0.0) as u64);
        v.write_f64(r);
    }

    ModelFps {
        full: f.0,
        structure: s.0,
        value: v.0,
        unif: u.0,
        unif_structure: us.0,
    }
}

/// Fingerprint of the chain's *generator alone* — states and rate matrix,
/// ignoring initial distribution and rewards. Two chains with equal
/// generator fingerprints uniformize to the identical `P`/`Pᵀ`/`Λ`, so the
/// engine may solve their sweep cells in one blocked propagation over a
/// shared [`regenr_ctmc::Uniformized`] (different initials and rewards ride
/// in separate block columns). A distinguishing constant keeps this hash
/// domain-separated from [`fingerprint`].
pub fn unif_fingerprint(ctmc: &Ctmc) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(0x756e_6966_2d66_7000); // "unif-fp" domain separator
    let g = ctmc.generator();
    h.write_u64(ctmc.n_states() as u64);
    for &p in g.row_ptr() {
        h.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        h.write_u64(j as u64);
    }
    for &v in g.values() {
        h.write_f64(v);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(lambda: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn equal_models_share_fingerprint() {
        assert_eq!(fingerprint(&chain(1e-3)), fingerprint(&chain(1e-3)));
    }

    #[test]
    fn rate_change_alters_fingerprint() {
        assert_ne!(fingerprint(&chain(1e-3)), fingerprint(&chain(2e-3)));
    }

    #[test]
    fn reward_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_rewards(vec![0.0, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn initial_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_initial(vec![0.5, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    /// The generator-only fingerprint ignores initials/rewards (so blocked
    /// grouping sees through them) but still separates different generators
    /// and never collides with the full fingerprint.
    #[test]
    fn unif_fingerprint_ignores_initials_and_rewards() {
        let a = chain(1e-3);
        let b = a.with_rewards(vec![0.0, 0.5]).unwrap();
        let c = a.with_initial(vec![0.5, 0.5]).unwrap();
        assert_eq!(unif_fingerprint(&a), unif_fingerprint(&b));
        assert_eq!(unif_fingerprint(&a), unif_fingerprint(&c));
        assert_ne!(unif_fingerprint(&a), unif_fingerprint(&chain(2e-3)));
        assert_ne!(unif_fingerprint(&a), fingerprint(&a));
    }

    /// Scaling a rate changes the value fingerprint but not the structural
    /// one — the property the delta-aware artifact graph keys on.
    #[test]
    fn rate_scaling_preserves_structure_fp_and_alters_value_fp() {
        let a = model_fps(&chain(1e-3));
        let b = model_fps(&chain(2e-3));
        assert_eq!(a.structure, b.structure);
        assert_eq!(a.unif_structure, b.unif_structure);
        assert_ne!(a.value, b.value);
        assert_ne!(a.full, b.full);
        assert_ne!(a.unif, b.unif);
        // The five hashes live in separate domains.
        let fps = [a.full, a.structure, a.value, a.unif, a.unif_structure];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fp domains {i} and {j} collided");
            }
        }
    }

    /// The fused single-traversal `model_fps` must agree bit-for-bit with
    /// the standalone full/unif fingerprint functions.
    #[test]
    fn model_fps_matches_standalone_fingerprints() {
        for c in [
            chain(1e-3),
            chain(2e-3).with_initial(vec![0.5, 0.5]).unwrap(),
            chain(0.7).with_rewards(vec![2.0, 0.0]).unwrap(),
        ] {
            let fps = model_fps(&c);
            assert_eq!(fps.full, fingerprint(&c));
            assert_eq!(fps.unif, unif_fingerprint(&c));
        }
    }

    /// Value-only deltas share a structural key; support changes in the
    /// initial distribution or rewards (which `analyze` keys off) do not.
    #[test]
    fn support_changes_are_structural() {
        let a = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 1e-4)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let fa = model_fps(&a);
        // Same pattern, same supports, different numbers: value-only delta.
        let b = Ctmc::from_rates(
            3,
            &[(0, 1, 2.0), (1, 0, 0.25), (1, 2, 2e-4)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let fb = model_fps(&b);
        assert_eq!(fa.structure, fb.structure);
        assert_eq!(fa.unif_structure, fb.unif_structure);
        // Initial support moving is structural (absorbing-mass rejection
        // keys off it), as is a reward dropping to zero.
        let c = a.with_initial(vec![0.5, 0.5, 0.0]).unwrap();
        assert_ne!(model_fps(&c).structure, fa.structure);
        let d = a.with_rewards(vec![0.0, 1.0, 0.0]).unwrap();
        assert_ne!(model_fps(&d).structure, fa.structure);
        // And the generator-only structural key ignores both.
        assert_eq!(model_fps(&c).unif_structure, fa.unif_structure);
        assert_eq!(model_fps(&d).unif_structure, fa.unif_structure);
    }

    #[test]
    fn canonicalize_sorts_compose_components_only() {
        let permuted = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"b","count":2,"lambda":0.1},
                    {"name":"a","count":1,"lambda":0.2}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        let sorted = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"a","count":1,"lambda":0.2},
                    {"name":"b","count":2,"lambda":0.1}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        assert_eq!(
            canonicalize_spec(&permuted).to_string(),
            canonicalize_spec(&sorted).to_string(),
            "component order must not matter"
        );
        // Other semantic differences still separate.
        let other = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"a","count":3,"lambda":0.2},
                    {"name":"b","count":2,"lambda":0.1}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        assert_ne!(
            canonicalize_spec(&permuted).to_string(),
            canonicalize_spec(&other).to_string()
        );
    }
}
