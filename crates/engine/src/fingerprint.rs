//! Structural model fingerprints — the artifact-cache key.
//!
//! Two [`Ctmc`]s with identical state count, generator sparsity/rates,
//! initial distribution and rewards produce the same fingerprint, so
//! repeated [`crate::SolveRequest`]s over the same model (across horizons,
//! tolerances, measures, or independently rebuilt model instances) land on
//! the same cached artifacts. The hash is FNV-1a over the exact bit patterns
//! — no float rounding, so "almost equal" models intentionally do *not*
//! collide.

use crate::json::Json;
use regenr_ctmc::Ctmc;

/// Canonicalizes a spec document for keying: inside every model object
/// whose `"kind"` is `"compose"`, the `"components"` array is sorted by
/// component `"name"`. This mirrors the sort `spec.rs` applies before
/// compiling, so two specs that differ only in component order build the
/// identical chain (same [`fingerprint`], so the artifact cache hits) *and*
/// hash to the same serve coalescing key (so concurrent permuted posts
/// share one computation). Everything else — order of other keys, other
/// model kinds — is left untouched; the compact re-serialization of the
/// result already normalizes whitespace and float spelling.
pub fn canonicalize_spec(doc: &Json) -> Json {
    let Json::Obj(members) = doc else {
        return doc.clone();
    };
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                if k == "models" {
                    if let Json::Arr(models) = v {
                        let models = models.iter().map(canonicalize_model).collect();
                        return (k.clone(), Json::Arr(models));
                    }
                }
                (k.clone(), v.clone())
            })
            .collect(),
    )
}

fn canonicalize_model(model: &Json) -> Json {
    let Json::Obj(members) = model else {
        return model.clone();
    };
    if model.get("kind").and_then(Json::as_str) != Some("compose") {
        return model.clone();
    }
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                if k == "components" {
                    if let Json::Arr(comps) = v {
                        let mut sorted = comps.clone();
                        // Stable: malformed entries without a name keep
                        // their relative order (validation rejects them
                        // later with a precise error).
                        sorted.sort_by_key(|c| {
                            c.get("name").and_then(Json::as_str).map(str::to_string)
                        });
                        return (k.clone(), Json::Arr(sorted));
                    }
                }
                (k.clone(), v.clone())
            })
            .collect(),
    )
}

/// 64-bit FNV-1a state.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// Computes the structural fingerprint of a chain.
pub fn fingerprint(ctmc: &Ctmc) -> u64 {
    let mut h = Fnv::new();
    let g = ctmc.generator();
    h.write_u64(ctmc.n_states() as u64);
    for &p in g.row_ptr() {
        h.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        h.write_u64(j as u64);
    }
    for &v in g.values() {
        h.write_f64(v);
    }
    for &a in ctmc.initial() {
        h.write_f64(a);
    }
    for &r in ctmc.rewards() {
        h.write_f64(r);
    }
    h.0
}

/// Fingerprint of the chain's *generator alone* — states and rate matrix,
/// ignoring initial distribution and rewards. Two chains with equal
/// generator fingerprints uniformize to the identical `P`/`Pᵀ`/`Λ`, so the
/// engine may solve their sweep cells in one blocked propagation over a
/// shared [`regenr_ctmc::Uniformized`] (different initials and rewards ride
/// in separate block columns). A distinguishing constant keeps this hash
/// domain-separated from [`fingerprint`].
pub fn unif_fingerprint(ctmc: &Ctmc) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(0x756e_6966_2d66_7000); // "unif-fp" domain separator
    let g = ctmc.generator();
    h.write_u64(ctmc.n_states() as u64);
    for &p in g.row_ptr() {
        h.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        h.write_u64(j as u64);
    }
    for &v in g.values() {
        h.write_f64(v);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(lambda: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn equal_models_share_fingerprint() {
        assert_eq!(fingerprint(&chain(1e-3)), fingerprint(&chain(1e-3)));
    }

    #[test]
    fn rate_change_alters_fingerprint() {
        assert_ne!(fingerprint(&chain(1e-3)), fingerprint(&chain(2e-3)));
    }

    #[test]
    fn reward_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_rewards(vec![0.0, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn initial_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_initial(vec![0.5, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    /// The generator-only fingerprint ignores initials/rewards (so blocked
    /// grouping sees through them) but still separates different generators
    /// and never collides with the full fingerprint.
    #[test]
    fn unif_fingerprint_ignores_initials_and_rewards() {
        let a = chain(1e-3);
        let b = a.with_rewards(vec![0.0, 0.5]).unwrap();
        let c = a.with_initial(vec![0.5, 0.5]).unwrap();
        assert_eq!(unif_fingerprint(&a), unif_fingerprint(&b));
        assert_eq!(unif_fingerprint(&a), unif_fingerprint(&c));
        assert_ne!(unif_fingerprint(&a), unif_fingerprint(&chain(2e-3)));
        assert_ne!(unif_fingerprint(&a), fingerprint(&a));
    }

    #[test]
    fn canonicalize_sorts_compose_components_only() {
        let permuted = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"b","count":2,"lambda":0.1},
                    {"name":"a","count":1,"lambda":0.2}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        let sorted = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"a","count":1,"lambda":0.2},
                    {"name":"b","count":2,"lambda":0.1}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        assert_eq!(
            canonicalize_spec(&permuted).to_string(),
            canonicalize_spec(&sorted).to_string(),
            "component order must not matter"
        );
        // Other semantic differences still separate.
        let other = Json::parse(
            r#"{"horizons":[1],"models":[
                {"kind":"compose","components":[
                    {"name":"a","count":3,"lambda":0.2},
                    {"name":"b","count":2,"lambda":0.1}]},
                {"kind":"inline","rates":[[0,1,1.0]],"rewards":[1,0]}]}"#,
        )
        .unwrap();
        assert_ne!(
            canonicalize_spec(&permuted).to_string(),
            canonicalize_spec(&other).to_string()
        );
    }
}
