//! Structural model fingerprints — the artifact-cache key.
//!
//! Two [`Ctmc`]s with identical state count, generator sparsity/rates,
//! initial distribution and rewards produce the same fingerprint, so
//! repeated [`crate::SolveRequest`]s over the same model (across horizons,
//! tolerances, measures, or independently rebuilt model instances) land on
//! the same cached artifacts. The hash is FNV-1a over the exact bit patterns
//! — no float rounding, so "almost equal" models intentionally do *not*
//! collide.

use regenr_ctmc::Ctmc;

/// 64-bit FNV-1a state.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// Computes the structural fingerprint of a chain.
pub fn fingerprint(ctmc: &Ctmc) -> u64 {
    let mut h = Fnv::new();
    let g = ctmc.generator();
    h.write_u64(ctmc.n_states() as u64);
    for &p in g.row_ptr() {
        h.write_u64(p as u64);
    }
    for &j in g.col_idx() {
        h.write_u64(j as u64);
    }
    for &v in g.values() {
        h.write_f64(v);
    }
    for &a in ctmc.initial() {
        h.write_f64(a);
    }
    for &r in ctmc.rewards() {
        h.write_f64(r);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(lambda: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn equal_models_share_fingerprint() {
        assert_eq!(fingerprint(&chain(1e-3)), fingerprint(&chain(1e-3)));
    }

    #[test]
    fn rate_change_alters_fingerprint() {
        assert_ne!(fingerprint(&chain(1e-3)), fingerprint(&chain(2e-3)));
    }

    #[test]
    fn reward_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_rewards(vec![0.0, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn initial_change_alters_fingerprint() {
        let a = chain(1e-3);
        let b = a.with_initial(vec![0.5, 0.5]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
