//! The engine proper: batch requests, `Auto` method dispatch, and the
//! parallel sweep executor.
//!
//! ## Dispatch
//!
//! `Auto` encodes the paper's Section 3 decision logic per horizon:
//!
//! 1. **small `Λt`** — standard randomization; at small horizons SR's
//!    `Θ(Λt)` step count is tiny and it carries a rigorous bound;
//! 2. **irreducible chain** — randomization with steady-state detection
//!    (the `UA(t)` column of Table 1): its step count saturates at the
//!    detection step;
//! 3. **otherwise** (absorbing chains at stiff/large horizons — the `UR(t)`
//!    column of Table 2, where SR needs millions of steps) — RRL, whose
//!    construction cost saturates in `t` and whose inversion is `O(K)` per
//!    abscissa.
//!
//! ## Sweep execution
//!
//! [`Engine::sweep`] plans every request into `(model, measure,
//! method-group-of-horizons)` jobs and executes the jobs on a scoped-thread
//! worker pool (the repo convention — see `regenr_sparse::parallel` — is
//! std scoped threads, no external runtime). Horizons that share a method
//! stay together so the per-method batch paths (`SrSolver::solve_many`'s
//! single propagation sweep, RRL's shared construction) keep their savings;
//! independent jobs run concurrently.

use crate::cache::{ArtifactCache, CacheConfig, CacheStats, ChainFacts};
use crate::fingerprint::fingerprint;
use crate::method::Method;
use crate::solver::{build_solver, EngineSolution, SolveConfig, Solver};
use crate::EngineError;
use regenr_ctmc::Ctmc;
use regenr_laplace::InverterOptions;
use regenr_sparse::{effective_threads, ParallelConfig};
use regenr_transient::MeasureKind;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a request picks its method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodChoice {
    /// Per-horizon automatic dispatch (the engine's reason is reported).
    Auto,
    /// Force one method for every horizon; capability violations are errors.
    Fixed(Method),
}

/// A batch solve request: one model, one measure, many horizons.
#[derive(Clone)]
pub struct SolveRequest {
    /// The chain to analyse.
    pub model: Arc<Ctmc>,
    /// Display name used in reports.
    pub name: String,
    /// Which measure to compute.
    pub measure: MeasureKind,
    /// Horizons (hours); report order follows this order.
    pub horizons: Vec<f64>,
    /// Total absolute error budget `ε`.
    pub epsilon: f64,
    /// Method selection.
    pub method: MethodChoice,
    /// Regenerative state override for RR/RRL.
    pub regen_state: Option<usize>,
}

impl SolveRequest {
    /// A request with the paper's defaults (`TRR`, `ε = 10⁻¹²`, `Auto`).
    pub fn new(name: impl Into<String>, model: Arc<Ctmc>, horizons: Vec<f64>) -> Self {
        SolveRequest {
            model,
            name: name.into(),
            measure: MeasureKind::Trr,
            horizons,
            epsilon: 1e-12,
            method: MethodChoice::Auto,
            regen_state: None,
        }
    }

    /// Sets the measure.
    pub fn measure(mut self, measure: MeasureKind) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the error budget.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the method selection.
    pub fn method(mut self, method: MethodChoice) -> Self {
        self.method = method;
        self
    }
}

/// Why dispatch picked a method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchReason {
    /// The request fixed the method.
    FixedByRequest,
    /// `Λt` below the SR threshold: SR is cheap and rigorous.
    SmallHorizon,
    /// Irreducible chain at large `Λt`: steady-state detection saturates.
    IrreducibleSteadyState,
    /// Absorbing/stiff chain at large `Λt`: RRL's construction saturates.
    StiffLargeHorizon,
}

impl DispatchReason {
    /// Stable string used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchReason::FixedByRequest => "fixed_by_request",
            DispatchReason::SmallHorizon => "small_lambda_t",
            DispatchReason::IrreducibleSteadyState => "irreducible_steady_state",
            DispatchReason::StiffLargeHorizon => "stiff_large_horizon",
        }
    }
}

impl fmt::Display for DispatchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One solved (model, measure, horizon) cell.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Request display name.
    pub model: String,
    /// Structural fingerprint of the model.
    pub fingerprint: u64,
    /// The measure computed.
    pub measure: MeasureKind,
    /// The horizon.
    pub t: f64,
    /// The method that ran.
    pub method: Method,
    /// Why it was chosen.
    pub reason: DispatchReason,
    /// The measure value.
    pub value: f64,
    /// Work steps (see [`EngineSolution::steps`]).
    pub steps: usize,
    /// Error bound reported by the method.
    pub error_bound: f64,
    /// Laplace abscissae (RRL only).
    pub abscissae: usize,
    /// Method-specific convergence flag.
    pub converged: bool,
    /// `Λt` at dispatch time.
    pub lambda_t: f64,
    /// Whether the uniformization came from the artifact cache.
    pub unif_cache_hit: bool,
    /// Whether RRL's killed-chain parameters came from the cache.
    pub params_cache_hit: bool,
    /// Wall time of this cell's share of the solve.
    pub wall: Duration,
}

/// A request that could not be planned or executed.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Request display name.
    pub model: String,
    /// The measure requested.
    pub measure: MeasureKind,
    /// What went wrong.
    pub error: String,
}

/// Everything a sweep produced.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-cell reports, ordered by (request, horizon) as submitted.
    pub reports: Vec<SolveReport>,
    /// Requests that failed (the rest of the sweep still ran).
    pub failures: Vec<SweepFailure>,
    /// Cache counters accumulated on the engine at sweep end.
    pub cache: CacheStats,
    /// Total wall time of the sweep.
    pub wall: Duration,
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Uniformization safety factor `θ` (`0` matches the paper).
    pub theta: f64,
    /// `Λt` threshold below which `Auto` prefers SR. The paper's grids show
    /// SR competitive through `Λt ≈ 10³` and hopeless beyond `10⁴`.
    pub small_lambda_t: f64,
    /// Worker threads for sweeps (`0` = available parallelism).
    pub threads: usize,
    /// Dense ODE-oracle state limit.
    pub dense_oracle_max_states: usize,
    /// Laplace-inversion tuning for RRL.
    pub inverter: InverterOptions,
    /// Inner SpMV parallelism (per solver).
    pub parallel: ParallelConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            theta: 0.0,
            small_lambda_t: 2_000.0,
            threads: 0,
            dense_oracle_max_states: 1_000,
            inverter: InverterOptions::default(),
            parallel: ParallelConfig::default(),
        }
    }
}

/// The solver engine: dispatch + artifact cache + sweep executor.
#[derive(Default)]
pub struct Engine {
    opts: EngineOptions,
    cache: ArtifactCache,
}

/// A sweep job's result slot, filled by whichever worker executes it.
type JobCell = Mutex<Option<Result<Vec<SolveReport>, EngineError>>>;

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One planned unit of work: a run of horizons of one request that share a
/// method.
struct Job {
    req_idx: usize,
    /// Model fingerprint, computed once at plan time (hashing the full CSR
    /// is `O(nnz)` — workers must not redo it).
    fp: u64,
    /// Structure facts, resolved once at plan time.
    facts: Arc<ChainFacts>,
    method: Method,
    reason: DispatchReason,
    /// Horizon values of this group.
    ts: Vec<f64>,
    /// Positions of those horizons in the request's `horizons` vector.
    slots: Vec<usize>,
}

impl Engine {
    /// An engine with default options and an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit options.
    pub fn with_options(opts: EngineOptions) -> Self {
        Self::with_cache_config(opts, CacheConfig::unbounded())
    }

    /// An engine with explicit options and artifact-cache capacity limits
    /// (per-pool LRU eviction — the configuration a long-running service
    /// wants so the cache does not grow with every model it has ever seen).
    pub fn with_cache_config(opts: EngineOptions, cache_cfg: CacheConfig) -> Self {
        Engine {
            opts,
            cache: ArtifactCache::with_config(cache_cfg),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The shared artifact cache (counters, manual clearing).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Dispatches one (facts, horizon) cell under `Auto`.
    pub fn auto_method(&self, facts: &ChainFacts, t: f64) -> (Method, DispatchReason) {
        let lambda = self.lambda(facts);
        if lambda * t <= self.opts.small_lambda_t {
            (Method::Sr, DispatchReason::SmallHorizon)
        } else if facts.irreducible {
            (Method::Rsd, DispatchReason::IrreducibleSteadyState)
        } else {
            (Method::Rrl, DispatchReason::StiffLargeHorizon)
        }
    }

    fn lambda(&self, facts: &ChainFacts) -> f64 {
        if facts.max_rate == 0.0 {
            1.0
        } else {
            facts.max_rate * (1.0 + self.opts.theta)
        }
    }

    fn solve_config(&self, req: &SolveRequest) -> SolveConfig {
        SolveConfig {
            epsilon: req.epsilon,
            theta: self.opts.theta,
            regen_state: req.regen_state,
            inverter: self.opts.inverter,
            parallel: self.opts.parallel,
            dense_limit: self.opts.dense_oracle_max_states,
        }
    }

    /// Plans a request into method groups (validates fixed methods).
    fn plan(&self, req_idx: usize, req: &SolveRequest) -> Result<Vec<Job>, EngineError> {
        if req.horizons.is_empty() {
            return Err(EngineError::InvalidRequest(
                "request has no horizons".into(),
            ));
        }
        if !req.epsilon.is_finite() || req.epsilon <= 0.0 {
            return Err(EngineError::InvalidRequest(format!(
                "epsilon must be positive and finite, got {}",
                req.epsilon
            )));
        }
        // A bad θ would otherwise panic inside Uniformized::new on a sweep
        // worker thread; surface it as a request failure instead.
        if !self.opts.theta.is_finite() || self.opts.theta < 0.0 {
            return Err(EngineError::InvalidRequest(format!(
                "engine theta must be non-negative and finite, got {}",
                self.opts.theta
            )));
        }
        let fp = fingerprint(&req.model);
        let facts = self.cache.facts(fp, &req.model)?;
        let mut jobs: Vec<Job> = Vec::new();
        for (slot, &t) in req.horizons.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(EngineError::InvalidRequest(format!(
                    "horizon must be non-negative and finite, got {t}"
                )));
            }
            let (method, reason) = match req.method {
                MethodChoice::Fixed(m) => (m, DispatchReason::FixedByRequest),
                MethodChoice::Auto => self.auto_method(&facts, t),
            };
            match jobs.last_mut() {
                Some(job) if job.method == method => {
                    job.ts.push(t);
                    job.slots.push(slot);
                }
                _ => jobs.push(Job {
                    req_idx,
                    fp,
                    facts: facts.clone(),
                    method,
                    reason,
                    ts: vec![t],
                    slots: vec![slot],
                }),
            }
        }
        Ok(jobs)
    }

    /// Executes one planned job; returns reports in the job's slot order.
    fn run_job(&self, req: &SolveRequest, job: &Job) -> Result<Vec<SolveReport>, EngineError> {
        // Test seam for the sweep's panic isolation: solver panics are rare
        // (they indicate bugs, not bad requests) and none is reachable
        // through a planned request, so tests inject one by name.
        #[cfg(test)]
        if req.name == "__panic_injection__" {
            panic!("injected solver panic (test seam)");
        }
        let ctmc: &Ctmc = &req.model;
        let fp = job.fp;
        let facts = &job.facts;
        let cfg = self.solve_config(req);
        // The ODE oracle never randomizes — don't build (or count) a
        // uniformization for it.
        let (unif, unif_hit) = if job.method == Method::Ode {
            (None, false)
        } else {
            let (unif, hit) = self.cache.uniformized(fp, ctmc, cfg.theta);
            (Some(unif), hit)
        };
        let solver = build_solver(job.method, ctmc, facts, unif, &cfg)?;
        let lambda = self.lambda(facts);

        let t0 = Instant::now();
        let (solutions, params_hit) = match solver.as_rrl() {
            Some(rrl) => self.run_rrl_cached(rrl, job, req, &cfg)?,
            None => (solver.solve_many(req.measure, &job.ts)?, false),
        };
        let per_cell = t0.elapsed() / job.ts.len().max(1) as u32;

        Ok(job
            .ts
            .iter()
            .zip(&solutions)
            .map(|(&t, sol)| SolveReport {
                model: req.name.clone(),
                fingerprint: fp,
                measure: req.measure,
                t,
                method: job.method,
                reason: job.reason,
                value: sol.value,
                steps: sol.steps,
                error_bound: sol.error_bound,
                abscissae: sol.abscissae,
                converged: sol.converged,
                lambda_t: lambda * t,
                unif_cache_hit: unif_hit,
                params_cache_hit: params_hit,
                wall: per_cell,
            })
            .collect())
    }

    /// RRL fast path: killed-chain parameters come from (and widen) the
    /// artifact cache, then each horizon is a cheap slice + inversion.
    fn run_rrl_cached(
        &self,
        rrl: &regenr_core::RrlSolver<'_>,
        job: &Job,
        req: &SolveRequest,
        cfg: &SolveConfig,
    ) -> Result<(Vec<EngineSolution>, bool), EngineError> {
        let ts: &[f64] = &job.ts;
        let t_max = ts.iter().copied().fold(0.0f64, f64::max);
        if t_max == 0.0 {
            return Ok((Solver::solve_many(rrl, req.measure, ts)?, false));
        }
        // The cache key must describe the solver that will consume the
        // parameters — take `r` and the options from it, never re-derive.
        let r = rrl.regenerative_state();
        let regen = rrl.options().regen;
        let (params, hit) = self.cache.regen_params(job.fp, rrl, &regen, r, t_max)?;
        let solutions = ts
            .iter()
            .map(|&t| {
                if t == 0.0 {
                    return Solver::solve(rrl, req.measure, t);
                }
                let (k, l) = params.depth_for_horizon(t, cfg.epsilon).ok_or_else(|| {
                    EngineError::InvalidRequest(format!(
                        "cached parameters do not cover horizon {t}"
                    ))
                })?;
                let sliced = params.truncated(k, l);
                Ok(rrl.invert_params(&sliced, req.measure, t).into())
            })
            .collect::<Result<Vec<EngineSolution>, EngineError>>()?;
        Ok((solutions, hit))
    }

    /// Solves one request (sequentially); reports follow the horizon order.
    pub fn solve(&self, req: &SolveRequest) -> Result<Vec<SolveReport>, EngineError> {
        let jobs = self.plan(0, req)?;
        let mut slots: Vec<Option<SolveReport>> = vec![None; req.horizons.len()];
        for job in &jobs {
            let reports = self.run_job(req, job)?;
            for (slot, report) in job.slots.iter().zip(reports) {
                slots[*slot] = Some(report);
            }
        }
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every slot solved"))
            .collect())
    }

    /// Runs a batch of requests, fanning the planned jobs out over a scoped
    /// worker pool. Failures are collected per request; healthy requests
    /// still complete.
    pub fn sweep(&self, reqs: &[SolveRequest]) -> SweepReport {
        let t0 = Instant::now();
        let mut jobs: Vec<Job> = Vec::new();
        let mut failures: Vec<SweepFailure> = Vec::new();
        for (req_idx, req) in reqs.iter().enumerate() {
            match self.plan(req_idx, req) {
                Ok(planned) => jobs.extend(planned),
                Err(e) => failures.push(SweepFailure {
                    model: req.name.clone(),
                    measure: req.measure,
                    error: e.to_string(),
                }),
            }
        }

        let results: Vec<JobCell> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = effective_threads(self.opts.threads).min(jobs.len().max(1));

        // A panicking solver job must not unwind through the scoped pool and
        // abort the whole sweep (nor poison anything another worker needs):
        // catch it here and report it as that request's failure. The job
        // cells themselves are written only after the catch, so they can
        // never be poisoned by solver code.
        let run_worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(job) = jobs.get(i) else { break };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_job(&reqs[job.req_idx], job)
            }))
            .unwrap_or_else(|payload| Err(EngineError::JobPanicked(panic_message(&payload))));
            *crate::cache::lock(&results[i]) = Some(outcome);
        };
        if workers <= 1 {
            run_worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(run_worker);
                }
            });
        }

        // Collect in (request, horizon) submission order.
        let mut per_req: Vec<Vec<Option<SolveReport>>> =
            reqs.iter().map(|r| vec![None; r.horizons.len()]).collect();
        let mut failed_reqs: Vec<Option<String>> = vec![None; reqs.len()];
        for (job, cell) in jobs.iter().zip(results) {
            match cell
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                Some(Ok(reports)) => {
                    for (slot, report) in job.slots.iter().zip(reports) {
                        per_req[job.req_idx][*slot] = Some(report);
                    }
                }
                Some(Err(e)) => failed_reqs[job.req_idx] = Some(e.to_string()),
                None => failed_reqs[job.req_idx] = Some("job was not executed".into()),
            }
        }
        let mut reports = Vec::new();
        for (req_idx, slots) in per_req.into_iter().enumerate() {
            if let Some(error) = failed_reqs[req_idx].take() {
                failures.push(SweepFailure {
                    model: reqs[req_idx].name.clone(),
                    measure: reqs[req_idx].measure,
                    error,
                });
                continue;
            }
            reports.extend(slots.into_iter().flatten());
        }

        SweepReport {
            reports,
            failures,
            cache: self.cache.stats(),
            wall: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_models::two_state;

    fn repairable() -> Arc<Ctmc> {
        Arc::new(two_state::repairable_unit(1e-3, 1.0))
    }

    fn non_repairable() -> Arc<Ctmc> {
        Arc::new(two_state::non_repairable_unit(1e-3))
    }

    #[test]
    fn auto_picks_sr_for_small_horizons() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![1.0, 10.0]))
            .unwrap();
        for r in &reports {
            assert_eq!(r.method, Method::Sr, "t={}", r.t);
            assert_eq!(r.reason, DispatchReason::SmallHorizon);
        }
    }

    #[test]
    fn auto_picks_rsd_for_irreducible_large_horizons() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![1e6]))
            .unwrap();
        assert_eq!(reports[0].method, Method::Rsd);
        assert_eq!(reports[0].reason, DispatchReason::IrreducibleSteadyState);
        let exact = 1e-3 / 1.001;
        assert!((reports[0].value - exact).abs() < 1e-9);
    }

    #[test]
    fn auto_picks_rrl_for_absorbing_large_horizons() {
        let engine = Engine::new();
        // Λ = 1e-3, so t must be huge for Λt to pass the SR threshold.
        let t = 4e6;
        let reports = engine
            .solve(&SolveRequest::new("u", non_repairable(), vec![t]).epsilon(1e-10))
            .unwrap();
        assert_eq!(reports[0].method, Method::Rrl);
        assert_eq!(reports[0].reason, DispatchReason::StiffLargeHorizon);
        let exact = 1.0 - (-1e-3 * t).exp();
        assert!(
            (reports[0].value - exact).abs() < 1e-8,
            "{} vs {exact}",
            reports[0].value
        );
    }

    #[test]
    fn fixed_rsd_on_absorbing_chain_is_rejected() {
        let engine = Engine::new();
        let req = SolveRequest::new("u", non_repairable(), vec![1.0])
            .method(MethodChoice::Fixed(Method::Rsd));
        match engine.solve(&req) {
            Err(EngineError::Unsupported { method, .. }) => assert_eq!(method, Method::Rsd),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn fixed_methods_agree_on_the_same_cell() {
        let engine = Engine::new();
        let t = 50.0;
        let mut values = Vec::new();
        for m in [
            Method::Sr,
            Method::Adaptive,
            Method::Ode,
            Method::Rr,
            Method::Rrl,
        ] {
            let req = SolveRequest::new("u", repairable(), vec![t])
                .epsilon(1e-10)
                .method(MethodChoice::Fixed(m));
            values.push((m, engine.solve(&req).unwrap()[0].value));
        }
        let reference = values[0].1;
        for (m, v) in values {
            assert!((v - reference).abs() < 1e-8, "{m}: {v} vs {reference}");
        }
    }

    #[test]
    fn mrr_flows_through_dispatch() {
        let engine = Engine::new();
        let t = 1e5;
        let req = SolveRequest::new("u", repairable(), vec![t])
            .measure(MeasureKind::Mrr)
            .epsilon(1e-10);
        let reports = engine.solve(&req).unwrap();
        assert_eq!(reports[0].method, Method::Rsd);
        let want = two_state::interval_unavailability(1e-3, 1.0, t);
        assert!((reports[0].value - want).abs() < 1e-8);
    }

    #[test]
    fn repeated_requests_hit_the_uniformization_cache() {
        let engine = Engine::new();
        let model = repairable();
        let req = SolveRequest::new("u", model.clone(), vec![1.0, 1e6]);
        let first = engine.solve(&req).unwrap();
        assert!(first.iter().any(|r| !r.unif_cache_hit));
        // An independently *rebuilt* model with identical structure still
        // hits: the key is the fingerprint, not the allocation.
        let again = SolveRequest::new("u2", repairable(), vec![1.0, 1e6]);
        let second = engine.solve(&again).unwrap();
        assert!(
            second.iter().all(|r| r.unif_cache_hit),
            "second request must reuse the uniformization"
        );
        assert!(engine.cache().stats().uniformized.hits >= 2);
    }

    #[test]
    fn sweep_collects_failures_without_poisoning_good_requests() {
        let engine = Engine::new();
        let good = SolveRequest::new("good", repairable(), vec![1.0]);
        let bad = SolveRequest::new("bad", non_repairable(), vec![1.0])
            .method(MethodChoice::Fixed(Method::Rsd));
        let empty = SolveRequest::new("empty", repairable(), vec![]);
        let report = engine.sweep(&[good, bad, empty]);
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].model, "good");
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    fn sweep_parallel_matches_sequential() {
        let mk = |threads| {
            Engine::with_options(EngineOptions {
                threads,
                ..Default::default()
            })
        };
        let reqs: Vec<SolveRequest> = (1..5)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0, 100.0, 1e5],
                )
                .epsilon(1e-10)
            })
            .collect();
        let seq = mk(1).sweep(&reqs);
        let par = mk(4).sweep(&reqs);
        assert!(seq.failures.is_empty() && par.failures.is_empty());
        assert_eq!(seq.reports.len(), par.reports.len());
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.t, b.t);
            assert_eq!(a.method, b.method);
            assert_eq!(a.value, b.value, "parallel sweep must be deterministic");
        }
    }

    /// Regression (PR 2): a panicking solver job used to unwind through the
    /// scoped worker pool and abort the entire sweep (poisoning its result
    /// mutexes on the way). It must instead surface as that request's
    /// failure while every other request completes.
    #[test]
    fn sweep_isolates_a_panicking_job() {
        for threads in [1, 4] {
            let engine = Engine::with_options(EngineOptions {
                threads,
                ..Default::default()
            });
            let good_a = SolveRequest::new("good_a", repairable(), vec![1.0, 10.0]);
            let boom = SolveRequest::new("__panic_injection__", repairable(), vec![1.0]);
            let good_b = SolveRequest::new("good_b", non_repairable(), vec![1.0]);
            let report = engine.sweep(&[good_a, boom, good_b]);
            assert_eq!(report.reports.len(), 3, "threads={threads}");
            assert!(report.reports.iter().all(|r| r.model.starts_with("good")));
            assert_eq!(report.failures.len(), 1);
            assert!(
                report.failures[0].error.contains("panicked"),
                "failure must carry the panic: {}",
                report.failures[0].error
            );
            // The engine (and its cache) stay usable after the panic.
            let again = engine.sweep(&[SolveRequest::new("again", repairable(), vec![1.0])]);
            assert!(again.failures.is_empty());
            assert_eq!(again.reports.len(), 1);
        }
    }

    /// With capacity limits the pools obey their caps while the sweep still
    /// produces correct values and warm repeats still hit.
    #[test]
    fn bounded_cache_respects_caps_during_sweeps() {
        let cap = 3;
        let engine = Engine::with_cache_config(
            EngineOptions::default(),
            crate::cache::CacheConfig::with_max_entries(cap),
        );
        let reqs: Vec<SolveRequest> = (1..=8)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0, 100.0],
                )
                .epsilon(1e-10)
            })
            .collect();
        let report = engine.sweep(&reqs);
        assert!(report.failures.is_empty());
        let stats = engine.cache().stats();
        assert!(stats.uniformized.entries <= cap);
        assert!(stats.structure.entries <= cap);
        assert!(stats.uniformized.evictions > 0, "8 models through cap 3");
        for r in &report.reports {
            let (l, m) = (1e-3 * r.model[1..].parse::<f64>().unwrap(), 1.0);
            let exact = l / (l + m) * (1.0 - (-(l + m) * r.t).exp());
            assert!((r.value - exact).abs() < 1e-8, "{} t={}", r.model, r.t);
        }
    }

    #[test]
    fn zero_horizon_reports_initial_reward() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![0.0]))
            .unwrap();
        assert_eq!(reports[0].value, 0.0);
        assert_eq!(reports[0].steps, 0);
    }
}
