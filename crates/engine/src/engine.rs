//! The engine proper: batch requests, `Auto` method dispatch, and the
//! parallel sweep executor.
//!
//! ## Dispatch
//!
//! `Auto` encodes the paper's Section 3 decision logic per horizon:
//!
//! 1. **small `Λt`** — standard randomization; at small horizons SR's
//!    `Θ(Λt)` step count is tiny and it carries a rigorous bound;
//! 2. **irreducible chain** — randomization with steady-state detection
//!    (the `UA(t)` column of Table 1): its step count saturates at the
//!    detection step;
//! 3. **otherwise** (absorbing chains at stiff/large horizons — the `UR(t)`
//!    column of Table 2, where SR needs millions of steps) — RRL, whose
//!    construction cost saturates in `t` and whose inversion is `O(K)` per
//!    abscissa.
//!
//! ## Sweep execution
//!
//! [`Engine::sweep`] plans every request into `(model, measure,
//! method-group-of-horizons)` jobs and executes the jobs on the shared
//! persistent worker pool. Horizons that share a method stay together so
//! the per-method batch paths (`SrSolver::solve_many`'s single propagation
//! sweep, RRL's shared construction) keep their savings; independent jobs
//! run concurrently, and the pool's work stealing lets idle workers claim
//! the jobs' inner SpMV chunks — a narrow sweep on a wide machine keeps
//! every core busy (see `regenr_sparse::pool`).

use crate::cache::{ArtifactCache, CacheConfig, CacheStats, ChainFacts};
use crate::fingerprint::{model_fps, ModelFps};
use crate::method::Method;
use crate::solver::{build_solver, EngineSolution, SolveConfig, Solver};
use crate::EngineError;
use regenr_ctmc::{Ctmc, CtmcError};
use regenr_laplace::InverterOptions;
use regenr_sparse::{
    effective_threads, ParallelConfig, RhsBlockChoice, WorkerPool, WorkerPoolStats, Workspace,
    WorkspaceStats,
};
use regenr_transient::{solve_block_with, MeasureKind, SrBlockCell, SrOptions};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a request picks its method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodChoice {
    /// Per-horizon automatic dispatch (the engine's reason is reported).
    Auto,
    /// Force one method for every horizon; capability violations are errors.
    Fixed(Method),
}

/// A batch solve request: one model, one measure, many horizons.
#[derive(Clone)]
pub struct SolveRequest {
    /// The chain to analyse.
    pub model: Arc<Ctmc>,
    /// Display name used in reports.
    pub name: String,
    /// Which measure to compute.
    pub measure: MeasureKind,
    /// Horizons (hours); report order follows this order.
    pub horizons: Vec<f64>,
    /// Total absolute error budget `ε`.
    pub epsilon: f64,
    /// Method selection.
    pub method: MethodChoice,
    /// Regenerative state override for RR/RRL.
    pub regen_state: Option<usize>,
    /// Precomputed fingerprints for `model`, if the constructor already has
    /// them (the spec layer fingerprints each model once at parse time, so
    /// grid sweeps do not re-hash every matrix on every solve). Must
    /// describe `model` exactly — the engine trusts it as a cache key and
    /// only cross-checks under `debug_assertions`. `None` means the engine
    /// fingerprints the model itself.
    pub fps: Option<crate::fingerprint::ModelFps>,
    /// Extra same-method attempts the sweep supervisor may spend on a
    /// failing cell before walking the method-fallback chain (panics,
    /// solver errors, and health-check failures all count). `0` — the
    /// default — means one attempt per method.
    pub max_retries: usize,
}

impl SolveRequest {
    /// A request with the paper's defaults (`TRR`, `ε = 10⁻¹²`, `Auto`).
    pub fn new(name: impl Into<String>, model: Arc<Ctmc>, horizons: Vec<f64>) -> Self {
        SolveRequest {
            model,
            name: name.into(),
            measure: MeasureKind::Trr,
            horizons,
            epsilon: 1e-12,
            method: MethodChoice::Auto,
            regen_state: None,
            fps: None,
            max_retries: 0,
        }
    }

    /// Sets the measure.
    pub fn measure(mut self, measure: MeasureKind) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the error budget.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the method selection.
    pub fn method(mut self, method: MethodChoice) -> Self {
        self.method = method;
        self
    }

    /// Sets the supervisor's same-method retry budget.
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// Why dispatch picked a method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchReason {
    /// The request fixed the method.
    FixedByRequest,
    /// Tiny `Λt` on a large sparse model: the active-set frontier stays far
    /// below the state count, so adaptive randomization touches a fraction
    /// of the matrix per step (numerically identical to SR).
    TinyHorizonActiveSet,
    /// `Λt` below the SR threshold: SR is cheap and rigorous.
    SmallHorizon,
    /// Irreducible chain at large `Λt`: steady-state detection saturates.
    IrreducibleSteadyState,
    /// Absorbing/stiff chain at large `Λt`: RRL's construction saturates.
    StiffLargeHorizon,
}

impl DispatchReason {
    /// Stable string used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchReason::FixedByRequest => "fixed_by_request",
            DispatchReason::TinyHorizonActiveSet => "tiny_lambda_t_active_set",
            DispatchReason::SmallHorizon => "small_lambda_t",
            DispatchReason::IrreducibleSteadyState => "irreducible_steady_state",
            DispatchReason::StiffLargeHorizon => "stiff_large_horizon",
        }
    }
}

impl fmt::Display for DispatchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One solved (model, measure, horizon) cell.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Request display name.
    pub model: String,
    /// Structural fingerprint of the model.
    pub fingerprint: u64,
    /// The measure computed.
    pub measure: MeasureKind,
    /// The horizon.
    pub t: f64,
    /// The method that ran.
    pub method: Method,
    /// Why it was chosen.
    pub reason: DispatchReason,
    /// The measure value.
    pub value: f64,
    /// Work steps (see [`EngineSolution::steps`]).
    pub steps: usize,
    /// Error bound reported by the method.
    pub error_bound: f64,
    /// Laplace abscissae (RRL only).
    pub abscissae: usize,
    /// Method-specific convergence flag.
    pub converged: bool,
    /// `Λt` at dispatch time.
    pub lambda_t: f64,
    /// The structure-adaptive SpMV kernel the solver's stepper executes
    /// (`"none"` for the dense ODE oracle, which never randomizes).
    pub kernel: &'static str,
    /// The execution backend that kernel runs on (`scalar`/`sse2`/`avx2`;
    /// `"none"` whenever `kernel` is `"none"`). Machine-dependent under
    /// `Auto`, so — like `kernel` — it is omitted from `--stable` reports.
    pub backend: &'static str,
    /// Whether the uniformization came from the artifact cache.
    pub unif_cache_hit: bool,
    /// Whether RRL's killed-chain parameters came from the cache.
    pub params_cache_hit: bool,
    /// Wall time of this cell's share of the solve.
    pub wall: Duration,
    /// Solve attempts the supervisor spent on this cell's job (`1` for the
    /// common healthy path). Execution accounting — omitted, like `wall`
    /// and `kernel`, from `--stable` reports.
    pub attempts: u32,
    /// When the cell recovered on a *different* method than planned, the
    /// method that produced this value (equal to `method`); `None` for
    /// first-method solves. Execution accounting, omitted from `--stable`
    /// reports.
    pub recovered_via: Option<Method>,
}

/// A request that could not be planned or executed.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Request display name.
    pub model: String,
    /// The measure requested.
    pub measure: MeasureKind,
    /// What went wrong.
    pub error: String,
    /// Whether the failure is *infrastructure* misbehaviour (panic,
    /// injected fault, corrupted solution) rather than a property of the
    /// request — see [`EngineError::is_infrastructure`]. The serve layer
    /// keys its 5xx-vs-4xx split off this.
    pub infrastructure: bool,
}

/// Execution-layer accounting for one sweep: how the shared worker pool and
/// the per-worker workspaces were used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// The active SIMD backend for this engine's parallel config — what
    /// [`regenr_sparse::simd::resolve`] returns for the configured
    /// [`regenr_sparse::BackendChoice`] on this machine (`"scalar"` in
    /// non-SIMD builds). Per-cell reports may still differ (kernels
    /// without a vector variant run scalar regardless).
    pub simd_backend: &'static str,
    /// Sweep-level concurrency actually achieved: the worker count after
    /// resolving `threads = 0`, capping by the job count, and accounting
    /// for the execution mode — `1` when the sweep ran inline (single job,
    /// or the shared pool was busy at submission), the scoped/pooled
    /// worker count otherwise.
    pub sweep_workers: usize,
    /// Threads the shared SpMV pool executes on.
    pub pool_threads: usize,
    /// Pool activity during this sweep (delta of the shared pool's
    /// counters). `stolen_chunks` counts inner SpMV chunks idle pool
    /// workers claimed from running jobs — the concurrency work stealing
    /// recovered; runs that found no free job slot count as inline.
    pub pool: WorkerPoolStats,
    /// Workspace activity summed over the sweep's workers. `fresh_allocs`
    /// far below `takes` is the zero-steady-state-allocation property.
    pub workspace: WorkspaceStats,
    /// Sweep cells (horizons) solved inside blocked propagations: SR jobs
    /// whose models share a generator (same uniformization fingerprint) and
    /// error budget are grouped — up to [`regenr_sparse::MAX_RHS_BLOCK`]
    /// per group, width set by [`ParallelConfig::rhs_block`] — and stepped
    /// through one multi-vector SpMM instead of one SpMV per job, reading
    /// the matrix once per step for the whole group. Values stay bitwise
    /// identical to the per-job path; this counter is the only observable
    /// difference. `0` when nothing grouped (distinct generators, mixed
    /// tolerances, or `rhs_block = 1`).
    pub blocked_cells: usize,
}

/// Supervisor accounting for one sweep: how often solutions failed the
/// numerical-health check and what it took to recover them. All zero on the
/// healthy path (and always, in builds without the `failpoints` feature,
/// unless a genuine solver bug or non-convergence strikes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Attempts whose solutions were rejected by the health check
    /// (non-finite value, value outside the reward bounds, convergence
    /// flag unset).
    pub health_failures: u64,
    /// Jobs that produced their result on a fallback method after the
    /// planned method's attempts were exhausted.
    pub fallbacks: u64,
    /// Re-attempts after a failed attempt, on any method (same-method
    /// retries and fallback attempts both count).
    pub retries: u64,
    /// Cells whose final value arrived after at least one failed attempt.
    pub recovered_cells: u64,
}

impl RobustnessStats {
    /// Sums counters (for aggregating sweeps into service-level totals).
    pub fn merge(&mut self, other: &RobustnessStats) {
        self.health_failures += other.health_failures;
        self.fallbacks += other.fallbacks;
        self.retries += other.retries;
        self.recovered_cells += other.recovered_cells;
    }
}

/// Everything a sweep produced.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-cell reports, ordered by (request, horizon) as submitted.
    pub reports: Vec<SolveReport>,
    /// Requests that failed (the rest of the sweep still ran).
    pub failures: Vec<SweepFailure>,
    /// Jobs skipped because the observer cancelled the sweep mid-flight
    /// (per-request deadlines in the serve layer). The cells those jobs
    /// would have produced are simply absent from `reports`; every cell
    /// that *is* present was computed normally and stays valid. Always `0`
    /// for [`Engine::sweep`].
    pub cancelled_jobs: usize,
    /// Cache counters accumulated on the engine at sweep end.
    pub cache: CacheStats,
    /// Worker-pool and workspace accounting for this sweep.
    pub exec: ExecStats,
    /// Supervisor accounting: health-check failures, retries, fallbacks,
    /// recovered cells.
    pub robustness: RobustnessStats,
    /// Total wall time of the sweep.
    pub wall: Duration,
}

/// Observer hooks for a running sweep, polled and called from sweep worker
/// threads. The serve layer uses this to stream per-cell results as they
/// finish and to cancel a sweep when a request's deadline expires; the
/// default implementations make any `Sync` type a no-op observer.
pub trait SweepProgress: Sync {
    /// Polled by workers before claiming each job; returning `true` stops
    /// further jobs from starting. Jobs already running complete normally
    /// (their reports stay valid) — cancellation is a clean between-job
    /// cut, not an abort.
    fn cancelled(&self) -> bool {
        false
    }

    /// Called with each job's reports as the job completes, in completion
    /// order (not submission order). May be called concurrently from
    /// several workers.
    fn on_reports(&self, _reports: &[SolveReport]) {}
}

/// The no-op observer [`Engine::sweep`] runs under.
struct NoProgress;

impl SweepProgress for NoProgress {}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Uniformization safety factor `θ` (`0` matches the paper).
    pub theta: f64,
    /// `Λt` threshold below which `Auto` prefers SR. The paper's grids show
    /// SR competitive through `Λt ≈ 10³` and hopeless beyond `10⁴`.
    pub small_lambda_t: f64,
    /// `Λt` threshold below which `Auto` prefers *adaptive* (active-set)
    /// randomization on large sparse models: the Poisson window ends after
    /// `≈ Λt + O(√(Λt))` steps, so the reachable frontier stays a fraction
    /// of the state space and each step touches only the active rows.
    pub tiny_lambda_t: f64,
    /// Minimum state count before `Auto` considers adaptive randomization —
    /// on small models the frontier saturates immediately and plain SR's
    /// simpler loop wins.
    pub adaptive_min_states: usize,
    /// Worker threads for sweeps (`0` = available parallelism). Sweep jobs
    /// run on the shared persistent worker pool; this caps how many run
    /// concurrently.
    pub threads: usize,
    /// Dense ODE-oracle state limit.
    pub dense_oracle_max_states: usize,
    /// Laplace-inversion tuning for RRL.
    pub inverter: InverterOptions,
    /// Inner SpMV parallelism (per solver).
    pub parallel: ParallelConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            theta: 0.0,
            small_lambda_t: 2_000.0,
            // ≈ 2⁶ expected DTMC steps: deep enough to be worth solving,
            // shallow enough that a breadth-`Λt` frontier stays local in
            // the RAID-style models the paper evaluates.
            tiny_lambda_t: 64.0,
            adaptive_min_states: 2_048,
            threads: 0,
            dense_oracle_max_states: 1_000,
            inverter: InverterOptions::default(),
            parallel: ParallelConfig::default(),
        }
    }
}

/// The solver engine: dispatch + artifact cache + sweep executor.
pub struct Engine {
    opts: EngineOptions,
    cache: ArtifactCache,
    /// The shared persistent worker pool: sweep jobs run on it, and the
    /// solvers' pooled SpMV kernels publish into the same pool's job slots,
    /// where idle workers steal their chunks (see `regenr_sparse::pool`).
    ///
    /// Invariant: this is always [`WorkerPool::global`] — the steppers
    /// inside the solvers submit to the global pool directly, so an engine
    /// on any *other* pool would split the machine between two pools. A
    /// future custom-pool constructor must plumb its pool into `Stepper`
    /// first.
    pool: Arc<WorkerPool>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::with_options(EngineOptions::default())
    }
}

/// A sweep job's result slot, filled by whichever worker executes it.
type JobCell = Mutex<Option<Result<Vec<SolveReport>, EngineError>>>;

/// Longest panic message a report will carry. Panic payloads are
/// attacker/bug-controlled strings that end up in failure reports and
/// NDJSON streams; a pathological payload must not bloat them.
const MAX_PANIC_MESSAGE_BYTES: usize = 512;

/// Best-effort extraction of a panic payload's message, bounded to
/// [`MAX_PANIC_MESSAGE_BYTES`] (truncated on a char boundary, with any
/// invalid UTF-8 already handled by the `&str`/`String` downcasts).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    };
    // Strip non-UTF8 lossily: `&str` is always valid UTF-8, but defensive
    // re-encoding keeps the guarantee even if an unpaired surrogate ever
    // sneaks through a downcast boundary.
    let msg = String::from_utf8_lossy(msg.as_bytes());
    if msg.len() <= MAX_PANIC_MESSAGE_BYTES {
        return msg.into_owned();
    }
    let mut cut = MAX_PANIC_MESSAGE_BYTES;
    while !msg.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… [truncated {} bytes]", &msg[..cut], msg.len() - cut)
}

/// One planned unit of work: a run of horizons of one request that share a
/// method.
struct Job {
    req_idx: usize,
    /// All five model fingerprints (full/structure/value and the
    /// generator-only full/structural pair), computed once at plan time —
    /// hashing the full CSR is `O(nnz)`, workers must not redo it. The
    /// generator-only `unif` fingerprint keys the uniformization artifact
    /// (uniformization never sees initials or rewards, so models differing
    /// only in those share one cached `Uniformized`) and groups blocked
    /// sweep execution; `unif_structure` lets the cache rebuild a rate
    /// variant's uniformization by re-binding a structural donor's plans.
    fps: ModelFps,
    /// Structure facts, resolved once at plan time.
    facts: Arc<ChainFacts>,
    method: Method,
    reason: DispatchReason,
    /// Horizon values of this group.
    ts: Vec<f64>,
    /// Positions of those horizons in the request's `horizons` vector.
    slots: Vec<usize>,
}

impl Job {
    /// A copy of this job dispatched to a different method (the supervisor's
    /// fallback path). The dispatch `reason` is kept: it documents why the
    /// *planned* method was chosen; the switch itself is recorded in
    /// [`SolveReport::recovered_via`].
    fn with_method(&self, method: Method) -> Job {
        Job {
            req_idx: self.req_idx,
            fps: self.fps,
            facts: self.facts.clone(),
            method,
            reason: self.reason,
            ts: self.ts.clone(),
            slots: self.slots.clone(),
        }
    }
}

/// The supervisor's deterministic method-fallback chain: methods to try,
/// in order, after the planned method's attempts are exhausted. Every
/// fallback supports absorbing chains and MRR, ends in SR (the rigorous
/// always-applicable baseline), and never *adds* capability requirements —
/// so a fallback attempt can only fail for the same reasons any solve can.
fn fallback_chain(method: Method) -> &'static [Method] {
    match method {
        Method::Rrl => &[Method::Rr, Method::Sr],
        Method::Rr => &[Method::Sr],
        Method::Adaptive => &[Method::Sr],
        Method::Rsd => &[Method::Sr],
        Method::Ode => &[Method::Sr],
        Method::Sr => &[],
    }
}

/// Live counters behind [`RobustnessStats`], shared by the sweep workers.
#[derive(Default)]
struct RobustCounters {
    health_failures: AtomicU64,
    fallbacks: AtomicU64,
    retries: AtomicU64,
    recovered_cells: AtomicU64,
}

impl RobustCounters {
    fn snapshot(&self) -> RobustnessStats {
        RobustnessStats {
            health_failures: self.health_failures.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered_cells: self.recovered_cells.load(Ordering::Relaxed),
        }
    }
}

/// The supervisor's numerical-health check over one job's reports.
///
/// Every measure this engine computes is a reward expectation (TRR) or a
/// time-average of one (MRR), so any healthy value lies in the closed
/// reward range `[min r_i, max r_i]`; the tolerance absorbs inversion
/// overshoot proportional to the request's error budget. Non-finite values
/// and unset method convergence flags (RRL's inversion flag) are rejected
/// outright.
fn health_check(req: &SolveRequest, reports: &[SolveReport]) -> Result<(), String> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &r in req.model.rewards() {
        lo = lo.min(r);
        hi = hi.max(r);
    }
    if !lo.is_finite() || !hi.is_finite() {
        // Degenerate (empty) reward vector: nothing to bound.
        (lo, hi) = (f64::NEG_INFINITY, f64::INFINITY);
    }
    let tol = (1e-9 + 10.0 * req.epsilon) * (1.0 + hi.abs());
    for r in reports {
        if !r.value.is_finite() {
            return Err(format!("non-finite value {} at t={}", r.value, r.t));
        }
        if r.value < lo - tol || r.value > hi + tol {
            return Err(format!(
                "value {} at t={} outside reward bounds [{lo}, {hi}] (tol {tol})",
                r.value, r.t
            ));
        }
        if !r.converged {
            return Err(format!("method {} did not converge at t={}", r.method, r.t));
        }
    }
    Ok(())
}

/// One claimable unit of sweep execution: a lone job, or a group of SR jobs
/// sharing a generator and error budget that one worker solves as a single
/// blocked propagation (see [`Engine::run_block`]).
enum SweepUnit {
    Single(usize),
    Block(Vec<usize>),
}

/// Groups planned jobs into sweep units. SR jobs bucket by
/// `(unif_fingerprint, epsilon)` — equal keys uniformize identically and
/// share `SrOptions` — and each bucket is chunked to the width
/// [`RhsBlockChoice::plan_width`] picks (`Auto` → the maximum block width
/// when a bucket has company — the executing worker sub-splits to the
/// resolved kernel's preferred width once it knows it, see
/// [`Engine::run_block`] — `1` disables grouping entirely). Everything
/// else — other methods, singleton buckets, odd tail chunks of one — stays
/// a `Single` unit and runs exactly as before. Units come out in first-job
/// order, so claim order matches the ungrouped sweep.
fn plan_units(jobs: &[Job], reqs: &[SolveRequest], rhs_block: RhsBlockChoice) -> Vec<SweepUnit> {
    use std::collections::HashMap;
    let mut buckets: HashMap<(u64, u64), Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        if job.method == Method::Sr {
            buckets
                .entry((job.fps.unif, reqs[job.req_idx].epsilon.to_bits()))
                .or_default()
                .push(i);
        }
    }
    let mut blocks: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut follower = vec![false; jobs.len()];
    for members in buckets.into_values() {
        let width = rhs_block.plan_width(members.len());
        if width < 2 {
            continue;
        }
        for chunk in members.chunks(width) {
            if chunk.len() < 2 {
                continue;
            }
            for &j in &chunk[1..] {
                follower[j] = true;
            }
            blocks.insert(chunk[0], chunk.to_vec());
        }
    }
    (0..jobs.len())
        .filter(|i| !follower[*i])
        .map(|i| match blocks.remove(&i) {
            Some(members) => SweepUnit::Block(members),
            None => SweepUnit::Single(i),
        })
        .collect()
}

impl Engine {
    /// An engine with default options and an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit options.
    pub fn with_options(opts: EngineOptions) -> Self {
        Self::with_cache_config(opts, CacheConfig::unbounded())
    }

    /// An engine with explicit options and artifact-cache capacity limits
    /// (per-pool LRU eviction — the configuration a long-running service
    /// wants so the cache does not grow with every model it has ever seen).
    pub fn with_cache_config(opts: EngineOptions, cache_cfg: CacheConfig) -> Self {
        Engine {
            opts,
            cache: ArtifactCache::with_config(cache_cfg),
            pool: WorkerPool::global().clone(),
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The shared artifact cache (counters, manual clearing).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The worker pool sweep jobs and pooled SpMVs execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Dispatches one (facts, horizon) cell under `Auto`.
    ///
    /// Tiny `Λt` on a large sparse model goes to adaptive (active-set)
    /// randomization — numerically identical to SR, but each step touches
    /// only the reachable frontier; small `Λt` otherwise goes to SR; beyond
    /// that, irreducible chains go to RSD and absorbing ones to RRL.
    pub fn auto_method(&self, facts: &ChainFacts, t: f64) -> (Method, DispatchReason) {
        let lambda = self.lambda(facts);
        if t > 0.0
            && lambda * t <= self.opts.tiny_lambda_t
            && facts.n_states >= self.opts.adaptive_min_states
        {
            (Method::Adaptive, DispatchReason::TinyHorizonActiveSet)
        } else if lambda * t <= self.opts.small_lambda_t {
            (Method::Sr, DispatchReason::SmallHorizon)
        } else if facts.irreducible {
            (Method::Rsd, DispatchReason::IrreducibleSteadyState)
        } else {
            (Method::Rrl, DispatchReason::StiffLargeHorizon)
        }
    }

    fn lambda(&self, facts: &ChainFacts) -> f64 {
        if facts.max_rate == 0.0 {
            1.0
        } else {
            facts.max_rate * (1.0 + self.opts.theta)
        }
    }

    fn solve_config(&self, req: &SolveRequest) -> SolveConfig {
        SolveConfig {
            epsilon: req.epsilon,
            theta: self.opts.theta,
            regen_state: req.regen_state,
            inverter: self.opts.inverter,
            parallel: self.opts.parallel,
            dense_limit: self.opts.dense_oracle_max_states,
        }
    }

    /// Plans a request into method groups (validates fixed methods).
    fn plan(&self, req_idx: usize, req: &SolveRequest) -> Result<Vec<Job>, EngineError> {
        if req.horizons.is_empty() {
            return Err(EngineError::InvalidRequest(
                "request has no horizons".into(),
            ));
        }
        if !req.epsilon.is_finite() || req.epsilon <= 0.0 {
            return Err(EngineError::InvalidRequest(format!(
                "epsilon must be positive and finite, got {}",
                req.epsilon
            )));
        }
        // A bad θ would otherwise panic inside Uniformized::new on a sweep
        // worker thread; surface it as a request failure instead.
        if !self.opts.theta.is_finite() || self.opts.theta < 0.0 {
            return Err(EngineError::InvalidRequest(format!(
                "engine theta must be non-negative and finite, got {}",
                self.opts.theta
            )));
        }
        let fps = req.fps.unwrap_or_else(|| model_fps(&req.model));
        debug_assert!(
            req.fps.is_none_or(|f| f == model_fps(&req.model)),
            "SolveRequest::fps does not describe SolveRequest::model"
        );
        let facts = self.cache.facts_for(&fps, &req.model)?;
        let mut jobs: Vec<Job> = Vec::new();
        for (slot, &t) in req.horizons.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(EngineError::InvalidRequest(format!(
                    "horizon must be non-negative and finite, got {t}"
                )));
            }
            let (method, reason) = match req.method {
                MethodChoice::Fixed(m) => (m, DispatchReason::FixedByRequest),
                MethodChoice::Auto => self.auto_method(&facts, t),
            };
            match jobs.last_mut() {
                Some(job) if job.method == method => {
                    job.ts.push(t);
                    job.slots.push(slot);
                }
                _ => jobs.push(Job {
                    req_idx,
                    fps,
                    facts: facts.clone(),
                    method,
                    reason,
                    ts: vec![t],
                    slots: vec![slot],
                }),
            }
        }
        Ok(jobs)
    }

    /// Executes one planned job; returns reports in the job's slot order.
    /// `ws` is the executing worker's scratch arena, reused across the jobs
    /// it claims.
    fn run_job(
        &self,
        req: &SolveRequest,
        job: &Job,
        ws: &mut Workspace,
    ) -> Result<Vec<SolveReport>, EngineError> {
        // Test seam for the sweep's panic isolation: solver panics are rare
        // (they indicate bugs, not bad requests) and none is reachable
        // through a planned request, so tests inject one by name.
        #[cfg(test)]
        if req.name == "__panic_injection__" {
            panic!("injected solver panic (test seam)");
        }
        let ctmc: &Ctmc = &req.model;
        let fp = job.fps.full;
        let facts = &job.facts;
        let cfg = self.solve_config(req);
        // The ODE oracle never randomizes — don't build (or count) a
        // uniformization for it. The delta-aware lookup lets a rate
        // variant's miss rebind a structural donor's plans and layouts.
        let (unif, unif_hit) = if job.method == Method::Ode {
            (None, false)
        } else {
            let (unif, hit) =
                self.cache
                    .uniformized_delta(job.fps.unif, job.fps.unif_structure, ctmc, cfg.theta);
            (Some(unif), hit)
        };
        // The kernel (and execution backend) the solver's stepper resolves
        // under this parallel config (cached on the uniformization — same
        // plan the solver uses). Adaptive propagates over its active set
        // row-by-row and never builds a stepper, so like the ODE oracle it
        // reports no kernel (and must not force a layout build it would
        // never use).
        let (kernel, backend) = match &unif {
            Some(u) if job.method != Method::Adaptive => {
                let stepper = u.stepper(&cfg.parallel);
                (stepper.kernel_kind().name(), stepper.backend().name())
            }
            _ => ("none", "none"),
        };
        let solver = build_solver(job.method, ctmc, facts, unif, &cfg)?;
        let lambda = self.lambda(facts);

        let t0 = Instant::now();
        // RR and RRL share the regen-params cache (identical sequences for
        // identical `(r, ε, θ)` keys — see `ArtifactCache::regen_params`);
        // only the per-horizon solve stage differs. The cache key must
        // describe the solver that consumes the parameters — take `r` and
        // the options from it, never re-derive.
        let (solutions, params_hit) = if let Some(rrl) = solver.as_rrl() {
            self.run_regen_cached(
                job,
                rrl.options().regen,
                rrl.regenerative_state(),
                cfg.epsilon,
                ws,
                |h, ws| rrl.parameters_with(h, ws),
                |sliced, t, _ws| match sliced {
                    None => Solver::solve(rrl, req.measure, t),
                    Some(p) => Ok(rrl.invert_params(p, req.measure, t).into()),
                },
            )?
        } else if let Some(rr) = solver.as_rr() {
            self.run_regen_cached(
                job,
                rr.options().regen,
                rr.regenerative_state(),
                cfg.epsilon,
                ws,
                |h, ws| rr.parameters_with(h, ws),
                |sliced, t, ws| match sliced {
                    None => Ok(rr.solve_with(req.measure, t, ws)?.into()),
                    Some(p) => Ok(rr.solve_from(p, req.measure, t, ws)?.into()),
                },
            )?
        } else {
            (solver.solve_many_ws(req.measure, &job.ts, ws)?, false)
        };
        let per_cell = t0.elapsed() / job.ts.len().max(1) as u32;

        Ok(job
            .ts
            .iter()
            .zip(&solutions)
            .map(|(&t, sol)| SolveReport {
                model: req.name.clone(),
                fingerprint: fp,
                measure: req.measure,
                t,
                method: job.method,
                reason: job.reason,
                value: sol.value,
                steps: sol.steps,
                error_bound: sol.error_bound,
                abscissae: sol.abscissae,
                converged: sol.converged,
                lambda_t: lambda * t,
                kernel,
                backend,
                unif_cache_hit: unif_hit,
                params_cache_hit: params_hit,
                wall: per_cell,
                attempts: 1,
                recovered_via: None,
            })
            .collect())
    }

    /// Supervised execution of one job: run the planned method, health-check
    /// every solution, and on a panic, a solver error, or a health failure
    /// retry — first the same method up to the request's `max_retries`
    /// budget, then down the deterministic [`fallback_chain`]. Backoff
    /// between attempts is a short, bounded, deterministic sleep (failure
    /// causes that heal with time — a cache slot mid-rebuild, a transient
    /// pool stall — get room to do so without turning retries into a spin).
    fn run_supervised(
        &self,
        req: &SolveRequest,
        job: &Job,
        ws: &mut Workspace,
        counters: &RobustCounters,
        prior_failures: u32,
    ) -> Result<Vec<SolveReport>, EngineError> {
        let mut attempts: u32 = prior_failures;
        let mut last_err: Option<EngineError> = None;
        for (mi, method) in std::iter::once(job.method)
            .chain(fallback_chain(job.method).iter().copied())
            .enumerate()
        {
            let tries = if mi == 0 {
                1 + req.max_retries as u32
            } else {
                1
            };
            let fallback_job;
            let job_m: &Job = if method == job.method {
                job
            } else {
                fallback_job = job.with_method(method);
                &fallback_job
            };
            for _ in 0..tries {
                // Any attempt after the first (counting failures inherited
                // from a blocked group) is a retry.
                if attempts > 0 {
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(u64::from(attempts.min(4))));
                }
                attempts += 1;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.run_job(req, job_m, ws)
                }));
                let err = match outcome {
                    Err(payload) => {
                        // Nothing the unwound solver touched may reach the
                        // next occupant of this worker's arena.
                        ws.discard_all();
                        EngineError::JobPanicked(panic_message(&payload))
                    }
                    Ok(Err(e)) => e,
                    Ok(Ok(mut reports)) => match health_check(req, &reports) {
                        Err(why) => {
                            counters.health_failures.fetch_add(1, Ordering::Relaxed);
                            EngineError::Unhealthy(why)
                        }
                        Ok(()) => {
                            if attempts > 1 {
                                counters
                                    .recovered_cells
                                    .fetch_add(reports.len() as u64, Ordering::Relaxed);
                            }
                            if mi > 0 {
                                counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                            }
                            for r in &mut reports {
                                r.attempts = attempts;
                                r.recovered_via = (mi > 0).then_some(method);
                            }
                            return Ok(reports);
                        }
                    },
                };
                // Only infrastructure failures (panics, injected faults,
                // corrupted solutions) are worth retrying; a model/request
                // error is deterministic and would only be masked by a
                // fallback silently answering a different question. On a
                // *fallback* method the same error just means this method
                // is ineligible for the model — move to the next one and
                // keep reporting the infrastructure cause.
                if !err.is_infrastructure() {
                    if mi == 0 {
                        return Err(err);
                    }
                    break;
                }
                last_err = Some(err);
            }
        }
        Err(last_err.expect("supervisor made at least one attempt"))
    }

    /// Executes a group of SR jobs whose models share a generator as one
    /// blocked propagation over a single cached uniformization: the members'
    /// initial distributions ride in separate block columns of a k-RHS SpMM,
    /// so the matrix streams through memory once per step for the whole
    /// group. Returns `(job index, reports)` per member, reports in the
    /// member's slot order. Every value is **bitwise identical** to running
    /// the members through [`Engine::run_job`] one at a time (the blocked
    /// kernels are the serial kernel applied column-wise), so grouping is an
    /// execution detail — invisible in `--stable` reports, surfaced only as
    /// [`ExecStats::blocked_cells`].
    fn run_block(
        &self,
        reqs: &[SolveRequest],
        jobs: &[Job],
        members: &[usize],
        ws: &mut Workspace,
    ) -> Vec<(usize, Vec<SolveReport>)> {
        // Same test seam as `run_job`: the panic surfaces here and the
        // worker's serial fallback re-runs the members individually, which
        // is exactly the isolation property the seam exists to exercise.
        #[cfg(test)]
        for &j in members {
            if reqs[jobs[j].req_idx].name == "__panic_injection__" {
                panic!("injected solver panic (test seam)");
            }
        }
        let first = &jobs[members[0]];
        let first_req = &reqs[first.req_idx];
        let cfg = self.solve_config(first_req);
        // One shared uniformization for the whole group, under the same
        // generator-only key `run_job` uses — blocked and per-job execution
        // hit the identical cache entry (delta-aware, like `run_job`).
        let (unif, unif_hit) = self.cache.uniformized_delta(
            first.fps.unif,
            first.fps.unif_structure,
            &first_req.model,
            cfg.theta,
        );
        let (kind, kernel, backend) = {
            let stepper = unif.stepper(&cfg.parallel);
            let kind = stepper.kernel_kind();
            (kind, kind.name(), stepper.backend().name())
        };
        // Grouping guarantees equal epsilon (it is part of the bucket key),
        // and theta/parallel are engine-global, so one SrOptions serves
        // every member.
        let opts = SrOptions {
            epsilon: cfg.epsilon,
            theta: cfg.theta,
            parallel: cfg.parallel,
        };
        let cells: Vec<SrBlockCell<'_>> = members
            .iter()
            .map(|&j| {
                let req = &reqs[jobs[j].req_idx];
                SrBlockCell {
                    ctmc: &req.model,
                    measure: req.measure,
                    ts: &jobs[j].ts,
                }
            })
            .collect();
        let t0 = Instant::now();
        // The planner grouped at the maximum block width; now that the
        // kernel is known, sub-split to the width it prefers (short-row
        // kernels take the full block, the rest peak at 4). Each chunk is
        // one blocked solve, and member order is preserved.
        let width = cfg
            .parallel
            .rhs_block
            .resolve_for(kind, members.len())
            .max(1);
        let mut solutions = Vec::with_capacity(cells.len());
        for chunk in cells.chunks(width) {
            solutions.extend(solve_block_with(&unif, &opts, chunk, ws));
        }
        let total_cells: usize = members.iter().map(|&j| jobs[j].ts.len()).sum();
        let per_cell = t0.elapsed() / total_cells.max(1) as u32;
        members
            .iter()
            .zip(solutions)
            .map(|(&j, sols)| {
                let job = &jobs[j];
                let req = &reqs[job.req_idx];
                let lambda = self.lambda(&job.facts);
                let reports = job
                    .ts
                    .iter()
                    .zip(&sols)
                    .map(|(&t, sol)| SolveReport {
                        model: req.name.clone(),
                        fingerprint: job.fps.full,
                        measure: req.measure,
                        t,
                        method: job.method,
                        reason: job.reason,
                        value: sol.value,
                        steps: sol.steps,
                        error_bound: sol.error_bound,
                        abscissae: 0,
                        converged: true,
                        lambda_t: lambda * t,
                        kernel,
                        backend,
                        unif_cache_hit: unif_hit,
                        params_cache_hit: false,
                        wall: per_cell,
                        attempts: 1,
                        recovered_via: None,
                    })
                    .collect();
                (j, reports)
            })
            .collect()
    }

    /// Shared regenerative fast path: killed-chain parameters come from
    /// (and widen) the artifact cache, then each horizon is a cheap slice
    /// plus the method's own solve stage. `build` computes parameters on a
    /// cache miss (the owning solver's `parameters_with`); `solve_one`
    /// solves one horizon — with `None` parameters for `t = 0`, or the
    /// already-sliced parameters otherwise (RRL inverts, RR runs the inner
    /// SR on the truncated model). Keeping the slicing protocol in one
    /// place means the cached and uncached paths cannot diverge.
    #[allow(clippy::too_many_arguments)]
    fn run_regen_cached(
        &self,
        job: &Job,
        regen: regenr_core::RegenOptions,
        r: usize,
        epsilon: f64,
        ws: &mut Workspace,
        mut build: impl FnMut(f64, &mut Workspace) -> Result<regenr_core::RegenParams, CtmcError>,
        mut solve_one: impl FnMut(
            Option<&regenr_core::RegenParams>,
            f64,
            &mut Workspace,
        ) -> Result<EngineSolution, EngineError>,
    ) -> Result<(Vec<EngineSolution>, bool), EngineError> {
        let ts: &[f64] = &job.ts;
        let t_max = ts.iter().copied().fold(0.0f64, f64::max);
        if t_max == 0.0 {
            let solutions = ts
                .iter()
                .map(|&t| solve_one(None, t, ws))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok((solutions, false));
        }
        // Linked: the parameters register as a dependent of the
        // uniformization they were constructed on, so cost-aware eviction
        // protects the parent artifact accordingly.
        let (params, hit) =
            self.cache
                .regen_params_linked(job.fps.full, job.fps.unif, &regen, r, t_max, |h| {
                    build(h, ws)
                })?;
        let solutions = ts
            .iter()
            .map(|&t| {
                if t == 0.0 {
                    return solve_one(None, t, ws);
                }
                let (k, l) = params.depth_for_horizon(t, epsilon).ok_or_else(|| {
                    EngineError::InvalidRequest(format!(
                        "cached parameters do not cover horizon {t}"
                    ))
                })?;
                let sliced = params.truncated(k, l);
                solve_one(Some(&sliced), t, ws)
            })
            .collect::<Result<Vec<EngineSolution>, EngineError>>()?;
        Ok((solutions, hit))
    }

    /// Solves one request (sequentially); reports follow the horizon order.
    pub fn solve(&self, req: &SolveRequest) -> Result<Vec<SolveReport>, EngineError> {
        let jobs = self.plan(0, req)?;
        let mut ws = Workspace::new();
        let mut slots: Vec<Option<SolveReport>> = vec![None; req.horizons.len()];
        for job in &jobs {
            let reports = self.run_job(req, job, &mut ws)?;
            for (slot, report) in job.slots.iter().zip(reports) {
                slots[*slot] = Some(report);
            }
        }
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every slot solved"))
            .collect())
    }

    /// Runs a batch of requests, fanning the planned jobs out over sweep
    /// workers. Failures are collected per request; healthy requests still
    /// complete.
    ///
    /// Thread budget: at most [`EngineOptions::threads`] jobs run
    /// concurrently, as work on the shared pool; the jobs' inner pooled
    /// SpMVs publish into the same pool, where any idle worker steals
    /// their chunks. Every thread therefore stays busy whether the sweep
    /// is wider or narrower than the machine, and total concurrency never
    /// exceeds the pool size (`sweep workers × SpMV threads` cannot
    /// oversubscribe).
    pub fn sweep(&self, reqs: &[SolveRequest]) -> SweepReport {
        self.sweep_observed(reqs, &NoProgress)
    }

    /// [`Engine::sweep`] with an observer: `progress.on_reports` fires with
    /// each job's reports as the job completes (the serve layer streams
    /// them to clients), and `progress.cancelled()` is polled before every
    /// job claim so a deadline can stop the sweep cleanly mid-flight —
    /// completed cells stay in the report, skipped jobs are counted in
    /// [`SweepReport::cancelled_jobs`] instead of failing their requests.
    pub fn sweep_observed(
        &self,
        reqs: &[SolveRequest],
        progress: &dyn SweepProgress,
    ) -> SweepReport {
        let t0 = Instant::now();
        let pool_before = self.pool.stats();
        let mut jobs: Vec<Job> = Vec::new();
        let mut failures: Vec<SweepFailure> = Vec::new();
        for (req_idx, req) in reqs.iter().enumerate() {
            match self.plan(req_idx, req) {
                Ok(planned) => jobs.extend(planned),
                Err(e) => failures.push(SweepFailure {
                    model: req.name.clone(),
                    measure: req.measure,
                    error: e.to_string(),
                    infrastructure: e.is_infrastructure(),
                }),
            }
        }

        // Blocked execution planning: SR jobs over the same generator and
        // tolerance become one multi-RHS unit a single worker solves in one
        // streaming pass (`run_block`).
        let units = plan_units(&jobs, reqs, self.opts.parallel.rhs_block);
        let results: Vec<JobCell> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = effective_threads(self.opts.threads).min(units.len().max(1));
        let ws_totals: Mutex<WorkspaceStats> = Mutex::new(WorkspaceStats::default());
        let blocked_cells = AtomicUsize::new(0);

        // Every job runs under the supervisor: panics are caught (isolated
        // from the worker pool and from groupmates), every solution is
        // health-checked, and failing jobs retry down the method-fallback
        // chain before they are reported as that request's failure. The job
        // cells themselves are written only after the catch, so they can
        // never be poisoned by solver code. Each worker owns one workspace
        // for all the units it claims, so scratch vectors are reused across
        // jobs, not just across the horizons of one.
        let robust = RobustCounters::default();
        let run_recover = |i: usize, ws: &mut Workspace, prior_failures: u32| {
            let job = &jobs[i];
            let outcome = self.run_supervised(&reqs[job.req_idx], job, ws, &robust, prior_failures);
            if let Ok(reports) = &outcome {
                progress.on_reports(reports);
            }
            *crate::cache::lock(&results[i]) = Some(outcome);
        };
        let run_single = |i: usize, ws: &mut Workspace| run_recover(i, ws, 0);
        let run_worker = || {
            let mut ws = Workspace::new();
            loop {
                if progress.cancelled() {
                    break;
                }
                let u = next.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(u) else { break };
                match unit {
                    SweepUnit::Single(i) => run_single(*i, &mut ws),
                    SweepUnit::Block(members) => {
                        // The whole group shares one catch_unwind; a panic
                        // falls back to per-job execution (each with its own
                        // catch), so a poisoned member fails alone instead
                        // of taking its groupmates down with it.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.run_block(reqs, &jobs, members, &mut ws)
                        })) {
                            Ok(per_member) => {
                                for (j, reports) in per_member {
                                    // Health-check each member individually:
                                    // an unhealthy member *re-solves* under
                                    // the supervisor (inheriting its failed
                                    // attempt) instead of being dropped,
                                    // while healthy groupmates publish
                                    // their blocked results untouched.
                                    let req = &reqs[jobs[j].req_idx];
                                    if health_check(req, &reports).is_ok() {
                                        blocked_cells
                                            .fetch_add(jobs[j].ts.len(), Ordering::Relaxed);
                                        progress.on_reports(&reports);
                                        *crate::cache::lock(&results[j]) = Some(Ok(reports));
                                    } else {
                                        robust.health_failures.fetch_add(1, Ordering::Relaxed);
                                        run_recover(j, &mut ws, 1);
                                    }
                                }
                            }
                            Err(_) => {
                                // The group panicked as a whole: the arena
                                // may hold the unwound propagation's state.
                                ws.discard_all();
                                for &j in members {
                                    run_single(j, &mut ws);
                                }
                            }
                        }
                    }
                }
            }
            crate::cache::lock(&ws_totals).merge(&ws.stats());
        };
        // Sweep-level execution: a single worker runs inline (the whole
        // pool stays available for the job's inner SpMVs); otherwise the
        // sweep jobs run *as* pool work. The pool's work stealing makes one
        // mode enough — there is no wide-sweep/narrow-sweep cliff anymore:
        // a sweep narrower than the machine leaves workers idle, and those
        // workers steal the jobs' inner SpMV chunks (each inner product
        // publishes into its own job slot instead of degrading to inline
        // execution), while a sweep as wide as the machine keeps every
        // worker on solver jobs and the inner products drain on their
        // submitters — `sweep workers × SpMV threads` still never
        // oversubscribes.
        let achieved_workers = if workers <= 1 {
            run_worker();
            1
        } else if self.pool.run(workers, |_| run_worker()) {
            workers.min(self.pool.threads())
        } else {
            // No free job slot (exceptionally deep nesting) or a
            // single-thread pool: every job ran inline on this thread.
            1
        };

        // Collect in (request, horizon) submission order.
        let mut per_req: Vec<Vec<Option<SolveReport>>> =
            reqs.iter().map(|r| vec![None; r.horizons.len()]).collect();
        let mut failed_reqs: Vec<Option<(String, bool)>> = vec![None; reqs.len()];
        let cancelled = progress.cancelled();
        let mut cancelled_jobs = 0usize;
        for (job, cell) in jobs.iter().zip(results) {
            match cell
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                Some(Ok(reports)) => {
                    for (slot, report) in job.slots.iter().zip(reports) {
                        per_req[job.req_idx][*slot] = Some(report);
                    }
                }
                Some(Err(e)) => {
                    failed_reqs[job.req_idx] = Some((e.to_string(), e.is_infrastructure()))
                }
                // An unexecuted job under cancellation is the deadline
                // doing its job — the request is partial, not failed. An
                // unexecuted job *without* cancellation is a scheduler bug
                // and must surface loudly.
                None if cancelled => cancelled_jobs += 1,
                // Not being executed at all is a scheduler fault, never a
                // model property.
                None => failed_reqs[job.req_idx] = Some(("job was not executed".into(), true)),
            }
        }
        let mut reports = Vec::new();
        for (req_idx, slots) in per_req.into_iter().enumerate() {
            if let Some((error, infrastructure)) = failed_reqs[req_idx].take() {
                failures.push(SweepFailure {
                    model: reqs[req_idx].name.clone(),
                    measure: reqs[req_idx].measure,
                    error,
                    infrastructure,
                });
                continue;
            }
            reports.extend(slots.into_iter().flatten());
        }

        SweepReport {
            reports,
            failures,
            cancelled_jobs,
            cache: self.cache.stats(),
            exec: ExecStats {
                simd_backend: regenr_sparse::simd::resolve(self.opts.parallel.backend).name(),
                sweep_workers: achieved_workers,
                pool_threads: self.pool.threads(),
                pool: self.pool.stats().since(&pool_before),
                workspace: ws_totals
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                blocked_cells: blocked_cells.into_inner(),
            },
            robustness: robust.snapshot(),
            wall: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_models::two_state;

    fn repairable() -> Arc<Ctmc> {
        Arc::new(two_state::repairable_unit(1e-3, 1.0))
    }

    fn non_repairable() -> Arc<Ctmc> {
        Arc::new(two_state::non_repairable_unit(1e-3))
    }

    #[test]
    fn auto_picks_sr_for_small_horizons() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![1.0, 10.0]))
            .unwrap();
        for r in &reports {
            assert_eq!(r.method, Method::Sr, "t={}", r.t);
            assert_eq!(r.reason, DispatchReason::SmallHorizon);
        }
    }

    /// A birth–death chain big enough to clear `adaptive_min_states`.
    fn large_birth_chain(n: usize) -> Arc<Ctmc> {
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let rewards: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        Arc::new(Ctmc::from_rates(n, &rates, init, rewards).unwrap())
    }

    #[test]
    fn auto_picks_adaptive_for_tiny_horizons_on_large_models() {
        let engine = Engine::new();
        let model = large_birth_chain(2_500);
        // Λ = 1.5, t = 10 → Λt = 15 ≤ tiny_lambda_t: the frontier stays
        // tiny compared to the 2 500 states.
        let reports = engine
            .solve(&SolveRequest::new("big", model.clone(), vec![10.0]).epsilon(1e-10))
            .unwrap();
        assert_eq!(reports[0].method, Method::Adaptive);
        assert_eq!(reports[0].reason, DispatchReason::TinyHorizonActiveSet);
        // Numerically the active-set method *is* SR.
        let sr = engine
            .solve(
                &SolveRequest::new("big_sr", model.clone(), vec![10.0])
                    .epsilon(1e-10)
                    .method(MethodChoice::Fixed(Method::Sr)),
            )
            .unwrap();
        assert!((reports[0].value - sr[0].value).abs() < 1e-12);
        // The same horizon on a small model still dispatches to SR, and a
        // larger horizon on the big model leaves the tiny-Λt regime.
        let small = engine
            .solve(&SolveRequest::new("small", repairable(), vec![10.0]))
            .unwrap();
        assert_eq!(small[0].method, Method::Sr);
        let deeper = engine
            .solve(&SolveRequest::new("big_t", model, vec![500.0]).epsilon(1e-10))
            .unwrap();
        assert_eq!(deeper[0].reason, DispatchReason::SmallHorizon);
    }

    /// RR killed-chain parameters are cached across requests — and because
    /// RR and RRL build identical sequences for the same `(r, ε, θ)`, each
    /// method warms the cache for the other.
    #[test]
    fn rr_params_cached_across_requests_and_shared_with_rrl() {
        let engine = Engine::new();
        let mk = |name: &str, method| {
            SolveRequest::new(name, repairable(), vec![50.0, 500.0])
                .epsilon(1e-10)
                .method(MethodChoice::Fixed(method))
        };
        let first = engine.solve(&mk("rr1", Method::Rr)).unwrap();
        assert!(first.iter().all(|r| !r.params_cache_hit));
        let second = engine.solve(&mk("rr2", Method::Rr)).unwrap();
        assert!(
            second.iter().all(|r| r.params_cache_hit),
            "second RR request must reuse the killed-chain parameters"
        );
        // RRL with the same (r, ε, θ) hits the entry RR built.
        let rrl = engine.solve(&mk("rrl", Method::Rrl)).unwrap();
        assert!(
            rrl.iter().all(|r| r.params_cache_hit),
            "RRL must reuse RR's cached parameters"
        );
        for (a, b) in first.iter().zip(&rrl) {
            assert!(
                (a.value - b.value).abs() < 1e-9,
                "t={}: rr {} vs rrl {}",
                a.t,
                a.value,
                b.value
            );
        }
        assert_eq!(engine.cache().stats().regen_params.entries, 1);
    }

    #[test]
    fn auto_picks_rsd_for_irreducible_large_horizons() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![1e6]))
            .unwrap();
        assert_eq!(reports[0].method, Method::Rsd);
        assert_eq!(reports[0].reason, DispatchReason::IrreducibleSteadyState);
        let exact = 1e-3 / 1.001;
        assert!((reports[0].value - exact).abs() < 1e-9);
    }

    #[test]
    fn auto_picks_rrl_for_absorbing_large_horizons() {
        let engine = Engine::new();
        // Λ = 1e-3, so t must be huge for Λt to pass the SR threshold.
        let t = 4e6;
        let reports = engine
            .solve(&SolveRequest::new("u", non_repairable(), vec![t]).epsilon(1e-10))
            .unwrap();
        assert_eq!(reports[0].method, Method::Rrl);
        assert_eq!(reports[0].reason, DispatchReason::StiffLargeHorizon);
        let exact = 1.0 - (-1e-3 * t).exp();
        assert!(
            (reports[0].value - exact).abs() < 1e-8,
            "{} vs {exact}",
            reports[0].value
        );
    }

    #[test]
    fn fixed_rsd_on_absorbing_chain_is_rejected() {
        let engine = Engine::new();
        let req = SolveRequest::new("u", non_repairable(), vec![1.0])
            .method(MethodChoice::Fixed(Method::Rsd));
        match engine.solve(&req) {
            Err(EngineError::Unsupported { method, .. }) => assert_eq!(method, Method::Rsd),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn fixed_methods_agree_on_the_same_cell() {
        let engine = Engine::new();
        let t = 50.0;
        let mut values = Vec::new();
        for m in [
            Method::Sr,
            Method::Adaptive,
            Method::Ode,
            Method::Rr,
            Method::Rrl,
        ] {
            let req = SolveRequest::new("u", repairable(), vec![t])
                .epsilon(1e-10)
                .method(MethodChoice::Fixed(m));
            values.push((m, engine.solve(&req).unwrap()[0].value));
        }
        let reference = values[0].1;
        for (m, v) in values {
            assert!((v - reference).abs() < 1e-8, "{m}: {v} vs {reference}");
        }
    }

    #[test]
    fn mrr_flows_through_dispatch() {
        let engine = Engine::new();
        let t = 1e5;
        let req = SolveRequest::new("u", repairable(), vec![t])
            .measure(MeasureKind::Mrr)
            .epsilon(1e-10);
        let reports = engine.solve(&req).unwrap();
        assert_eq!(reports[0].method, Method::Rsd);
        let want = two_state::interval_unavailability(1e-3, 1.0, t);
        assert!((reports[0].value - want).abs() < 1e-8);
    }

    #[test]
    fn repeated_requests_hit_the_uniformization_cache() {
        let engine = Engine::new();
        let model = repairable();
        let req = SolveRequest::new("u", model.clone(), vec![1.0, 1e6]);
        let first = engine.solve(&req).unwrap();
        assert!(first.iter().any(|r| !r.unif_cache_hit));
        // An independently *rebuilt* model with identical structure still
        // hits: the key is the fingerprint, not the allocation.
        let again = SolveRequest::new("u2", repairable(), vec![1.0, 1e6]);
        let second = engine.solve(&again).unwrap();
        assert!(
            second.iter().all(|r| r.unif_cache_hit),
            "second request must reuse the uniformization"
        );
        assert!(engine.cache().stats().uniformized.hits >= 2);
    }

    #[test]
    fn sweep_collects_failures_without_poisoning_good_requests() {
        let engine = Engine::new();
        let good = SolveRequest::new("good", repairable(), vec![1.0]);
        let bad = SolveRequest::new("bad", non_repairable(), vec![1.0])
            .method(MethodChoice::Fixed(Method::Rsd));
        let empty = SolveRequest::new("empty", repairable(), vec![]);
        let report = engine.sweep(&[good, bad, empty]);
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].model, "good");
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    fn sweep_parallel_matches_sequential() {
        let mk = |threads| {
            Engine::with_options(EngineOptions {
                threads,
                ..Default::default()
            })
        };
        let reqs: Vec<SolveRequest> = (1..5)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0, 100.0, 1e5],
                )
                .epsilon(1e-10)
            })
            .collect();
        let seq = mk(1).sweep(&reqs);
        let par = mk(4).sweep(&reqs);
        assert!(seq.failures.is_empty() && par.failures.is_empty());
        assert_eq!(seq.reports.len(), par.reports.len());
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.t, b.t);
            assert_eq!(a.method, b.method);
            assert_eq!(a.value, b.value, "parallel sweep must be deterministic");
        }
    }

    /// The tentpole property at the engine layer: sweep requests whose
    /// models share a generator (different initials / rewards / measures /
    /// horizons) are solved in one blocked propagation — visible only as
    /// `exec.blocked_cells` — and every value is bitwise identical to an
    /// ungrouped (`rhs_block = 1`, single-thread) sweep.
    #[test]
    fn sweep_blocks_shared_generator_requests_bitwise() {
        let base = repairable();
        let rewarded = Arc::new(base.with_rewards(vec![0.5, 0.25]).unwrap());
        let shifted = Arc::new(base.with_initial(vec![0.25, 0.75]).unwrap());
        let reqs = vec![
            SolveRequest::new("a", base.clone(), vec![1.0, 5.0]),
            SolveRequest::new("b", rewarded, vec![2.0]).measure(MeasureKind::Mrr),
            SolveRequest::new("c", shifted, vec![0.0, 3.0]),
            // Different generator: must stay outside the block.
            SolveRequest::new("d", non_repairable(), vec![1.0]),
        ];
        let blocked = Engine::new().sweep(&reqs);
        assert!(blocked.failures.is_empty(), "{:?}", blocked.failures);
        // a(2 cells) + b(1) + c(2) group under one generator; d does not.
        assert_eq!(blocked.exec.blocked_cells, 5);

        let mut serial_opts = EngineOptions {
            threads: 1,
            ..Default::default()
        };
        serial_opts.parallel.rhs_block = RhsBlockChoice::Fixed(1);
        let serial = Engine::with_options(serial_opts).sweep(&reqs);
        assert!(serial.failures.is_empty());
        assert_eq!(
            serial.exec.blocked_cells, 0,
            "rhs_block=1 disables grouping"
        );

        assert_eq!(blocked.reports.len(), serial.reports.len());
        for (b, s) in blocked.reports.iter().zip(&serial.reports) {
            assert_eq!((b.model.as_str(), b.t), (s.model.as_str(), s.t));
            assert_eq!(b.method, s.method);
            assert_eq!(
                b.value.to_bits(),
                s.value.to_bits(),
                "{} t={} must be bitwise identical",
                b.model,
                b.t
            );
            assert_eq!(b.steps, s.steps);
            assert_eq!(b.error_bound.to_bits(), s.error_bound.to_bits());
            assert_eq!((b.kernel, b.backend), (s.kernel, s.backend));
        }
    }

    /// Regression (PR 2): a panicking solver job used to unwind through the
    /// scoped worker pool and abort the entire sweep (poisoning its result
    /// mutexes on the way). It must instead surface as that request's
    /// failure while every other request completes.
    #[test]
    fn sweep_isolates_a_panicking_job() {
        for threads in [1, 4] {
            let engine = Engine::with_options(EngineOptions {
                threads,
                ..Default::default()
            });
            let good_a = SolveRequest::new("good_a", repairable(), vec![1.0, 10.0]);
            let boom = SolveRequest::new("__panic_injection__", repairable(), vec![1.0]);
            let good_b = SolveRequest::new("good_b", non_repairable(), vec![1.0]);
            let report = engine.sweep(&[good_a, boom, good_b]);
            assert_eq!(report.reports.len(), 3, "threads={threads}");
            assert!(report.reports.iter().all(|r| r.model.starts_with("good")));
            assert_eq!(report.failures.len(), 1);
            assert!(
                report.failures[0].error.contains("panicked"),
                "failure must carry the panic: {}",
                report.failures[0].error
            );
            // The engine (and its cache) stay usable after the panic.
            let again = engine.sweep(&[SolveRequest::new("again", repairable(), vec![1.0])]);
            assert!(again.failures.is_empty());
            assert_eq!(again.reports.len(), 1);
        }
    }

    /// With capacity limits the pools obey their caps while the sweep still
    /// produces correct values and warm repeats still hit.
    #[test]
    fn bounded_cache_respects_caps_during_sweeps() {
        let cap = 3;
        let engine = Engine::with_cache_config(
            EngineOptions::default(),
            crate::cache::CacheConfig::with_max_entries(cap),
        );
        let reqs: Vec<SolveRequest> = (1..=8)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0, 100.0],
                )
                .epsilon(1e-10)
            })
            .collect();
        let report = engine.sweep(&reqs);
        assert!(report.failures.is_empty());
        let stats = engine.cache().stats();
        assert!(stats.uniformized.entries <= cap);
        assert!(stats.structure.entries <= cap);
        assert!(stats.uniformized.evictions > 0, "8 models through cap 3");
        for r in &report.reports {
            let (l, m) = (1e-3 * r.model[1..].parse::<f64>().unwrap(), 1.0);
            let exact = l / (l + m) * (1.0 - (-(l + m) * r.t).exp());
            assert!((r.value - exact).abs() < 1e-8, "{} t={}", r.model, r.t);
        }
    }

    #[test]
    fn sweep_reports_execution_stats_with_workspace_reuse() {
        let engine = Engine::with_options(EngineOptions {
            threads: 1,
            ..Default::default()
        });
        let reqs: Vec<SolveRequest> = (1..4)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0, 10.0, 100.0],
                )
                .epsilon(1e-10)
            })
            .collect();
        let report = engine.sweep(&reqs);
        assert!(report.failures.is_empty());
        let exec = report.exec;
        assert_eq!(exec.sweep_workers, 1);
        assert!(exec.pool_threads >= 1);
        assert!(exec.workspace.takes > 0, "solvers must draw scratch");
        assert!(
            exec.workspace.reused > 0,
            "one worker over three same-sized jobs must reuse scratch: {:?}",
            exec.workspace
        );
        assert_eq!(
            exec.workspace.takes,
            exec.workspace.fresh_allocs + exec.workspace.reused
        );
    }

    /// The per-cell kernel reflects what the solver's stepper actually
    /// runs: stepping methods report the (possibly forced) resolved
    /// kernel; Adaptive and the ODE oracle never build a stepper and
    /// report `"none"`.
    #[test]
    fn reported_kernel_tracks_solver_stepping() {
        let forced = Engine::with_options(EngineOptions {
            parallel: regenr_sparse::ParallelConfig {
                kernel: regenr_sparse::KernelChoice::Sliced,
                ..Default::default()
            },
            ..Default::default()
        });
        // SR and RSD cells step through the uniformization: forced kernel.
        let reports = forced
            .solve(&SolveRequest::new("u", repairable(), vec![1.0, 1e6]))
            .unwrap();
        assert_eq!(reports[0].method, Method::Sr);
        assert_eq!(reports[0].kernel, "sliced");
        assert_eq!(reports[1].method, Method::Rsd);
        assert_eq!(reports[1].kernel, "sliced");
        // A stepping cell always reports the resolved execution backend
        // (whatever the build/machine resolves Auto to).
        assert_eq!(
            reports[0].backend,
            regenr_sparse::simd::detected().name(),
            "stepping cells report the resolved backend"
        );
        // Adaptive (active-set, no stepper) and ODE report no kernel.
        let adaptive = forced
            .solve(&SolveRequest::new("big", large_birth_chain(2_500), vec![10.0]).epsilon(1e-10))
            .unwrap();
        assert_eq!(adaptive[0].method, Method::Adaptive);
        assert_eq!(adaptive[0].kernel, "none");
        assert_eq!(adaptive[0].backend, "none");
        let ode = forced
            .solve(
                &SolveRequest::new("u", repairable(), vec![1.0])
                    .method(MethodChoice::Fixed(Method::Ode)),
            )
            .unwrap();
        assert_eq!(ode[0].kernel, "none");
        assert_eq!(ode[0].backend, "none");
        // A forced-scalar engine reports scalar on stepping cells.
        let scalar = Engine::with_options(EngineOptions {
            parallel: regenr_sparse::ParallelConfig {
                backend: regenr_sparse::BackendChoice::Scalar,
                ..Default::default()
            },
            ..Default::default()
        });
        let reports = scalar
            .solve(&SolveRequest::new("u", repairable(), vec![1.0]))
            .unwrap();
        assert_eq!(reports[0].backend, "scalar");
    }

    /// `sweep_observed` must (a) hand every job's reports to the observer
    /// as jobs finish, and (b) stop claiming jobs once `cancelled()` turns
    /// true — skipped jobs count as `cancelled_jobs`, not failures, and the
    /// completed cells stay in the report.
    #[test]
    fn observed_sweep_streams_jobs_and_cancels_cleanly() {
        struct Tap {
            cells: AtomicUsize,
            cancel_after: usize,
        }
        impl SweepProgress for Tap {
            fn cancelled(&self) -> bool {
                self.cells.load(Ordering::SeqCst) >= self.cancel_after
            }
            fn on_reports(&self, reports: &[SolveReport]) {
                self.cells.fetch_add(reports.len(), Ordering::SeqCst);
            }
        }
        let engine = Engine::with_options(EngineOptions {
            threads: 1,
            ..Default::default()
        });
        let reqs: Vec<SolveRequest> = (1..=4)
            .map(|i| {
                SolveRequest::new(
                    format!("m{i}"),
                    Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)),
                    vec![1.0],
                )
            })
            .collect();
        // Observer that never cancels: sees every cell, nothing skipped.
        let tap = Tap {
            cells: AtomicUsize::new(0),
            cancel_after: usize::MAX,
        };
        let full = engine.sweep_observed(&reqs, &tap);
        assert!(full.failures.is_empty());
        assert_eq!(full.cancelled_jobs, 0);
        assert_eq!(full.reports.len(), 4);
        assert_eq!(tap.cells.load(Ordering::SeqCst), 4);
        // Cancel after the first cell lands: with one worker the remaining
        // jobs are skipped cleanly — partial reports, zero failures.
        let tap = Tap {
            cells: AtomicUsize::new(0),
            cancel_after: 1,
        };
        let partial = engine.sweep_observed(&reqs, &tap);
        assert!(
            partial.failures.is_empty(),
            "cancellation must not masquerade as failure: {:?}",
            partial.failures
        );
        assert_eq!(partial.reports.len(), 1);
        assert_eq!(partial.cancelled_jobs, 3);
        // Cancelled before anything ran: all jobs skipped.
        let tap = Tap {
            cells: AtomicUsize::new(0),
            cancel_after: 0,
        };
        let none = engine.sweep_observed(&reqs, &tap);
        assert!(none.reports.is_empty() && none.failures.is_empty());
        assert_eq!(none.cancelled_jobs, 4);
    }

    #[test]
    fn zero_horizon_reports_initial_reward() {
        let engine = Engine::new();
        let reports = engine
            .solve(&SolveRequest::new("u", repairable(), vec![0.0]))
            .unwrap();
        assert_eq!(reports[0].value, 0.0);
        assert_eq!(reports[0].steps, 0);
    }

    /// Panic payloads are bug/attacker-controlled strings that land in
    /// failure reports and NDJSON streams — the extractor must bound them
    /// to [`MAX_PANIC_MESSAGE_BYTES`] without splitting a character.
    #[test]
    fn panic_messages_are_bounded_on_char_boundaries() {
        fn extract(payload: impl std::any::Any + Send) -> String {
            let boxed: Box<dyn std::any::Any + Send> = Box::new(payload);
            panic_message(boxed.as_ref())
        }

        let short = extract("solver exploded");
        assert_eq!(short, "solver exploded");
        assert_eq!(extract(String::from("owned")), "owned");
        assert_eq!(extract(42_i32), "non-string panic payload");

        let long = extract("x".repeat(2_000));
        assert!(
            long.len() < MAX_PANIC_MESSAGE_BYTES + 64,
            "{} bytes leaked through the bound",
            long.len()
        );
        assert!(long.ends_with("[truncated 1488 bytes]"), "{long}");

        // 3-byte chars: 512 is not a boundary (512 % 3 == 2), so the cut
        // must back off rather than split the ellipsis mid-sequence.
        let multi = extract("…".repeat(200));
        assert!(multi.ends_with("[truncated 90 bytes]"), "{multi}");
        assert!(multi.starts_with('…'));
    }
}
