//! The engine's artifact cache: a two-level **artifact graph**.
//!
//! Solving a model at several horizons/tolerances/measures keeps recomputing
//! the same expensive intermediates — and a sensitivity sweep re-solving one
//! model over a grid of rate parameters recomputes intermediates that the
//! rate grid never even changes. The cache therefore keys artifacts at two
//! levels (see [`crate::fingerprint::ModelFps`]): a **structural**
//! fingerprint (sparsity pattern, rate/reward/initial support) and the full
//! **value** fingerprint (the actual numbers). Pure-topology artifacts key
//! structurally and are shared by every rate variant; value-dependent
//! artifacts key by value but can be **derived** from a structural sibling
//! far cheaper than from scratch:
//!
//! * **structure facts** — Tarjan SCC analysis plus the maximum exit rate
//!   (what `Auto` dispatch consults per horizon, and what the RR/RRL
//!   constructors consume through `with_uniformized_facts`). Keyed by the
//!   *structural* fingerprint: the analysis is pure topology, so RR/RRL on
//!   a rate variant is a cache hit — a *derived* hit
//!   ([`CacheStats::derived_hits`]) that re-scans only the diagonal for the
//!   new maximum exit rate,
//! * **uniformizations** — `P = I + Q/Λ` and its transpose, keyed by the
//!   generator's value fingerprint and the safety factor `θ` (shared by SR,
//!   RSD, adaptive, RR and RRL through the solvers' `with_uniformized`
//!   constructors). A miss whose generator *structure* has a live sibling
//!   in the pool rebuilds by [`Uniformized::rebind_values`] — the sibling
//!   donates its chunk plans, kernel selections, compact-index copies, and
//!   SELL-σ layouts, and only the numbers are refilled
//!   ([`CacheStats::rebinds`]),
//! * **regenerative parameters** — the killed-chain sequences
//!   (`a(k)`, …) consumed by RR *and* RRL, keyed by
//!   `(regenerative state, ε, θ)`. The two methods construct identical
//!   sequences for identical keys (only the solve stage differs — inner SR
//!   vs Laplace inversion), so they share pool entries: an RR request warms
//!   the cache for a later RRL request and vice versa. The truncation bound
//!   is monotone in `t`, so parameters computed at some horizon serve every
//!   smaller one by prefix truncation ([`RegenParams::truncated`]); the
//!   cache transparently *widens* the stored entry when a larger horizon
//!   arrives.
//!
//! This generalizes the one-off chain cache of `regenr-bench`'s `Workload`
//! (which memoizes only built RAID chains, for exactly four keys).
//!
//! ## Lifecycle
//!
//! By default every pool is unbounded — right for a one-shot sweep, wrong
//! for a long-running service that sees an open-ended stream of models. A
//! [`CacheConfig`] (via [`ArtifactCache::with_config`] or
//! `Engine::with_cache_config`) puts per-pool caps on entry count and
//! approximate byte footprint; on overflow, eviction is **cost-aware**: the
//! evicted entry is the one with the minimum `(rebuild cost × (1 +
//! dependents), LRU stamp)` — a uniformization that regenerative
//! parameters, chunk plans, and kernel layouts hang off is weighted by what
//! losing it would cost, not just its bytes, and evicting it anyway counts
//! the dependents as [`CacheStats::orphaned`]. Among equal weights the
//! policy degrades to exact LRU. Eviction only drops the cache's reference
//! — in-flight solvers holding an `Arc` to an evicted artifact keep it
//! alive until they finish. Per-pool counters ([`PoolStats`]: hits, misses,
//! evictions, plus the live entry/byte/rebuild-cost gauges) are embedded in
//! sweep reports.
//!
//! Byte accounting follows artifacts that *grow after insertion*: kernel
//! layouts are built lazily on a cached uniformization's chunk plans (first
//! stepper construction), and each build charges its bytes back to the
//! owning pool through a re-accounting hook — so `max_bytes` pressure sees
//! layout memory, not just the matrices that existed at insertion time.
//!
//! ## Concurrency
//!
//! Each pool is a mutex-guarded LRU map whose values are per-key slots:
//! a first-time build happens exactly once even when parallel sweep jobs
//! race on the same key (racers block on the slot, not the whole pool, and
//! count as hits). Float key components are bit-normalized so `-0.0`/`0.0`
//! share an entry and NaNs cannot create unreachable ones. All locks
//! tolerate poisoning: a panicking solver job must not take the cache down
//! with it.

use crate::fingerprint::{fingerprint, model_fps, ModelFps};
use regenr_core::{RegenOptions, RegenParams, RrlOptions, RrlSolver};
use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Capacity limits for an [`ArtifactCache`], applied to each pool
/// independently. The default is unbounded (a pure memo).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum live entries per pool (`None` = unbounded). On overflow the
    /// least-recently-used entry is evicted.
    pub max_entries: Option<usize>,
    /// Maximum approximate bytes per pool (`None` = unbounded). Accounting
    /// uses the artifacts' `approx_bytes` estimates, not allocator truth.
    pub max_bytes: Option<usize>,
}

impl CacheConfig {
    /// No limits (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps every pool's entry count.
    pub fn with_max_entries(max_entries: usize) -> Self {
        CacheConfig {
            max_entries: Some(max_entries),
            max_bytes: None,
        }
    }
}

/// Cached structural facts about one chain.
#[derive(Clone, Debug)]
pub struct ChainFacts {
    /// The structural fingerprint the facts were computed for.
    pub fingerprint: u64,
    /// State count.
    pub n_states: usize,
    /// Absorbing state indices (ascending).
    pub absorbing: Vec<usize>,
    /// Whether the chain is irreducible in the paper's sense (`A = 0`,
    /// single SCC).
    pub irreducible: bool,
    /// Maximum exit rate `max_i |q_ii|` — `Λ` at `θ = 0`.
    pub max_rate: f64,
}

impl ChainFacts {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.absorbing.len() * std::mem::size_of::<usize>()
    }
}

/// Counters and gauges for one artifact pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that had to build the artifact.
    pub misses: u64,
    /// Entries dropped by the LRU capacity limits.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Approximate live bytes right now.
    pub bytes: usize,
    /// Approximate total rebuild cost of the live entries, in the cache's
    /// work units (roughly "array elements touched to rebuild from
    /// scratch"). This is the quantity cost-aware eviction weighs (scaled
    /// by each entry's dependent count) — surfaced so the eviction policy
    /// is observable, not magic.
    pub cost: u64,
}

/// A snapshot of all cache counters, embedded in sweep reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Structure-analysis pool.
    pub structure: PoolStats,
    /// Uniformized-chain pool.
    pub uniformized: PoolStats,
    /// Regenerative-parameter pool.
    pub regen_params: PoolStats,
    /// Requests answered by *deriving* from a structurally identical
    /// artifact built for different rate/reward numbers: structure facts
    /// assembled from a rate variant's Tarjan analysis (the analysis
    /// itself never re-ran). Counted inside the structure pool's `hits`
    /// too — this splits out how many of those hits crossed a value
    /// fingerprint.
    pub derived_hits: u64,
    /// Uniformizations rebuilt for new rates by re-binding a structural
    /// donor's chunk plans and kernel layouts instead of re-planning from
    /// scratch ([`Uniformized::rebind_values`]). Counted inside the
    /// uniformized pool's `misses` too (a rebind still builds matrices).
    pub rebinds: u64,
    /// Dependent artifacts orphaned by evicting their parent: when
    /// eviction drops a uniformization that regenerative parameters were
    /// registered against, those dependents lose the artifact their
    /// rebuild would have been cheap next to. Cumulative, like
    /// `evictions`.
    pub orphaned: u64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Counters {
    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Normalized key bits for a float key component: both zeros collapse to
/// `+0.0` and every NaN to one canonical pattern, so `-0.0` cannot key a
/// duplicate artifact and a NaN cannot poison lookups with an entry no
/// equal-comparing value will ever find again. Non-finite `θ`/`ε` are
/// rejected upstream (request planning, spec parsing); this is defense in
/// depth for direct cache callers.
fn norm_key_bits(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

/// Poison-tolerant lock: a panicking solver job on another worker must not
/// wedge the cache (or the sweep executor, which shares this helper) for
/// the rest of the sweep. One policy, one copy — the execution layer's
/// helper, re-exported for the engine's call sites.
pub(crate) use regenr_sparse::pool::lock;

struct PoolEntry<V> {
    value: V,
    bytes: usize,
    /// Estimated cost to rebuild this artifact from scratch, in work
    /// units (charged alongside bytes when the artifact materializes and
    /// grown by lazy-layout deltas). Zero until filled.
    cost: u64,
    /// Derived artifacts registered against this entry (regenerative
    /// parameters hanging off a uniformization). Evicting an entry with
    /// dependents orphans them — eviction weighs that in, and counts it.
    dependents: u64,
    /// Whether an artifact has materialized in this entry's slot
    /// ([`LruPool::set_bytes`] ran). Only filled entries count toward — and
    /// may be evicted for — the capacity limits: an empty in-flight build
    /// slot must never cost a live artifact its place.
    filled: bool,
    /// LRU stamp from the pool clock; smallest is evicted first among
    /// equal eviction weights.
    stamp: u64,
}

/// A mutex-free cost-aware LRU map (callers wrap it in a `Mutex`).
/// Eviction scans for the minimum `(rebuild cost × (1 + dependents), LRU
/// stamp)` — `O(entries)`, fine at the capacities this cache is configured
/// with (the artifacts themselves dwarf the scan). Entries with equal
/// weights degrade to exact least-recently-used order.
struct LruPool<K, V> {
    map: HashMap<K, PoolEntry<V>>,
    clock: u64,
    bytes: usize,
    evictions: u64,
    /// Dependents orphaned by evictions (cumulative).
    orphaned: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruPool<K, V> {
    fn new() -> Self {
        LruPool {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
            evictions: 0,
            orphaned: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, refreshing its LRU stamp.
    fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.tick();
        self.map.get_mut(key).map(|e| {
            e.stamp = stamp;
            e.value.clone()
        })
    }

    /// Returns the slot for `key`, inserting `make()` (unfilled, zero
    /// bytes — see [`LruPool::set_bytes`]) if absent.
    ///
    /// Capacity is deliberately **not** enforced here: an empty build slot
    /// must never evict a live artifact on behalf of a build that may still
    /// fail. Enforcement happens in [`LruPool::set_bytes`], when an
    /// artifact actually materializes, and ignores unfilled slots entirely;
    /// until then concurrent first builds may transiently push the entry
    /// gauge past `max_entries` by at most the number of in-flight builders
    /// (each such slot is either filled — and the cap re-enforced — or
    /// removed by its [`SlotCleanup`]).
    fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let stamp = self.tick();
        let value = make();
        self.map.insert(
            key,
            PoolEntry {
                value: value.clone(),
                bytes: 0,
                cost: 0,
                dependents: 0,
                filled: false,
                stamp,
            },
        );
        value
    }

    /// Re-points `key`'s byte accounting at a freshly built/replaced
    /// artifact (marking the entry filled), then enforces capacity. `same`
    /// must identify the builder's own slot: if the entry was evicted —
    /// even if another caller has already re-inserted a fresh slot under
    /// the same key — this is a no-op, so a stale builder can never charge
    /// its artifact's size against an entry that does not hold it. For
    /// pools whose slots are *replaced* after filling (params widening),
    /// slot identity alone does not pin down the contents — callers there
    /// must compute `bytes` from the slot's current contents while holding
    /// the slot lock, so store and accounting are one atomic step.
    ///
    /// Pools whose entries only ever receive one absolute charge
    /// (structure, params) use this; pools with post-insertion growth (the
    /// uniformization pool and its lazy kernel layouts) must use
    /// [`LruPool::add_bytes`] for *both* the materialization charge and the
    /// growth deltas, or an in-flight delta would be overwritten here.
    fn set_bytes(
        &mut self,
        key: &K,
        same: impl FnOnce(&V) -> bool,
        bytes: usize,
        cost: u64,
        cfg: &CacheConfig,
    ) {
        if let Some(e) = self.map.get_mut(key) {
            if same(&e.value) {
                self.bytes = self.bytes - e.bytes + bytes;
                e.bytes = bytes;
                e.cost = cost;
                e.filled = true;
                self.enforce(cfg);
            }
        }
    }

    /// Adds `delta` bytes to `key`'s accounting (entry and pool gauges)
    /// and re-enforces capacity; `fill` marks the entry as materialized
    /// (eviction-eligible). This is the delta-based counterpart of
    /// [`LruPool::set_bytes`] for entries whose footprint arrives in
    /// pieces: the artifact itself at materialization (`fill = true`) and
    /// every lazily built kernel layout afterwards (`fill = false`, via
    /// the plan-bytes re-accounting hook) — charges commute, so hook
    /// firings racing the materialization are never lost or double-counted.
    /// Identity-checked like `set_bytes`: growth of an artifact that was
    /// evicted (or replaced) is simply not the pool's to account.
    /// Deliberately does **not** refresh the LRU stamp — background growth
    /// is not a use.
    fn add_bytes(
        &mut self,
        key: &K,
        same: impl FnOnce(&V) -> bool,
        delta: usize,
        cost_delta: u64,
        fill: bool,
        cfg: &CacheConfig,
    ) {
        if let Some(e) = self.map.get_mut(key) {
            if same(&e.value) {
                self.bytes += delta;
                e.bytes += delta;
                e.cost += cost_delta;
                e.filled |= fill;
                self.enforce(cfg);
            }
        }
    }

    /// Registers one more derived artifact hanging off `key` (best-effort:
    /// a parent already evicted is silently skipped). Does **not** refresh
    /// the LRU stamp — registration is bookkeeping, not a use. Dependents
    /// are registered-lifetime counts: they are not decremented when the
    /// derived artifact is itself evicted (the weight answers "how much
    /// has been built against this parent", a monotone proxy that keeps
    /// the two pools free of back-edges and lock-order coupling).
    fn bump_dependents(&mut self, key: &K) {
        if let Some(e) = self.map.get_mut(key) {
            e.dependents += 1;
        }
    }

    /// Removes `key` if its current value still is the caller's slot
    /// (identity via `same`): a builder whose build *failed* discards the
    /// empty slot it inserted, so the pool does not accumulate — or, under
    /// capacity pressure, evict live artifacts in favour of — keys that
    /// hold nothing. Not counted as an eviction.
    fn remove_if(&mut self, key: &K, same: impl FnOnce(&V) -> bool) {
        if self.map.get(key).is_some_and(|e| same(&e.value)) {
            if let Some(e) = self.map.remove(key) {
                self.bytes -= e.bytes;
            }
        }
    }

    /// Evicts the cheapest-to-lose **filled** entries until both caps
    /// hold. "Cheapest to lose" is the minimum of `(rebuild cost × (1 +
    /// dependents), LRU stamp)`: an artifact that derived artifacts hang
    /// off is weighted by what evicting it would orphan, not just its own
    /// rebuild, and among equal weights the least-recently-used entry
    /// goes first (pools whose entries all cost the same — e.g. variants
    /// of one model family — behave exactly like plain LRU). Evicting a
    /// parent with registered dependents counts them as `orphaned`.
    ///
    /// Unfilled in-flight build slots neither count toward `max_entries`
    /// nor get evicted — they resolve through their own `set_bytes` or
    /// [`SlotCleanup`]. A single artifact larger than `max_bytes` ends up
    /// evicting itself — the build still succeeds, it is just not retained.
    fn enforce(&mut self, cfg: &CacheConfig) {
        loop {
            let filled = self.map.values().filter(|e| e.filled).count();
            let over_entries = cfg.max_entries.is_some_and(|cap| filled > cap);
            let over_bytes = cfg.max_bytes.is_some_and(|cap| self.bytes > cap);
            if !over_entries && !over_bytes {
                return;
            }
            let Some(cheapest) = self
                .map
                .iter()
                .filter(|(_, e)| e.filled)
                .min_by_key(|(_, e)| (e.cost.saturating_mul(1 + e.dependents), e.stamp))
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            if let Some(e) = self.map.remove(&cheapest) {
                self.bytes -= e.bytes;
                self.evictions += 1;
                self.orphaned += e.dependents;
            }
        }
    }

    fn stats(&self, counters: &Counters) -> PoolStats {
        PoolStats {
            hits: counters.hits.load(Ordering::Relaxed),
            misses: counters.misses.load(Ordering::Relaxed),
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
            cost: self.map.values().map(|e| e.cost).sum(),
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

/// Key for the uniformization pool: fingerprint plus normalized `θ` bits.
type UnifKey = (u64, u64);
/// Key for the parameter pool: fingerprint, regenerative state, normalized
/// `ε` bits, normalized `θ` bits.
type ParamsKey = (u64, usize, u64, u64);

struct ParamsEntry {
    /// Largest horizon the stored sequences cover.
    t_max: f64,
    params: Arc<RegenParams>,
}

/// Per-key build slot: `None` until the first builder fills it. First
/// builders hold the slot lock across the build, so racers on the *same*
/// key block (then hit) while other keys proceed concurrently. A first
/// build that does not complete — error or panic — removes its empty slot
/// from the pool ([`SlotCleanup`]) so a key that never produced an artifact
/// cannot occupy, or under caps displace, a live entry.
type Slot<T> = Arc<Mutex<Option<T>>>;

/// Drop guard for a first build in progress: until [`SlotCleanup::disarm`],
/// dropping it (on `?` return or unwind) removes the builder's still-empty
/// slot from the pool. Identity-checked, so a slot re-inserted by a later
/// caller after an eviction is never touched.
struct SlotCleanup<'a, K: Eq + Hash + Clone, V> {
    pool: &'a Mutex<LruPool<K, Slot<V>>>,
    key: K,
    slot: Slot<V>,
    armed: bool,
}

impl<'a, K: Eq + Hash + Clone, V> SlotCleanup<'a, K, V> {
    fn new(pool: &'a Mutex<LruPool<K, Slot<V>>>, key: K, slot: Slot<V>) -> Self {
        SlotCleanup {
            pool,
            key,
            slot,
            armed: true,
        }
    }

    /// The build completed; keep the pool entry.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<K: Eq + Hash + Clone, V> Drop for SlotCleanup<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.pool).remove_if(&self.key, |v| Arc::ptr_eq(v, &self.slot));
        }
    }
}

/// Shared artifact cache; see the module docs.
pub struct ArtifactCache {
    cfg: CacheConfig,
    /// Keyed by the **structural** fingerprint: Tarjan facts are pure
    /// topology, so every rate/reward variant of one structure shares the
    /// entry (value-dependent fields are fixed up per request — see
    /// [`ArtifactCache::facts_for`]).
    structure: Mutex<LruPool<u64, Slot<Arc<ChainFacts>>>>,
    /// `Arc` so the plan-bytes re-accounting hook each cached
    /// [`Uniformized`] carries (see [`ArtifactCache::uniformized`]) can own
    /// its pool: the hook outlives any borrow of the cache — it fires from
    /// whatever thread builds a stepper on the artifact, for as long as the
    /// artifact lives.
    uniformized: Arc<Mutex<LruPool<UnifKey, Slot<Arc<Uniformized>>>>>,
    /// Structural donor index for the uniformized pool: `(generator
    /// structure fingerprint, θ bits) → pool key` of the latest artifact
    /// with that structure. A miss whose structure has a live donor
    /// rebuilds by [`Uniformized::rebind_values`] — reusing the donor's
    /// chunk plans, kernel selections, and layouts — instead of planning
    /// from scratch. Entries are three words each; stale ones (donor
    /// evicted) fail the pool lookup harmlessly and are overwritten by
    /// the next fresh build.
    unif_donors: Mutex<HashMap<(u64, u64), UnifKey>>,
    params: Mutex<LruPool<ParamsKey, Slot<ParamsEntry>>>,
    structure_counters: Counters,
    uniformized_counters: Counters,
    params_counters: Counters,
    derived_hits: AtomicU64,
    rebinds: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::with_config(CacheConfig::unbounded())
    }
}

impl ArtifactCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with capacity limits.
    pub fn with_config(cfg: CacheConfig) -> Self {
        ArtifactCache {
            cfg,
            structure: Mutex::new(LruPool::new()),
            uniformized: Arc::new(Mutex::new(LruPool::new())),
            unif_donors: Mutex::new(HashMap::new()),
            params: Mutex::new(LruPool::new()),
            structure_counters: Counters::default(),
            uniformized_counters: Counters::default(),
            params_counters: Counters::default(),
            derived_hits: AtomicU64::new(0),
            rebinds: AtomicU64::new(0),
        }
    }

    /// The capacity limits in effect.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The chain's fingerprint (convenience re-export).
    pub fn fingerprint_of(&self, ctmc: &Ctmc) -> u64 {
        fingerprint(ctmc)
    }

    /// Structure facts for `ctmc` by its full fingerprint `fp` (which must
    /// equal [`fingerprint`]`(ctmc)`). Compatibility wrapper around
    /// [`ArtifactCache::facts_for`] that re-derives the model's structural
    /// fingerprint; callers that already hold a [`ModelFps`] (the engine's
    /// planner) should pass it directly.
    pub fn facts(&self, fp: u64, ctmc: &Ctmc) -> Result<Arc<ChainFacts>, CtmcError> {
        let fps = model_fps(ctmc);
        debug_assert_eq!(fps.full, fp, "fp must be fingerprint(ctmc)");
        self.facts_for(&fps, ctmc)
    }

    /// Structure facts for `ctmc`, keyed **structurally**: Tarjan SCC
    /// analysis depends only on the sparsity pattern and rate support, so
    /// every rate/reward variant of one structure shares the pool entry,
    /// and the analysis runs exactly once per live structure (racers block
    /// on the per-key slot and count as hits). A request whose *value*
    /// fingerprint differs from the stored entry's is a **derived hit**
    /// ([`CacheStats::derived_hits`]): the topology facts are reused and
    /// only the value-dependent fields — the full fingerprint and the
    /// maximum exit rate, an `O(n)` diagonal scan — are recomputed.
    /// Analysis errors are returned, not cached (soundly so: analysis
    /// accepts or rejects on topology plus initial-distribution support,
    /// both part of the structural key).
    pub fn facts_for(&self, fps: &ModelFps, ctmc: &Ctmc) -> Result<Arc<ChainFacts>, CtmcError> {
        let skey = fps.structure;
        let slot = lock(&self.structure).get_or_insert_with(skey, Slot::default);
        let mut guard = lock(&slot);
        if let Some(facts) = guard.as_ref() {
            self.structure_counters.record(true);
            if facts.fingerprint == fps.full {
                return Ok(facts.clone());
            }
            // Derived hit: same topology, different numbers. Clone the
            // topology facts, then recompute the value-dependent fields
            // outside the slot lock.
            let derived = ChainFacts {
                fingerprint: fps.full,
                n_states: facts.n_states,
                absorbing: facts.absorbing.clone(),
                irreducible: facts.irreducible,
                max_rate: 0.0,
            };
            drop(guard);
            self.derived_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(ChainFacts {
                max_rate: ctmc.generator().max_abs_diag(),
                ..derived
            }));
        }
        let cleanup = SlotCleanup::new(&self.structure, skey, slot.clone());
        regenr_failpoint::failpoint!("cache-build-facts");
        let info = analyze(ctmc)?;
        let facts = Arc::new(ChainFacts {
            fingerprint: fps.full,
            n_states: ctmc.n_states(),
            irreducible: info.is_irreducible(),
            absorbing: info.absorbing,
            max_rate: ctmc.generator().max_abs_diag(),
        });
        self.structure_counters.record(false);
        *guard = Some(facts.clone());
        cleanup.disarm();
        drop(guard);
        // Rebuild cost: Tarjan + the reachability transpose both walk the
        // full pattern — a few passes over n + nnz elements.
        let cost = (ctmc.n_states() + ctmc.generator().nnz()) as u64;
        lock(&self.structure).set_bytes(
            &skey,
            |v| Arc::ptr_eq(v, &slot),
            facts.approx_bytes(),
            cost,
            &self.cfg,
        );
        Ok(facts)
    }

    /// The uniformized view of `ctmc` at safety factor `theta`, built
    /// exactly once per live `(fingerprint, θ)` entry. Returns the artifact
    /// and whether it was a cache hit.
    ///
    /// Byte accounting covers the artifact's *whole* lifetime, not just its
    /// insertion size: the CSR matrices are charged when the artifact
    /// materializes, and every kernel layout a stepper lazily builds on it
    /// afterwards is charged through the artifact's plan-bytes hook the
    /// moment it exists — so a byte-capped pool feels eviction pressure
    /// from layout memory too (layouts used to be invisible to `max_bytes`,
    /// a real accounting hole: a layout-backed kernel roughly doubles the
    /// stepped matrix's footprint). The hook is registered before the
    /// artifact is published, so no consumer can build a plan the pool
    /// never hears about; charges on an entry that was since evicted are
    /// identity-checked no-ops.
    pub fn uniformized(&self, fp: u64, ctmc: &Ctmc, theta: f64) -> (Arc<Uniformized>, bool) {
        self.uniformized_inner(fp, None, ctmc, theta)
    }

    /// [`ArtifactCache::uniformized`] with the generator's **structural**
    /// fingerprint alongside the full one — the delta-aware entry point
    /// the engine uses. A miss first consults the structural donor index:
    /// if a live artifact with the same generator structure (at the same
    /// `θ`) exists, the new artifact is built by
    /// [`Uniformized::rebind_values`] — fresh matrices, but every chunk
    /// plan, kernel selection, and layout re-bound from the donor instead
    /// of re-planned — and counted in [`CacheStats::rebinds`]. The result
    /// is bitwise identical to a cold build; only the build cost differs.
    pub fn uniformized_delta(
        &self,
        fp: u64,
        structure_fp: u64,
        ctmc: &Ctmc,
        theta: f64,
    ) -> (Arc<Uniformized>, bool) {
        self.uniformized_inner(fp, Some(structure_fp), ctmc, theta)
    }

    fn uniformized_inner(
        &self,
        fp: u64,
        structure_fp: Option<u64>,
        ctmc: &Ctmc,
        theta: f64,
    ) -> (Arc<Uniformized>, bool) {
        let key = (fp, norm_key_bits(theta));
        let slot = lock(&self.uniformized).get_or_insert_with(key, Slot::default);
        let mut guard = lock(&slot);
        if let Some(unif) = guard.as_ref() {
            self.uniformized_counters.record(true);
            return (unif.clone(), true);
        }
        let cleanup = SlotCleanup::new(&self.uniformized, key, slot.clone());
        regenr_failpoint::failpoint!("cache-build-unif");
        // Structural-donor path: a live artifact with this generator
        // structure donates its plans and layouts. Lock order: our (still
        // unfilled) slot → donor index → pool → donor slot; donor slots
        // are always *filled* (registered at materialization), and filled
        // slots are only ever locked briefly by hit readers or rebinders,
        // never while waiting on another slot — no cycle.
        let donated = structure_fp.and_then(|sfp| {
            let dkey = *lock(&self.unif_donors).get(&(sfp, norm_key_bits(theta)))?;
            if dkey == key {
                return None;
            }
            let donor_slot = lock(&self.uniformized).get(&dkey)?;
            let donor = lock(&donor_slot).clone()?;
            Some(Arc::new(donor.rebind_values(ctmc, theta)))
        });
        let rebound = donated.is_some();
        let unif = donated.unwrap_or_else(|| Arc::new(Uniformized::new(ctmc, theta)));
        {
            // Weak captures, NOT Arcs: the hook lives on the artifact, and
            // the pool (via the slot) owns the artifact — strong captures
            // of either would close a reference cycle and leak every
            // cache-built uniformization (the largest objects in the
            // system). A hook that cannot upgrade has nothing left to
            // account anyway.
            let pool = Arc::downgrade(&self.uniformized);
            let hook_slot = Arc::downgrade(&slot);
            let cfg = self.cfg;
            unif.set_plan_bytes_hook(move |delta| {
                let (Some(pool), Some(slot)) = (pool.upgrade(), hook_slot.upgrade()) else {
                    return;
                };
                // A lazily built layout's rebuild cost scales with its
                // element count — bytes/8 (f64/u64-dominated arrays) is
                // the honest order of magnitude.
                lock(&pool).add_bytes(
                    &key,
                    |v| Arc::ptr_eq(v, &slot),
                    delta,
                    (delta / 8) as u64,
                    false,
                    &cfg,
                );
            });
        }
        self.uniformized_counters.record(false);
        if rebound {
            self.rebinds.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(unif.clone());
        cleanup.disarm();
        drop(guard);
        // Fresh builds charge the matrices only (plans are lazy; the hook
        // charges them as they materialize). Rebound builds arrive with
        // the donor's plans already attached — charge everything up front,
        // the hook will only ever see configurations the donor lacked.
        // Cold-rebuild cost: build `P` (nnz), transpose it (2·nnz), scan
        // the diagonal (n), plus re-deriving any carried layouts.
        let bytes = if rebound {
            unif.approx_bytes()
        } else {
            unif.matrix_bytes()
        };
        let cost = (3 * ctmc.generator().nnz() + 2 * ctmc.n_states()) as u64
            + (unif.plan_bytes() / 8) as u64;
        lock(&self.uniformized).add_bytes(
            &key,
            |v| Arc::ptr_eq(v, &slot),
            bytes,
            cost,
            true,
            &self.cfg,
        );
        if let Some(sfp) = structure_fp {
            // Latest artifact wins the donor role for its structure; a
            // stale entry (evicted donor) is just a failed lookup later.
            lock(&self.unif_donors).insert((sfp, norm_key_bits(theta)), key);
        }
        (unif, false)
    }

    /// Regenerative parameters for `(chain, r, ε, θ)` covering horizon `t`,
    /// reusing (or widening) a cached computation. `build(horizon)` performs
    /// the construction on a miss — pass the owning solver's
    /// `parameters`/`parameters_with` so the key always describes the solver
    /// that consumes the result. RR and RRL construct identical sequences
    /// for identical keys, so both methods share this pool. The returned
    /// parameters cover **at least** `t`; slice them with
    /// [`RegenParams::depth_for_horizon`] + [`RegenParams::truncated`].
    ///
    /// A *first* build runs under the per-key slot lock, so two threads
    /// missing on the same key no longer both pay the full `parameters(t)`
    /// computation with one result dropped: the second blocks, then reads
    /// (or widens) the first's entry. A *widening* rebuild releases the
    /// lock while stepping — readers covered by the existing entry must not
    /// wait behind it (racing wideners may duplicate work; the widest
    /// result wins).
    pub fn regen_params(
        &self,
        fp: u64,
        regen: &RegenOptions,
        r: usize,
        t: f64,
        build: impl FnMut(f64) -> Result<RegenParams, CtmcError>,
    ) -> Result<(Arc<RegenParams>, bool), CtmcError> {
        self.regen_params_inner(fp, None, regen, r, t, build)
    }

    /// [`ArtifactCache::regen_params`] that also registers the built
    /// parameters as a **dependent** of the uniformization they were
    /// constructed on (keyed by `parent_unif_fp` at `θ = regen.theta`, the
    /// key the solver's uniformization was cached under): cost-aware
    /// eviction then weighs that parent by the artifacts hanging off it,
    /// and evicting it anyway counts the dependents as
    /// [`CacheStats::orphaned`]. Registration happens once per first
    /// build — widening an entry does not re-register.
    pub fn regen_params_linked(
        &self,
        fp: u64,
        parent_unif_fp: u64,
        regen: &RegenOptions,
        r: usize,
        t: f64,
        build: impl FnMut(f64) -> Result<RegenParams, CtmcError>,
    ) -> Result<(Arc<RegenParams>, bool), CtmcError> {
        self.regen_params_inner(fp, Some(parent_unif_fp), regen, r, t, build)
    }

    fn regen_params_inner(
        &self,
        fp: u64,
        parent_unif_fp: Option<u64>,
        regen: &RegenOptions,
        r: usize,
        t: f64,
        mut build: impl FnMut(f64) -> Result<RegenParams, CtmcError>,
    ) -> Result<(Arc<RegenParams>, bool), CtmcError> {
        let key = (
            fp,
            r,
            norm_key_bits(regen.epsilon),
            norm_key_bits(regen.theta),
        );
        let slot = lock(&self.params).get_or_insert_with(key, Slot::default);
        let guard = lock(&slot);
        if let Some(entry) = guard.as_ref() {
            if entry.t_max >= t {
                self.params_counters.record(true);
                return Ok((entry.params.clone(), true));
            }
            // Widening: the current entry keeps serving covered horizons
            // while we rebuild, so step without the slot lock.
            drop(guard);
            regenr_failpoint::failpoint!("cache-build-params");
            let params = Arc::new(build(t)?);
            self.params_counters.record(false);
            let guard = lock(&slot);
            let superseded = guard.as_ref().is_some_and(|e| e.t_max >= t);
            if !superseded {
                // Store + accounting are one atomic step under the slot
                // lock (see LruPool::set_bytes): a racing widener must not
                // interleave and leave the pool charging the wrong size.
                self.store_params(guard, &slot, key, t, &params);
            }
            return Ok((params, false));
        }
        let cleanup = SlotCleanup::new(&self.params, key, slot.clone());
        regenr_failpoint::failpoint!("cache-build-params");
        let params = Arc::new(build(t)?);
        self.params_counters.record(false);
        self.store_params(guard, &slot, key, t, &params);
        cleanup.disarm();
        // First build: hang this entry off its uniformization. Params pool
        // locks are all released here, so the established lock order
        // (never hold two pools at once) is kept.
        if let Some(pfp) = parent_unif_fp {
            lock(&self.uniformized).bump_dependents(&(pfp, norm_key_bits(regen.theta)));
        }
        Ok((params, false))
    }

    /// Installs a params entry and updates the pool's byte accounting while
    /// *holding* the slot lock, so the recorded size always matches the
    /// stored entry (slot identity alone cannot guarantee that: widening
    /// replaces slot contents).
    fn store_params(
        &self,
        mut guard: MutexGuard<'_, Option<ParamsEntry>>,
        slot: &Slot<ParamsEntry>,
        key: ParamsKey,
        t: f64,
        params: &Arc<RegenParams>,
    ) {
        *guard = Some(ParamsEntry {
            t_max: t,
            params: params.clone(),
        });
        // Slot lock then pool lock — the established order (set_bytes is
        // never called by a pool-lock holder).
        //
        // Rebuild cost: the killed-chain construction steps the truncated
        // chain once per stored depth level — the sequences' element count
        // (≈ bytes/8) is the per-level footprint, and each level cost a
        // matrix pass to produce.
        lock(&self.params).set_bytes(
            &key,
            |v| Arc::ptr_eq(v, slot),
            params.approx_bytes(),
            (params.approx_bytes() / 8) as u64,
            &self.cfg,
        );
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let structure = lock(&self.structure).stats(&self.structure_counters);
        let uniformized = lock(&self.uniformized).stats(&self.uniformized_counters);
        let regen_params = lock(&self.params).stats(&self.params_counters);
        CacheStats {
            structure,
            uniformized,
            regen_params,
            derived_hits: self.derived_hits.load(Ordering::Relaxed),
            rebinds: self.rebinds.load(Ordering::Relaxed),
            orphaned: lock(&self.structure).orphaned
                + lock(&self.uniformized).orphaned
                + lock(&self.params).orphaned,
        }
    }

    /// Drops every cached artifact (counters are kept; eviction counts are
    /// not incremented — clearing is not capacity pressure). The donor
    /// index goes too: a cleared cache must behave exactly like a fresh
    /// one, cold rebuilds included.
    pub fn clear(&self) {
        lock(&self.structure).clear();
        lock(&self.uniformized).clear();
        lock(&self.unif_donors).clear();
        lock(&self.params).clear();
    }
}

/// Convenience wrapper for [`ArtifactCache::regen_params`] callers that
/// need a solver first: builds an [`RrlSolver`] on the cached uniformization
/// and the cached structure facts (no duplicate Tarjan pass).
pub fn rrl_on_cache<'a>(
    cache: &ArtifactCache,
    fp: u64,
    ctmc: &'a Ctmc,
    r: usize,
    opts: RrlOptions,
) -> Result<(RrlSolver<'a>, bool), CtmcError> {
    let facts = cache.facts(fp, ctmc)?;
    let (unif, hit) = cache.uniformized(fp, ctmc, opts.regen.theta);
    Ok((
        RrlSolver::with_uniformized_facts(ctmc, r, unif, facts.absorbing.clone(), opts)?,
        hit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, 1e-3), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    /// A family of structurally distinct chains (distinct fingerprints).
    fn chain_with_rate(lambda: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn uniformized_hits_on_second_request() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let (a, hit_a) = cache.uniformized(fp, &c, 0.0);
        let (b, hit_b) = cache.uniformized(fp, &c, 0.0);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        // Different θ is a different artifact.
        let (_, hit_theta) = cache.uniformized(fp, &c, 0.1);
        assert!(!hit_theta);
        let stats = cache.stats().uniformized;
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0, "uniformizations must be byte-accounted");
    }

    #[test]
    fn negative_zero_theta_shares_the_entry() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let (a, _) = cache.uniformized(fp, &c, 0.0);
        let (b, hit) = cache.uniformized(fp, &c, -0.0);
        assert!(hit, "-0.0 and 0.0 must key the same artifact");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().uniformized.entries, 1);
    }

    #[test]
    fn facts_cached_and_correct() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let f1 = cache.facts(fp, &c).unwrap();
        let f2 = cache.facts(fp, &c).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        assert!(f1.irreducible);
        assert_eq!(f1.max_rate, 1.0);
        let stats = cache.stats().structure;
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn regen_params_widen_with_horizon() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let opts = RrlOptions::default();
        let (solver, _) = rrl_on_cache(&cache, fp, &c, 0, opts).unwrap();
        let regen = opts.regen;
        let build = |h| solver.parameters(h);
        let (_, hit1) = cache.regen_params(fp, &regen, 0, 10.0, build).unwrap();
        assert!(!hit1);
        let (_, hit2) = cache.regen_params(fp, &regen, 0, 5.0, build).unwrap();
        assert!(hit2, "smaller horizon must reuse the wider computation");
        let (_, hit3) = cache.regen_params(fp, &regen, 0, 100.0, build).unwrap();
        assert!(!hit3, "larger horizon must recompute (and widen the entry)");
        let (_, hit4) = cache.regen_params(fp, &regen, 0, 50.0, build).unwrap();
        assert!(hit4);
        assert_eq!(cache.stats().regen_params.entries, 1, "widening replaces");
    }

    /// Regression (PR 2): two threads missing on the same params key must
    /// not both run the full `parameters(t)` computation. The build happens
    /// under the per-key slot lock, so exactly one thread misses and every
    /// racer scores a hit.
    #[test]
    fn regen_params_contention_builds_once() {
        let cache = Arc::new(ArtifactCache::new());
        let c = Arc::new(chain());
        let fp = fingerprint(&c);
        let opts = RrlOptions::default();
        let n_threads = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n_threads));
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let cache = cache.clone();
                let c = c.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let (solver, _) = rrl_on_cache(&cache, fp, &c, 0, opts).unwrap();
                    barrier.wait();
                    let (params, _) = cache
                        .regen_params(fp, &opts.regen, 0, 1_000.0, |h| solver.parameters(h))
                        .unwrap();
                    assert!(params
                        .depth_for_horizon(1_000.0, opts.regen.epsilon)
                        .is_some());
                });
            }
        });
        let stats = cache.stats().regen_params;
        assert_eq!(
            stats.misses, 1,
            "exactly one thread may build; got {stats:?}"
        );
        assert_eq!(stats.hits, (n_threads - 1) as u64);
    }

    /// A failed structure analysis must not leave its empty build slot in
    /// the pool — a stream of invalid models would otherwise grow the map
    /// without bound (or, under caps, displace live artifacts).
    #[test]
    fn failed_analysis_does_not_leak_a_pool_entry() {
        let cache = ArtifactCache::new();
        // Two separate transient SCCs: analyze() rejects this chain.
        let bad = Ctmc::from_rates(
            3,
            &[(0, 2, 1.0), (1, 2, 1.0)],
            vec![0.5, 0.5, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        let fp = fingerprint(&bad);
        for _ in 0..3 {
            assert!(cache.facts(fp, &bad).is_err());
        }
        let stats = cache.stats().structure;
        assert_eq!(stats.entries, 0, "failed builds must not occupy entries");
        assert_eq!(stats.bytes, 0);
        // A valid chain still caches normally afterwards.
        let good = chain();
        let good_fp = fingerprint(&good);
        assert!(cache.facts(good_fp, &good).is_ok());
        assert_eq!(cache.stats().structure.entries, 1);
    }

    /// A birth–death chain over `n` states: structurally distinct per `n`.
    fn chain_with_states(n: usize) -> Ctmc {
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        Ctmc::from_rates(n, &rates, init, vec![1.0; n]).unwrap()
    }

    /// Capacity is enforced when an artifact materializes, never when an
    /// empty build slot is inserted: a stream of invalid models at a full
    /// cap must not flush the live artifacts it can never replace.
    #[test]
    fn failing_builds_do_not_evict_live_artifacts() {
        let cache = ArtifactCache::with_config(CacheConfig::with_max_entries(2));
        // Structurally distinct (the structure pool keys by topology, so
        // mere rate variants would share one entry).
        let a = chain_with_states(2);
        let b = chain_with_states(3);
        let (fa, fb) = (fingerprint(&a), fingerprint(&b));
        cache.facts(fa, &a).unwrap();
        cache.facts(fb, &b).unwrap();

        let bad = Ctmc::from_rates(
            3,
            &[(0, 2, 1.0), (1, 2, 1.0)],
            vec![0.5, 0.5, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        let bad_fp = fingerprint(&bad);
        for _ in 0..4 {
            assert!(cache.facts(bad_fp, &bad).is_err());
        }

        let stats = cache.stats().structure;
        assert_eq!(stats.evictions, 0, "no live artifact may be displaced");
        assert_eq!(stats.entries, 2);
        // Both live artifacts are still served from the pool.
        cache.facts(fa, &a).unwrap();
        cache.facts(fb, &b).unwrap();
        assert_eq!(cache.stats().structure.hits, 2);
    }

    /// A *panicking* build must clean up like a failing one: the empty slot
    /// leaves the pool (no cap-occupying ghost entry) and the key stays
    /// buildable afterwards.
    #[test]
    fn panicking_build_does_not_leak_a_pool_entry() {
        let cache = ArtifactCache::with_config(CacheConfig::with_max_entries(2));
        let c = chain();
        let fp = fingerprint(&c);
        // θ < 0 panics inside Uniformized::new (the engine validates θ
        // upstream; the cache API is public).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.uniformized(fp, &c, -1.0)
        }));
        assert!(result.is_err(), "negative θ must panic");
        assert_eq!(cache.stats().uniformized.entries, 0);
        // The pool still serves fresh builds afterwards.
        let (_, hit) = cache.uniformized(fp, &c, 0.0);
        assert!(!hit);
        assert_eq!(cache.stats().uniformized.entries, 1);
    }

    /// The plan-bytes hook must capture its pool and slot **weakly**: the
    /// hook lives on the artifact and the pool owns the artifact, so
    /// strong captures would close a reference cycle — every cache-built
    /// uniformization (and the pool itself) would leak forever, with
    /// eviction freeing only the byte accounting.
    #[test]
    fn dropping_cache_and_holders_frees_the_artifact() {
        use regenr_sparse::{KernelChoice, ParallelConfig};
        let c = chain();
        let fp = fingerprint(&c);
        let weak;
        {
            let cache = ArtifactCache::new();
            let (unif, _) = cache.uniformized(fp, &c, 0.0);
            // Exercise the hook so the leak (if any) is the realistic one.
            let _ = unif.stepper(&ParallelConfig {
                min_nnz: 0,
                threads: 1,
                kernel: KernelChoice::Sliced,
                ..Default::default()
            });
            weak = Arc::downgrade(&unif);
            drop(unif);
            assert!(weak.upgrade().is_some(), "cache keeps the artifact alive");
        }
        assert!(
            weak.upgrade().is_none(),
            "dropping the cache and all holders must free the artifact (Arc cycle?)"
        );
    }

    /// Regression (left behind by the PR-4 kernel suite): kernel layouts
    /// built lazily on a *cached* uniformization were invisible to
    /// `max_bytes` — the pool charged the artifact at insertion, and the
    /// layout memory a stepper added later never counted. The plan-bytes
    /// re-accounting hook closes that: a byte-capped cache must evict when
    /// lazy plans push an entry over cap.
    #[test]
    fn lazy_plan_bytes_trigger_byte_cap_eviction() {
        use regenr_sparse::{KernelChoice, ParallelConfig};
        // A chain large enough that a sliced layout carries real bytes.
        let n = 96;
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let c = Ctmc::from_rates(n, &rates, init, vec![1.0; n]).unwrap();
        let fp = fingerprint(&c);
        let matrix_bytes = Uniformized::new(&c, 0.0).matrix_bytes();

        // Cap exactly at the matrices: insertion fits, any layout overflows.
        let cache = ArtifactCache::with_config(CacheConfig {
            max_entries: None,
            max_bytes: Some(matrix_bytes),
        });
        let (unif, hit) = cache.uniformized(fp, &c, 0.0);
        assert!(!hit);
        let at_insert = cache.stats().uniformized;
        assert_eq!(at_insert.entries, 1, "the artifact itself fits the cap");
        assert_eq!(at_insert.bytes, matrix_bytes);
        assert_eq!(at_insert.evictions, 0);

        // Build a layout-backed plan on the *cached* artifact — exactly
        // what a solver's stepper does long after insertion.
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 1,
            kernel: KernelChoice::Sliced,
            ..Default::default()
        };
        let stepper = unif.stepper(&cfg);
        assert!(unif.plan_bytes() > 0, "forced sliced must build a layout");

        let after_plan = cache.stats().uniformized;
        assert_eq!(
            after_plan.evictions, 1,
            "lazy plan bytes must push the entry over cap and evict it"
        );
        assert_eq!(after_plan.entries, 0);
        assert_eq!(after_plan.bytes, 0, "eviction releases the full charge");
        // The holder's artifact (and stepper) stay usable — eviction only
        // drops the cache's reference.
        let mut out = vec![0.0; n];
        stepper.step(&vec![1.0 / n as f64; n], &mut out);
        // Re-requesting rebuilds (a miss), and the fresh entry is again
        // charged with the matrices only until its plans materialize.
        let (_, hit) = cache.uniformized(fp, &c, 0.0);
        assert!(!hit, "the evicted entry must rebuild");
        assert_eq!(cache.stats().uniformized.bytes, matrix_bytes);

        // Under a roomier cap the charge accumulates instead of evicting:
        // entry bytes = matrices + layouts, matching the artifact's own
        // approx_bytes.
        let roomy = ArtifactCache::with_config(CacheConfig {
            max_entries: None,
            max_bytes: Some(matrix_bytes * 4),
        });
        let (unif, _) = roomy.uniformized(fp, &c, 0.0);
        let _ = unif.stepper(&cfg);
        let stats = roomy.stats().uniformized;
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.bytes, unif.approx_bytes());
        assert_eq!(stats.bytes, matrix_bytes + unif.plan_bytes());
    }

    #[test]
    fn max_entries_evicts_least_recently_used() {
        let cache = ArtifactCache::with_config(CacheConfig::with_max_entries(2));
        let chains: Vec<Ctmc> = [1e-3, 2e-3, 3e-3]
            .iter()
            .map(|&l| chain_with_rate(l))
            .collect();
        let fps: Vec<u64> = chains.iter().map(fingerprint).collect();
        assert_eq!(
            fps.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );

        cache.uniformized(fps[0], &chains[0], 0.0);
        cache.uniformized(fps[1], &chains[1], 0.0);
        // Touch 0 so 1 becomes the LRU entry, then overflow with 2.
        let (_, hit0) = cache.uniformized(fps[0], &chains[0], 0.0);
        assert!(hit0);
        cache.uniformized(fps[2], &chains[2], 0.0);

        let stats = cache.stats().uniformized;
        assert_eq!(stats.entries, 2, "cap must hold");
        assert_eq!(stats.evictions, 1);
        // 1 was evicted (LRU); 0 and 2 survive.
        let (_, hit0) = cache.uniformized(fps[0], &chains[0], 0.0);
        let (_, hit1) = cache.uniformized(fps[1], &chains[1], 0.0);
        assert!(hit0, "recently used entry must survive");
        assert!(!hit1, "LRU entry must have been evicted");
    }

    #[test]
    fn max_bytes_evicts_and_oversized_artifact_is_not_retained() {
        let c = chain();
        let fp = fingerprint(&c);
        let one = Uniformized::new(&c, 0.0).approx_bytes();

        // Budget for one artifact: inserting a second evicts the first.
        let cache = ArtifactCache::with_config(CacheConfig {
            max_entries: None,
            max_bytes: Some(one + one / 2),
        });
        cache.uniformized(fp, &c, 0.0);
        cache.uniformized(fp, &c, 0.5);
        let stats = cache.stats().uniformized;
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= one + one / 2);

        // Budget below a single artifact: the build succeeds but nothing
        // is retained.
        let tiny = ArtifactCache::with_config(CacheConfig {
            max_entries: None,
            max_bytes: Some(1),
        });
        let (unif, hit) = tiny.uniformized(fp, &c, 0.0);
        assert!(!hit);
        assert_eq!(unif.n_states(), 2, "caller still gets the artifact");
        let stats = tiny.stats().uniformized;
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    /// Rate variants of one structure share a single structure-pool entry:
    /// the second request is a *derived* hit — the Tarjan facts are reused,
    /// only the value-dependent fields are recomputed.
    #[test]
    fn rate_variants_share_structure_facts_as_derived_hits() {
        let cache = ArtifactCache::new();
        let a = chain_with_rate(1e-3);
        let b = chain_with_rate(2.0);
        let fa = model_fps(&a);
        let fb = model_fps(&b);
        assert_eq!(fa.structure, fb.structure, "rate variants share structure");
        assert_ne!(fa.full, fb.full);
        let f1 = cache.facts_for(&fa, &a).unwrap();
        let f2 = cache.facts_for(&fb, &b).unwrap();
        // Topology facts identical; value-dependent fields are the
        // variant's own.
        assert_eq!(f1.irreducible, f2.irreducible);
        assert_eq!(f1.absorbing, f2.absorbing);
        assert_eq!(f1.max_rate, 1.0);
        assert_eq!(f2.max_rate, 2.0, "derived facts recompute the exit rate");
        assert_eq!(f2.fingerprint, fb.full);
        let stats = cache.stats();
        assert_eq!(stats.structure.entries, 1, "one entry per structure");
        assert_eq!((stats.structure.hits, stats.structure.misses), (1, 1));
        assert_eq!(stats.derived_hits, 1);
        assert!(stats.structure.cost > 0, "rebuild cost must be charged");
    }

    /// A birth–death rate variant: same structure as [`chain_with_states`]
    /// of the same size, different numbers.
    fn scaled_chain(n: usize, scale: f64) -> Ctmc {
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0 * scale));
            rates.push((i + 1, i, 0.5 * scale));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        Ctmc::from_rates(n, &rates, init, vec![1.0; n]).unwrap()
    }

    /// The delta-aware lookup rebuilds a rate variant's uniformization by
    /// re-binding the structural donor's plans — bitwise identical to a
    /// cold build, with the donor's kernel layouts carried over instead of
    /// re-planned.
    #[test]
    fn uniformized_rebind_reuses_donor_plans_bitwise() {
        use regenr_sparse::{KernelChoice, ParallelConfig};
        let a = scaled_chain(64, 1.0);
        let b = scaled_chain(64, 1.75);
        let fa = model_fps(&a);
        let fb = model_fps(&b);
        assert_eq!(fa.unif_structure, fb.unif_structure);
        assert_ne!(fa.unif, fb.unif);
        let cache = ArtifactCache::new();
        let (ua, _) = cache.uniformized_delta(fa.unif, fa.unif_structure, &a, 0.0);
        // Materialize a layout-backed plan on the donor.
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 1,
            kernel: KernelChoice::Sliced,
            ..Default::default()
        };
        let _ = ua.stepper(&cfg);
        assert!(ua.plan_bytes() > 0);

        let (ub, hit) = cache.uniformized_delta(fb.unif, fb.unif_structure, &b, 0.0);
        assert!(!hit, "a rebind is still a miss (the artifact was built)");
        let stats = cache.stats();
        assert_eq!(stats.rebinds, 1);
        assert_eq!(stats.uniformized.entries, 2);
        // The donor's layout arrived pre-seeded on the new artifact…
        assert_eq!(ub.plan_bytes(), ua.plan_bytes());
        // …and byte accounting charged it up front (donor: matrices at
        // insert + hook-charged layout; rebound: everything at insert).
        assert_eq!(
            stats.uniformized.bytes,
            ua.approx_bytes() + ub.approx_bytes()
        );
        // Bitwise identity with a cold build, through the stepped product.
        let cold = Uniformized::new(&b, 0.0);
        assert_eq!(ub.lambda.to_bits(), cold.lambda.to_bits());
        let n = b.n_states();
        let pi: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        ub.stepper(&cfg).step(&pi, &mut got);
        cold.stepper(&cfg).step(&pi, &mut want);
        for (x, y) in got.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A repeat of the same variant is a plain hit, not another rebind.
        let (_, hit) = cache.uniformized_delta(fb.unif, fb.unif_structure, &b, 0.0);
        assert!(hit);
        assert_eq!(cache.stats().rebinds, 1);
    }

    /// Acceptance: under a byte cap, a leaf artifact with no dependents is
    /// evicted before a cheaper-by-bytes uniformization that regenerative
    /// parameters hang off — and without the dependent edge, the same
    /// pressure evicts the parent instead.
    #[test]
    fn cost_aware_eviction_keeps_parent_with_dependents() {
        let parent = chain_with_states(48);
        let leaf = chain_with_states(64);
        let (fp_p, fp_l) = (fingerprint(&parent), fingerprint(&leaf));
        let opts = RrlOptions::default();

        // Dry run (unbounded) to size the cap: parent's full footprint
        // (matrices + any layouts its params build materialized), plus the
        // leaf's matrices, minus one byte — the leaf's insertion overflows.
        let dry = ArtifactCache::new();
        let (solver, _) = rrl_on_cache(&dry, fp_p, &parent, 0, opts).unwrap();
        dry.regen_params_linked(fp_p, fp_p, &opts.regen, 0, 10.0, |h| solver.parameters(h))
            .unwrap();
        let parent_bytes = dry.stats().uniformized.bytes;
        let leaf_bytes = Uniformized::new(&leaf, 0.0).matrix_bytes();

        let run = |linked: bool| -> CacheStats {
            let cache = ArtifactCache::with_config(CacheConfig {
                max_entries: None,
                max_bytes: Some(parent_bytes + leaf_bytes - 1),
            });
            let (solver, _) = rrl_on_cache(&cache, fp_p, &parent, 0, opts).unwrap();
            if linked {
                cache
                    .regen_params_linked(fp_p, fp_p, &opts.regen, 0, 10.0, |h| solver.parameters(h))
                    .unwrap();
            } else {
                cache
                    .regen_params(fp_p, &opts.regen, 0, 10.0, |h| solver.parameters(h))
                    .unwrap();
            }
            cache.uniformized(fp_l, &leaf, opts.regen.theta);
            // Who survived? A hit means the entry is still resident.
            let parent_resident = cache.uniformized(fp_p, &parent, opts.regen.theta).1;
            let leaf_resident = cache.uniformized(fp_l, &leaf, opts.regen.theta).1;
            if linked {
                assert!(
                    parent_resident,
                    "the parent with dependents must survive byte pressure"
                );
                assert!(
                    !leaf_resident,
                    "the dependent-free leaf must be evicted first"
                );
            } else {
                assert!(
                    !parent_resident,
                    "without the dependent edge the cheaper parent goes"
                );
                assert!(leaf_resident);
            }
            cache.stats()
        };

        let with_edge = run(true);
        assert!(with_edge.uniformized.evictions >= 1);
        assert_eq!(
            with_edge.orphaned, 0,
            "evicting the dependent-free leaf orphans nothing"
        );
        let without_edge = run(false);
        assert!(without_edge.uniformized.evictions >= 1);
    }

    /// Evicting a parent that dependents were registered against counts
    /// them as orphaned — capacity pressure can still claim it when every
    /// alternative is heavier, but the loss is observable.
    #[test]
    fn orphaned_counts_dependents_of_evicted_parents() {
        let parent = chain_with_states(16);
        let fp_p = fingerprint(&parent);
        let opts = RrlOptions::default();
        let cache = ArtifactCache::with_config(CacheConfig {
            max_entries: Some(1),
            max_bytes: None,
        });
        let (solver, _) = rrl_on_cache(&cache, fp_p, &parent, 0, opts).unwrap();
        cache
            .regen_params_linked(fp_p, fp_p, &opts.regen, 0, 10.0, |h| solver.parameters(h))
            .unwrap();
        // Displace the parent with an artifact heavy enough that even the
        // dependent-weighted parent is the cheaper loss.
        let other = chain_with_states(128);
        cache.uniformized(fingerprint(&other), &other, opts.regen.theta);
        let stats = cache.stats();
        assert_eq!(stats.uniformized.entries, 1, "cap must hold");
        assert_eq!(
            stats.orphaned, 1,
            "evicting the params' parent must count the orphan"
        );
    }

    #[test]
    fn eviction_then_reinsert_rebuilds() {
        let cache = ArtifactCache::with_config(CacheConfig::with_max_entries(1));
        let a = chain_with_rate(1e-3);
        let b = chain_with_rate(2e-3);
        let (fa, fb) = (fingerprint(&a), fingerprint(&b));
        assert!(!cache.uniformized(fa, &a, 0.0).1);
        assert!(!cache.uniformized(fb, &b, 0.0).1); // evicts a
        assert!(!cache.uniformized(fa, &a, 0.0).1); // rebuild, evicts b
        assert!(!cache.uniformized(fb, &b, 0.0).1);
        let stats = cache.stats().uniformized;
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.misses, 4);
    }
}
