//! The engine's artifact cache.
//!
//! Solving a model at several horizons/tolerances/measures keeps recomputing
//! the same expensive intermediates. The cache keys them by the model's
//! structural [fingerprint](crate::fingerprint::fingerprint) so *any*
//! request over an identical chain reuses:
//!
//! * **structure facts** — Tarjan SCC analysis plus the maximum exit rate
//!   (what `Auto` dispatch consults per horizon),
//! * **uniformizations** — `P = I + Q/Λ` and its transpose, keyed by the
//!   safety factor `θ` (shared by SR, RSD, adaptive, RR and RRL through the
//!   solvers' `with_uniformized` constructors),
//! * **regenerative parameters** — the killed-chain sequences
//!   (`a(k)`, …) consumed by RRL, keyed by `(regenerative state, ε, θ)`
//!   (RR shares the same construction *within* a request through
//!   `RrSolver::solve_many`, but is not cached across requests here). The
//!   truncation bound is monotone in `t`, so parameters computed at some
//!   horizon serve every smaller one by prefix truncation
//!   ([`RegenParams::truncated`]); the cache transparently *widens* the
//!   stored entry when a larger horizon arrives.
//!
//! This generalizes the one-off chain cache of `regenr-bench`'s `Workload`
//! (which memoizes only built RAID chains, for exactly four keys).
//!
//! All pools are guarded by `std::sync` mutexes and the hit/miss counters
//! are atomics: the sweep executor calls into one shared cache from many
//! worker threads.

use crate::fingerprint::fingerprint;
use regenr_core::{RegenOptions, RegenParams, RrlOptions, RrlSolver};
use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cached structural facts about one chain.
#[derive(Clone, Debug)]
pub struct ChainFacts {
    /// The structural fingerprint the facts were computed for.
    pub fingerprint: u64,
    /// State count.
    pub n_states: usize,
    /// Absorbing state indices (ascending).
    pub absorbing: Vec<usize>,
    /// Whether the chain is irreducible in the paper's sense (`A = 0`,
    /// single SCC).
    pub irreducible: bool,
    /// Maximum exit rate `max_i |q_ii|` — `Λ` at `θ = 0`.
    pub max_rate: f64,
}

/// Hit/miss counters for one artifact pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that had to build the artifact.
    pub misses: u64,
}

/// A snapshot of all cache counters, embedded in sweep reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Structure-analysis pool.
    pub structure: PoolStats,
    /// Uniformized-chain pool.
    pub uniformized: PoolStats,
    /// Regenerative-parameter pool.
    pub regen_params: PoolStats,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Counters {
    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Key for the uniformization pool: fingerprint plus `θ` bits.
type UnifKey = (u64, u64);
/// Key for the parameter pool: fingerprint, regenerative state, `ε` bits,
/// `θ` bits.
type ParamsKey = (u64, usize, u64, u64);

struct ParamsEntry {
    /// Largest horizon the stored sequences cover.
    t_max: f64,
    params: Arc<RegenParams>,
}

/// Shared artifact cache; see the module docs.
#[derive(Default)]
pub struct ArtifactCache {
    structure: Mutex<HashMap<u64, Arc<ChainFacts>>>,
    // Per-key OnceLock so a first-time build happens exactly once even when
    // parallel sweep jobs race on the same chain (racers block on the cell,
    // not the whole pool, and count as hits).
    uniformized: Mutex<HashMap<UnifKey, Arc<OnceLock<Arc<Uniformized>>>>>,
    params: Mutex<HashMap<ParamsKey, ParamsEntry>>,
    structure_counters: Counters,
    uniformized_counters: Counters,
    params_counters: Counters,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The chain's fingerprint (convenience re-export).
    pub fn fingerprint_of(&self, ctmc: &Ctmc) -> u64 {
        fingerprint(ctmc)
    }

    /// Structure facts for `ctmc`, computed on first use.
    pub fn facts(&self, fp: u64, ctmc: &Ctmc) -> Result<Arc<ChainFacts>, CtmcError> {
        if let Some(hit) = self.structure.lock().unwrap().get(&fp) {
            self.structure_counters.record(true);
            return Ok(hit.clone());
        }
        // Analysis runs outside the lock: it is read-only on the chain and
        // racing builders at worst duplicate work once.
        let info = analyze(ctmc)?;
        let facts = Arc::new(ChainFacts {
            fingerprint: fp,
            n_states: ctmc.n_states(),
            irreducible: info.is_irreducible(),
            absorbing: info.absorbing,
            max_rate: ctmc.generator().max_abs_diag(),
        });
        self.structure_counters.record(false);
        Ok(self
            .structure
            .lock()
            .unwrap()
            .entry(fp)
            .or_insert(facts)
            .clone())
    }

    /// The uniformized view of `ctmc` at safety factor `theta`, built
    /// exactly once per `(fingerprint, θ)`. Returns the artifact and
    /// whether it was a cache hit.
    pub fn uniformized(&self, fp: u64, ctmc: &Ctmc, theta: f64) -> (Arc<Uniformized>, bool) {
        let key = (fp, theta.to_bits());
        let cell = self
            .uniformized
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .clone();
        let mut built_here = false;
        let unif = cell
            .get_or_init(|| {
                built_here = true;
                Arc::new(Uniformized::new(ctmc, theta))
            })
            .clone();
        self.uniformized_counters.record(!built_here);
        (unif, !built_here)
    }

    /// Regenerative parameters for `(chain, r, ε, θ)` covering horizon `t`,
    /// reusing (or widening) a cached computation. The returned parameters
    /// cover **at least** `t`; slice them with
    /// [`RegenParams::depth_for_horizon`] + [`RegenParams::truncated`].
    pub fn regen_params(
        &self,
        fp: u64,
        solver: &RrlSolver<'_>,
        regen: &RegenOptions,
        r: usize,
        t: f64,
    ) -> Result<(Arc<RegenParams>, bool), CtmcError> {
        let key = (fp, r, regen.epsilon.to_bits(), regen.theta.to_bits());
        if let Some(entry) = self.params.lock().unwrap().get(&key) {
            if entry.t_max >= t {
                self.params_counters.record(true);
                return Ok((entry.params.clone(), true));
            }
        }
        let params = Arc::new(solver.parameters(t)?);
        self.params_counters.record(false);
        let mut pool = self.params.lock().unwrap();
        let entry = pool.entry(key).or_insert(ParamsEntry {
            t_max: t,
            params: params.clone(),
        });
        if entry.t_max < t {
            // A racing thread may have stored a smaller horizon; widen.
            *entry = ParamsEntry {
                t_max: t,
                params: params.clone(),
            };
        }
        Ok((entry.params.clone(), false))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            structure: self.structure_counters.snapshot(),
            uniformized: self.uniformized_counters.snapshot(),
            regen_params: self.params_counters.snapshot(),
        }
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.structure.lock().unwrap().clear();
        self.uniformized.lock().unwrap().clear();
        self.params.lock().unwrap().clear();
    }
}

/// Convenience wrapper for [`ArtifactCache::regen_params`] callers that
/// need a solver first: builds an [`RrlSolver`] on the cached
/// uniformization.
pub fn rrl_on_cache<'a>(
    cache: &ArtifactCache,
    fp: u64,
    ctmc: &'a Ctmc,
    r: usize,
    opts: RrlOptions,
) -> Result<(RrlSolver<'a>, bool), CtmcError> {
    let (unif, hit) = cache.uniformized(fp, ctmc, opts.regen.theta);
    Ok((RrlSolver::with_uniformized(ctmc, r, unif, opts)?, hit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, 1e-3), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn uniformized_hits_on_second_request() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let (a, hit_a) = cache.uniformized(fp, &c, 0.0);
        let (b, hit_b) = cache.uniformized(fp, &c, 0.0);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        // Different θ is a different artifact.
        let (_, hit_theta) = cache.uniformized(fp, &c, 0.1);
        assert!(!hit_theta);
        assert_eq!(cache.stats().uniformized, PoolStats { hits: 1, misses: 2 });
    }

    #[test]
    fn facts_cached_and_correct() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let f1 = cache.facts(fp, &c).unwrap();
        let f2 = cache.facts(fp, &c).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        assert!(f1.irreducible);
        assert_eq!(f1.max_rate, 1.0);
        assert_eq!(cache.stats().structure, PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn regen_params_widen_with_horizon() {
        let cache = ArtifactCache::new();
        let c = chain();
        let fp = fingerprint(&c);
        let opts = RrlOptions::default();
        let (solver, _) = rrl_on_cache(&cache, fp, &c, 0, opts).unwrap();
        let regen = opts.regen;
        let (_, hit1) = cache.regen_params(fp, &solver, &regen, 0, 10.0).unwrap();
        assert!(!hit1);
        let (_, hit2) = cache.regen_params(fp, &solver, &regen, 0, 5.0).unwrap();
        assert!(hit2, "smaller horizon must reuse the wider computation");
        let (_, hit3) = cache.regen_params(fp, &solver, &regen, 0, 100.0).unwrap();
        assert!(!hit3, "larger horizon must recompute (and widen the entry)");
        let (_, hit4) = cache.regen_params(fp, &solver, &regen, 0, 50.0).unwrap();
        assert!(hit4);
    }
}
