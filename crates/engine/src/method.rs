//! The method taxonomy: every transient solver in the workspace, with the
//! capability flags the dispatcher consults.

use std::fmt;
use std::str::FromStr;

/// One of the workspace's transient-analysis methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Standard randomization (uniformization) — the rigorous baseline,
    /// `Θ(Λt)` steps.
    Sr,
    /// Randomization with steady-state detection — irreducible chains only;
    /// step count saturates at the detection step.
    Rsd,
    /// Active-set randomization — SR with frontier-restricted products,
    /// cheap for small `t`.
    Adaptive,
    /// Dense adaptive RK4(5) Kolmogorov integrator — cross-validation oracle
    /// for small models.
    Ode,
    /// Regenerative randomization: truncated model solved by inner SR.
    Rr,
    /// Regenerative randomization with Laplace-transform inversion — the
    /// paper's contribution; construction cost saturates in `t`.
    Rrl,
}

/// All methods, in dispatch-preference order.
pub const ALL_METHODS: [Method; 6] = [
    Method::Sr,
    Method::Rsd,
    Method::Adaptive,
    Method::Ode,
    Method::Rr,
    Method::Rrl,
];

/// What a method can and cannot do — consulted by `Auto` dispatch and by
/// fixed-method validation.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// Handles chains with absorbing states (`A ≥ 1`).
    pub supports_absorbing: bool,
    /// Computes the `MRR` measure (all of ours do; kept explicit because the
    /// dispatch contract promises the check).
    pub supports_mrr: bool,
    /// The reported `error_bound` is a rigorous a-priori bound (SR, RR, RRL)
    /// rather than a practical estimate (RSD's detection heuristic, ODE's
    /// step control).
    pub rigorous_error_bound: bool,
    /// Per-solve cost stops growing with `t` once the transient saturates
    /// (RSD detection, RR/RRL construction depth).
    pub horizon_independent_cost: bool,
    /// Requires dense state handling — only safe below
    /// [`crate::EngineOptions::dense_oracle_max_states`].
    pub dense_only: bool,
}

impl Method {
    /// This method's capability flags.
    pub fn capabilities(self) -> Capabilities {
        match self {
            Method::Sr => Capabilities {
                supports_absorbing: true,
                supports_mrr: true,
                rigorous_error_bound: true,
                horizon_independent_cost: false,
                dense_only: false,
            },
            Method::Rsd => Capabilities {
                supports_absorbing: false,
                supports_mrr: true,
                rigorous_error_bound: false,
                horizon_independent_cost: true,
                dense_only: false,
            },
            Method::Adaptive => Capabilities {
                supports_absorbing: true,
                supports_mrr: true,
                rigorous_error_bound: true,
                horizon_independent_cost: false,
                dense_only: false,
            },
            Method::Ode => Capabilities {
                supports_absorbing: true,
                supports_mrr: true,
                rigorous_error_bound: false,
                horizon_independent_cost: false,
                dense_only: true,
            },
            Method::Rr => Capabilities {
                supports_absorbing: true,
                supports_mrr: true,
                rigorous_error_bound: true,
                horizon_independent_cost: false,
                dense_only: false,
            },
            Method::Rrl => Capabilities {
                supports_absorbing: true,
                supports_mrr: true,
                rigorous_error_bound: true,
                horizon_independent_cost: true,
                dense_only: false,
            },
        }
    }

    /// Lower-case method name as used in specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Sr => "sr",
            Method::Rsd => "rsd",
            Method::Adaptive => "adaptive",
            Method::Ode => "ode",
            Method::Rr => "rr",
            Method::Rrl => "rrl",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_METHODS
            .into_iter()
            .find(|m| m.name() == s.to_ascii_lowercase())
            .ok_or_else(|| {
                format!("unknown method {s:?} (expected one of sr/rsd/adaptive/ode/rr/rrl)")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for m in ALL_METHODS {
            assert_eq!(m.name().parse::<Method>().unwrap(), m);
        }
        assert!("fancy".parse::<Method>().is_err());
    }

    #[test]
    fn rsd_rejects_absorbing_chains() {
        assert!(!Method::Rsd.capabilities().supports_absorbing);
        assert!(Method::Rrl.capabilities().supports_absorbing);
    }
}
