//! JSON sweep specs and JSON reports for the `regenr` CLI.
//!
//! A spec is one object with engine-wide settings plus a model list; every
//! setting can be overridden per model. Example:
//!
//! ```json
//! {
//!   "epsilon": 1e-12,
//!   "method": "auto",
//!   "threads": 4,
//!   "kernel": "auto",
//!   "backend": "auto",
//!   "cache": { "max_entries": 64, "max_bytes": 268435456 },
//!   "horizons": [1, 10, 100, 1000, 10000, 100000],
//!   "measures": ["trr"],
//!   "models": [
//!     { "kind": "raid", "g": 20 },
//!     { "kind": "raid", "g": 20, "absorbing": true },
//!     { "kind": "two_state", "lambda": 1e-3, "mu": 1.0 },
//!     { "kind": "cyclic", "n": 5, "horizons": [0.5, 5] },
//!     { "kind": "duplex", "lambda": 0.01, "mu": 1.0, "coverage": 0.95 },
//!     { "kind": "machines", "machines": 16, "repairmen": 2,
//!       "lambda": 0.02, "mu": 1.0, "measures": ["trr", "mrr"] },
//!     { "kind": "multiproc", "n_proc": 4, "n_mem": 3, "lambda_p": 1e-4,
//!       "lambda_m": 5e-5, "coverage": 0.98, "mu": 1.0, "delta": 6.0 },
//!     { "kind": "compose", "crews": 2, "reward": "capacity",
//!       "components": [
//!         { "name": "web", "count": 4, "lambda": 0.01, "mu": 1.0,
//!           "coverage": 0.99, "required": 1 },
//!         { "name": "db", "count": 2, "lambda": 0.005, "mu": 0.5,
//!           "required": 1, "deps": [
//!             { "on": "web", "min_working": 1, "factor": 2.0 } ] } ] },
//!     { "kind": "inline", "name": "custom",
//!       "rates": [[0, 1, 0.001], [1, 0, 1.0]],
//!       "rewards": [0, 1] }
//!   ]
//! }
//! ```
//!
//! Inline models describe the rate matrix directly: `"rates"` is a list of
//! `[from, to, rate]` triples, `"rewards"` the per-state reward rates, and
//! the optional `"initial"` distribution defaults to all mass on state 0
//! (`"n"` overrides the inferred state count). This covers chains no named
//! generator produces, without touching the CLI.
//!
//! Compose models are declarative component systems (see
//! `regenr_models::compose`): each component class has a `"count"`, a
//! per-unit failure rate `"lambda"`, a per-crew repair rate `"mu"`
//! (default 0 = no repair), a `"coverage"` probability (default 1),
//! a `"required"` minimum of working units for the system to be up
//! (default 0), and optional `"deps"` rules multiplying the failure rate by
//! `"factor"` while class `"on"` has fewer than `"min_working"` working
//! units. Model-level knobs: `"crews"` (repair crews, assigned in
//! name-sorted class order; default 1), `"uncovered"` (`"absorbing"` or
//! `{"reboot": rate}`; default absorbing), `"down_absorbing"` (lump every
//! system-down transition into the absorbing state; default false),
//! `"reward"` (`"down"`, `"up"`, `"capacity"` or `{"working": "class"}`;
//! default `"down"`), and `"max_states"` (exploration cap; exceeding it is
//! a spec error, default 5,000,000). Components are sorted by name before
//! compilation, so permuted listings produce the identical chain — same
//! fingerprint, same artifact-cache key, same `--stable` report — and the
//! chain itself is built by streaming exploration
//! (`CtmcBuilder::explore_streaming`), never holding a separate state
//! table and triplet buffer at peak.
//!
//! Any model object may carry a first-class `"sensitivity"` sweep form:
//!
//! ```json
//! { "kind": "raid", "g": 20,
//!   "sensitivity": { "param": "lambda_d", "grid": [0.5, 1, 2, 4] } }
//! ```
//!
//! expands into one model instance per grid point with the named rate
//! multiplied by the factor, requested as `{name}@{param}={factor}` (e.g.
//! `raid_g20_ua@lambda_d=0.5`). Grid factors must be positive and finite:
//! scaling a rate by a positive factor never changes which transitions
//! exist, so every instance shares the base model's **structural**
//! fingerprint by construction and the engine's artifact graph re-binds
//! cached chunk plans, kernel layouts, and chain facts across the grid
//! instead of rebuilding them (see `crate::cache`). Scalable parameters
//! per kind — probabilities like `p_r` and `coverage` are deliberately not
//! scalable: `raid` → `lambda_d`, `lambda_s`, `lambda_c`, `mu_drc`,
//! `mu_drp`, `mu_crp`, `mu_sr`, `mu_g`; `two_state`/`duplex`/`machines` →
//! `lambda`, `mu`; `multiproc` → `lambda_p`, `lambda_m`, `mu`, `delta`;
//! `compose` → `lambda`, `mu` (applied to every class via the models
//! crate's scaling hook); `inline` → `rate` (scales every transition).
//! Unknown keys inside the `"sensitivity"` object are rejected by name,
//! like everywhere else in a spec.
//!
//! Within a model object, unknown keys are rejected by name just like
//! top-level keys: `{"kind": "duplex", "coverge": 0.9}` names the typo and
//! lists the keys the kind accepts.
//!
//! `"kernel"` forces the SpMV kernel every solver's stepper runs (`auto`,
//! `generic`, `shortrow`, `diagsplit`, `sliced`; default `auto` analyzes
//! each matrix once and picks). `"backend"` forces the execution backend
//! those kernels run on (`auto`, `scalar`, `sse2`, `avx2`; default `auto`
//! probes the CPU once — forced backends are clamped to what the hardware
//! and the build's `simd` feature support, so a spec never fails on a
//! machine without AVX2, it just runs narrower). All kernels and backends
//! are bitwise identical to the serial product, so forced-kernel and
//! forced-backend `--stable` reports diff byte-for-byte — the CI
//! determinism jobs rely on that.
//!
//! Two further execution knobs tune the blocked-stepping layer.
//! `"rhs_block"` (`auto`, `1`, `2`, `4`, `8`; string or bare integer) sets
//! how many sweep cells sharing a generator and tolerance ride one
//! multi-vector SpMM — `auto` groups four at a time whenever cells
//! qualify, `1` disables grouping. `"index_width"` (`auto`, `16`, `32`,
//! `64`) sets the column-index width of the compact kernel layouts —
//! `auto` packs `u16` indices when the matrix is narrow enough, and a
//! forced narrow width widens transparently when it is not. Like kernels
//! and backends, every combination is bitwise identical to the serial
//! product, so forced `--stable` reports diff byte-for-byte.
//!
//! Unknown top-level keys are rejected by name (a typo like `"kernal"`
//! must be an error, not a silently ignored knob). Two keys exist for the
//! `regenr serve` subsystem and are ignored by the offline CLI:
//! `"deadline_ms"` (per-request deadline; the server cancels the sweep
//! cleanly when it expires) and `"debug_stall_ms"` (the server sleeps
//! before computing — a load-testing knob the `repro serve` generator uses
//! to widen the coalescing window deterministically).

use crate::cache::CacheConfig;
use crate::engine::{
    EngineOptions, MethodChoice, SolveReport, SolveRequest, SweepFailure, SweepReport,
};
use crate::json::Json;
use crate::method::Method;
use regenr_ctmc::{Ctmc, CtmcBuilder};
use regenr_models::{
    compose::{ComponentClass, ComposeModel, RewardKind, UncoveredPolicy},
    machines::MachinesModel,
    multiproc::{MultiprocModel, MultiprocParams},
    RaidModel, RaidParams,
};
use regenr_transient::MeasureKind;
use std::sync::Arc;

/// A parsed sweep spec: engine options plus the request grid.
pub struct SweepSpec {
    /// Engine-wide options from the spec.
    pub options: EngineOptions,
    /// Artifact-cache capacity limits (`"cache": {"max_entries", "max_bytes"}`;
    /// unbounded when absent).
    pub cache: CacheConfig,
    /// One request per (model, measure) pair.
    pub requests: Vec<SolveRequest>,
    /// Per-request deadline in milliseconds (`"deadline_ms"`). Honored by
    /// `regenr serve`: the sweep is cancelled cleanly once it expires —
    /// cells already streamed stay valid and the final record reports
    /// `"status":"deadline"`. The offline CLI ignores it.
    pub deadline_ms: Option<u64>,
    /// Load-testing knob (`"debug_stall_ms"`): `regenr serve` sleeps this
    /// long after admitting the sweep and before computing, widening the
    /// in-flight window so coalescing/admission behavior can be exercised
    /// deterministically (the `repro serve` load generator and the serve
    /// tests rely on it). The offline CLI ignores it.
    pub debug_stall_ms: Option<u64>,
}

/// Every key a spec may carry at the top level. `SweepSpec::from_json`
/// rejects anything else by name, so a typo like `"kernal"` is a parse
/// error (HTTP 400 through the server) instead of a silently-ignored knob
/// running a wrong-config sweep.
const KNOWN_SPEC_KEYS: &[&str] = &[
    "epsilon",
    "method",
    "threads",
    "kernel",
    "backend",
    "rhs_block",
    "index_width",
    "cache",
    "horizons",
    "measures",
    "models",
    "small_lambda_t",
    "tiny_lambda_t",
    "adaptive_min_states",
    "theta",
    "deadline_ms",
    "debug_stall_ms",
    "max_retries",
];

fn measure_name(m: MeasureKind) -> &'static str {
    match m {
        MeasureKind::Trr => "trr",
        MeasureKind::Mrr => "mrr",
    }
}

fn parse_measure(s: &str) -> Result<MeasureKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "trr" => Ok(MeasureKind::Trr),
        "mrr" => Ok(MeasureKind::Mrr),
        other => Err(format!("unknown measure {other:?} (expected trr or mrr)")),
    }
}

fn parse_method_choice(s: &str) -> Result<MethodChoice, String> {
    if s.eq_ignore_ascii_case("auto") {
        Ok(MethodChoice::Auto)
    } else {
        s.parse::<Method>().map(MethodChoice::Fixed)
    }
}

fn get_f64(obj: &Json, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

/// Reads a knob that accepts either a string token or a bare integer —
/// `"rhs_block": 4` and `"rhs_block": "4"` both read naturally (the token
/// still goes through the knob's own `parse`, which names the valid set).
fn get_knob_token(obj: &Json, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(Json::Num(x)) if x.fract() == 0.0 && *x >= 0.0 && *x <= u32::MAX as f64 => {
            Ok(Some(format!("{}", *x as u64)))
        }
        Some(_) => Err(format!(
            "field {key:?} must be a string token or a non-negative integer"
        )),
    }
}

fn get_u32(obj: &Json, key: &str) -> Result<Option<u32>, String> {
    match get_f64(obj, key)? {
        None => Ok(None),
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u32::MAX as f64 => Ok(Some(x as u32)),
        Some(x) => Err(format!(
            "field {key:?} must be a non-negative integer, got {x}"
        )),
    }
}

/// Reads an optional non-negative integer that may exceed `u32` (durations
/// in milliseconds).
fn get_ms(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match get_f64(obj, key)? {
        None => Ok(None),
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(Some(x as u64)),
        Some(x) => Err(format!(
            "field {key:?} must be a non-negative integer (milliseconds), got {x}"
        )),
    }
}

fn get_bool(obj: &Json, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a boolean")),
    }
}

/// `ε` keys artifact-cache entries and divides error budgets, so a
/// non-finite or non-positive value is a spec error, not something to let
/// degenerate into NaN-keyed cache entries or panics deep in a solver.
fn get_epsilon(obj: &Json) -> Result<Option<f64>, String> {
    match get_f64(obj, "epsilon")? {
        None => Ok(None),
        Some(x) if x.is_finite() && x > 0.0 => Ok(Some(x)),
        Some(x) => Err(format!(
            "field \"epsilon\" must be a positive finite number, got {x}"
        )),
    }
}

fn get_cache_config(doc: &Json) -> Result<CacheConfig, String> {
    let obj = match doc.get("cache") {
        None | Some(Json::Null) => return Ok(CacheConfig::unbounded()),
        Some(v @ Json::Obj(_)) => v,
        // A mistyped "cache" (e.g. a bare number) must not silently mean
        // "unbounded" — the caller thinks they capped the cache.
        Some(v) => {
            return Err(format!(
                "field \"cache\" must be an object like \
                 {{\"max_entries\": 64, \"max_bytes\": 268435456}}, got {v}"
            ))
        }
    };
    // 0 is a valid cap: retain nothing, every build is cold. The CI
    // determinism check relies on it to compare delta-warm sweeps against
    // genuinely cold ones through the CLI alone.
    let cap = |key: &str| -> Result<Option<usize>, String> {
        match get_f64(obj, key)? {
            None => Ok(None),
            Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(Some(x as usize)),
            Some(x) => Err(format!(
                "field \"cache.{key}\" must be a non-negative integer, got {x}"
            )),
        }
    };
    Ok(CacheConfig {
        max_entries: cap("max_entries")?,
        max_bytes: cap("max_bytes")?,
    })
}

fn get_horizons(obj: &Json) -> Result<Option<Vec<f64>>, String> {
    match obj.get("horizons") {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| "field \"horizons\" must be an array".to_string())?;
            items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|t| *t >= 0.0)
                        .ok_or_else(|| "horizons must be non-negative numbers".to_string())
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some)
        }
    }
}

fn get_measures(obj: &Json) -> Result<Option<Vec<MeasureKind>>, String> {
    match obj.get("measures") {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| "field \"measures\" must be an array".to_string())?;
            items
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or_else(|| "measures must be strings".to_string())
                        .and_then(parse_measure)
                })
                .collect::<Result<Vec<MeasureKind>, String>>()
                .map(Some)
        }
    }
}

/// Reads an optional array of numbers (e.g. `"rewards"`, `"initial"`).
fn get_f64_array(obj: &Json, key: &str) -> Result<Option<Vec<f64>>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| format!("field {key:?} must be an array of numbers"))?;
            items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|f| f.is_finite())
                        .ok_or_else(|| format!("field {key:?} must contain finite numbers"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some)
        }
    }
}

/// Keys every model object may carry regardless of kind (the per-model
/// overrides read by `SweepSpec::from_json`).
const COMMON_MODEL_KEYS: &[&str] = &[
    "kind",
    "name",
    "horizons",
    "epsilon",
    "method",
    "measures",
    "regen_state",
    "sensitivity",
];

/// Parses a model's `"sensitivity"` sweep form —
/// `{"param": "lambda_d", "grid": [0.5, 1, 2]}` — into the parameter name
/// and the validated factor grid. Factors are *multipliers on the base
/// rate*; they must be positive and finite so scaling never changes which
/// transitions exist (that is what guarantees every grid point shares the
/// base model's structural fingerprint).
fn parse_sensitivity(obj: &Json) -> Result<Option<(String, Vec<f64>)>, String> {
    let v = match obj.get("sensitivity") {
        None | Some(Json::Null) => return Ok(None),
        Some(v) => v,
    };
    reject_unknown_keys(v, "\"sensitivity\"", &[&["param", "grid"]])?;
    let param = v.get("param").and_then(Json::as_str).ok_or_else(|| {
        "\"sensitivity\" needs a string \"param\" (the rate to scale)".to_string()
    })?;
    let grid = v
        .get("grid")
        .and_then(Json::as_arr)
        .ok_or_else(|| "\"sensitivity\" needs a \"grid\" array of scale factors".to_string())?;
    if grid.is_empty() {
        return Err("\"sensitivity\" grid must not be empty".to_string());
    }
    let factors = grid
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|f| f.is_finite() && *f > 0.0)
                .ok_or_else(|| {
                    format!(
                        "\"sensitivity\" grid factors must be positive finite numbers \
                     (multipliers on the base rate), got {x}"
                    )
                })
        })
        .collect::<Result<Vec<f64>, String>>()?;
    Ok(Some((param.to_string(), factors)))
}

/// Applies a sensitivity scale factor to the named rate of a model kind,
/// erroring (by name, listing the scalable rates) when the parameter is
/// not one of them — a typo'd param must never produce a grid of identical
/// models. Probabilities (`p_r`, `coverage`) are deliberately *not*
/// scalable: scaling them would change branching structure, not rates.
fn apply_rate_scale(
    kind: &str,
    scale: Option<(&str, f64)>,
    rates: &mut [(&str, &mut f64)],
) -> Result<(), String> {
    let Some((param, factor)) = scale else {
        return Ok(());
    };
    for (name, v) in rates.iter_mut() {
        if *name == param {
            **v *= factor;
            return Ok(());
        }
    }
    if rates.is_empty() {
        return Err(format!("{kind} models have no scalable rates"));
    }
    Err(format!(
        "{kind} models have no scalable rate {param:?} (expected one of: {})",
        rates.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
    ))
}

/// Rejects unknown keys in `obj` by name, listing the keys `what` accepts.
/// Mirrors the top-level typo guard: `{"kind": "duplex", "coverge": 0.9}`
/// must be an error naming `"coverge"`, never a silently ignored knob.
fn reject_unknown_keys(obj: &Json, what: &str, known: &[&[&str]]) -> Result<(), String> {
    let Json::Obj(members) = obj else {
        return Err(format!("{what} must be a JSON object"));
    };
    let unknown: Vec<&str> = members
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !known.iter().any(|set| set.contains(k)))
        .collect();
    if unknown.is_empty() {
        return Ok(());
    }
    let mut names: Vec<&str> = known.iter().flat_map(|set| set.iter().copied()).collect();
    names.sort_unstable();
    Err(format!(
        "unknown key(s) in {what}: {} (known keys: {})",
        unknown
            .iter()
            .map(|k| format!("{k:?}"))
            .collect::<Vec<_>>()
            .join(", "),
        names.join(", ")
    ))
}

/// Builds a `"kind": "multiproc"` model (the degradable multiprocessor of
/// `regenr_models::multiproc`).
fn build_multiproc_model(obj: &Json, scale: Option<(&str, f64)>) -> Result<(String, Ctmc), String> {
    let need_f64 =
        |key: &str| get_f64(obj, key)?.ok_or_else(|| format!("multiproc model needs {key:?}"));
    let need_u32 =
        |key: &str| get_u32(obj, key)?.ok_or_else(|| format!("multiproc model needs {key:?}"));
    let absorbing = get_bool(obj, "absorbing")?.unwrap_or(false);
    let delta = match get_f64(obj, "delta")? {
        Some(d) if d.is_finite() && d > 0.0 => d,
        Some(d) => return Err(format!("multiproc \"delta\" must be positive, got {d}")),
        // The reboot rate is never read in the absorbing-crash variant.
        None if absorbing => 1.0,
        None => {
            return Err(
                "multiproc model needs \"delta\" (reboot rate) unless \"absorbing\" is true"
                    .to_string(),
            )
        }
    };
    let mut params = MultiprocParams {
        n_proc: need_u32("n_proc")?,
        n_mem: need_u32("n_mem")?,
        lambda_p: need_f64("lambda_p")?,
        lambda_m: need_f64("lambda_m")?,
        coverage: need_f64("coverage")?,
        mu: need_f64("mu")?,
        delta,
        absorbing_crash: absorbing,
    };
    apply_rate_scale(
        "multiproc",
        scale,
        &mut [
            ("lambda_p", &mut params.lambda_p),
            ("lambda_m", &mut params.lambda_m),
            ("mu", &mut params.mu),
            ("delta", &mut params.delta),
        ],
    )?;
    if !(0.0..=1.0).contains(&params.coverage) {
        return Err(format!(
            "multiproc \"coverage\" must be in [0, 1], got {}",
            params.coverage
        ));
    }
    for (key, v) in [
        ("lambda_p", params.lambda_p),
        ("lambda_m", params.lambda_m),
        ("mu", params.mu),
    ] {
        if !(v.is_finite() && v >= 0.0) {
            return Err(format!(
                "multiproc {key:?} must be a non-negative finite number, got {v}"
            ));
        }
    }
    let built = MultiprocModel::new(params)
        .build()
        .map_err(|e| format!("multiproc model failed to build: {e}"))?;
    Ok((
        format!(
            "multiproc_{}x{}{}",
            params.n_proc,
            params.n_mem,
            if absorbing { "_ur" } else { "" }
        ),
        built.ctmc,
    ))
}

/// Keys a compose component object accepts.
const COMPONENT_KEYS: &[&str] = &[
    "name", "count", "lambda", "mu", "coverage", "required", "deps",
];

/// Parses the component classes of a compose model, **sorted by name** so
/// permuted listings compile to the identical chain (same fingerprint,
/// same cache key, byte-identical stable report).
fn parse_components(obj: &Json) -> Result<Vec<ComponentClass>, String> {
    let comps = obj
        .get("components")
        .and_then(Json::as_arr)
        .ok_or_else(|| "compose model needs a \"components\" array".to_string())?;
    let mut classes = Vec::with_capacity(comps.len());
    for (i, comp) in comps.iter().enumerate() {
        let what = format!("components[{i}]");
        reject_unknown_keys(comp, &what, &[COMPONENT_KEYS])?;
        let name = comp
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what} needs a string \"name\""))?;
        let count = get_u32(comp, "count")?.ok_or_else(|| format!("{what} needs \"count\""))?;
        let lambda = get_f64(comp, "lambda")?.ok_or_else(|| format!("{what} needs \"lambda\""))?;
        let mu = get_f64(comp, "mu")?.unwrap_or(0.0);
        let mut class = ComponentClass::new(name, count, lambda, mu);
        if let Some(c) = get_f64(comp, "coverage")? {
            class = class.coverage(c);
        }
        if let Some(r) = get_u32(comp, "required")? {
            class = class.required(r);
        }
        match comp.get("deps") {
            None | Some(Json::Null) => {}
            Some(v) => {
                let deps = v
                    .as_arr()
                    .ok_or_else(|| format!("{what}.deps must be an array"))?;
                for (j, dep) in deps.iter().enumerate() {
                    let dwhat = format!("{what}.deps[{j}]");
                    reject_unknown_keys(dep, &dwhat, &[&["on", "min_working", "factor"]])?;
                    let on = dep
                        .get("on")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("{dwhat} needs a string \"on\""))?;
                    let factor = get_f64(dep, "factor")?
                        .ok_or_else(|| format!("{dwhat} needs \"factor\""))?;
                    // Default threshold 1: the rule fires while the watched
                    // class has nothing working.
                    let min_working = get_u32(dep, "min_working")?.unwrap_or(1);
                    class = class.dep(on, min_working, factor);
                }
            }
        }
        classes.push(class);
    }
    classes.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(classes)
}

/// Builds a `"kind": "compose"` model via streaming exploration (see
/// `regenr_models::compose` and the module docs for the grammar).
fn build_compose_model(obj: &Json, scale: Option<(&str, f64)>) -> Result<(String, Ctmc), String> {
    let classes = parse_components(obj)?;
    let crews = get_u32(obj, "crews")?.unwrap_or(1);
    let uncovered = match obj.get("uncovered") {
        None | Some(Json::Null) => UncoveredPolicy::Absorbing,
        Some(Json::Str(s)) if s == "absorbing" => UncoveredPolicy::Absorbing,
        Some(v @ Json::Obj(_)) => {
            reject_unknown_keys(v, "\"uncovered\"", &[&["reboot"]])?;
            let delta = get_f64(v, "reboot")?
                .ok_or_else(|| "\"uncovered\" object needs a \"reboot\" rate".to_string())?;
            UncoveredPolicy::Reboot(delta)
        }
        Some(v) => {
            return Err(format!(
                "field \"uncovered\" must be \"absorbing\" or {{\"reboot\": rate}}, got {v}"
            ))
        }
    };
    let down_absorbing = get_bool(obj, "down_absorbing")?.unwrap_or(false);
    let reward = match obj.get("reward") {
        None | Some(Json::Null) => RewardKind::Down,
        Some(Json::Str(s)) => match s.as_str() {
            "down" => RewardKind::Down,
            "up" => RewardKind::Up,
            "capacity" => RewardKind::Capacity,
            other => {
                return Err(format!(
                    "unknown reward {other:?} (expected down/up/capacity or \
                     {{\"working\": \"class\"}})"
                ))
            }
        },
        Some(v @ Json::Obj(_)) => {
            reject_unknown_keys(v, "\"reward\"", &[&["working"]])?;
            let class = v
                .get("working")
                .and_then(Json::as_str)
                .ok_or_else(|| "\"reward\" object needs a \"working\" class name".to_string())?;
            RewardKind::Working(class.to_string())
        }
        Some(v) => {
            return Err(format!(
                "field \"reward\" must be a string or {{\"working\": \"class\"}}, got {v}"
            ))
        }
    };
    let model = ComposeModel::new(classes, crews, uncovered, down_absorbing, reward)
        .map_err(|e| format!("compose model: {e}"))?;
    // The models-crate scaling hook: every class's lambda or mu scaled
    // in one shot, re-validated, state space unchanged by construction.
    let model = match scale {
        Some((param, factor)) => model
            .with_scaled_rate(param, factor)
            .map_err(|e| format!("compose model: {e}"))?,
        None => model,
    };
    let max_states = match get_u32(obj, "max_states")? {
        Some(0) => return Err("compose \"max_states\" must be at least 1".to_string()),
        Some(n) => n as usize,
        None => CtmcBuilder::default().max_states,
    };
    let ctmc = model
        .build_streaming(max_states)
        .map_err(|e| format!("compose model failed to build: {e}"))?;
    Ok((model.default_name(), ctmc))
}

/// Builds an inline model from a `"rates": [[from, to, rate], …]` triple
/// list (see the module docs for the schema). Inline models have no named
/// rate parameters, so their one scalable sensitivity param is `"rate"`:
/// every transition rate is multiplied by the factor.
fn build_inline_model(obj: &Json, scale: Option<(&str, f64)>) -> Result<Ctmc, String> {
    let rate_factor = match scale {
        None => 1.0,
        Some(("rate", factor)) => factor,
        Some((param, _)) => {
            return Err(format!(
                "inline models have no scalable rate {param:?} \
                 (expected \"rate\", which scales every transition)"
            ))
        }
    };
    let triples = obj.get("rates").and_then(Json::as_arr).ok_or_else(|| {
        "inline model needs a \"rates\" array of [from, to, rate] triples".to_string()
    })?;
    let mut rates: Vec<(usize, usize, f64)> = Vec::with_capacity(triples.len());
    let mut max_state = 0usize;
    for (i, item) in triples.iter().enumerate() {
        let triple = item
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| format!("rates[{i}] must be a [from, to, rate] triple"))?;
        let state = |j: usize, what: &str| -> Result<usize, String> {
            triple[j]
                .as_usize()
                .ok_or_else(|| format!("rates[{i}]: {what} must be a non-negative integer"))
        };
        let (from, to) = (state(0, "from")?, state(1, "to")?);
        let rate = triple[2]
            .as_f64()
            .filter(|r| r.is_finite() && *r >= 0.0)
            .ok_or_else(|| format!("rates[{i}]: rate must be a non-negative finite number"))?;
        max_state = max_state.max(from).max(to);
        rates.push((from, to, rate * rate_factor));
    }
    let rewards = get_f64_array(obj, "rewards")?.ok_or_else(|| {
        "inline model needs a \"rewards\" array (per-state reward rates)".to_string()
    })?;
    let initial = get_f64_array(obj, "initial")?;
    let inferred = (max_state + 1)
        .max(rewards.len())
        .max(initial.as_ref().map_or(0, Vec::len));
    let n = match get_u32(obj, "n")? {
        Some(n) if (n as usize) < inferred => {
            return Err(format!(
                "inline model \"n\" = {n} is below the {inferred} states its arrays imply"
            ))
        }
        Some(n) => n as usize,
        None => inferred,
    };
    if rewards.len() != n {
        return Err(format!(
            "inline model has {} rewards for {n} states",
            rewards.len()
        ));
    }
    let initial = match initial {
        Some(init) => {
            if init.len() != n {
                return Err(format!(
                    "inline model has {} initial entries for {n} states",
                    init.len()
                ));
            }
            init
        }
        None => {
            // Default: all mass on state 0 (the paper's pristine state).
            let mut init = vec![0.0; n];
            init[0] = 1.0;
            init
        }
    };
    Ctmc::from_rates(n, &rates, initial, rewards)
        .map_err(|e| format!("inline model failed to validate: {e}"))
}

/// Builds the chain described by one model object; returns (name, chain).
/// `scale` is a `(param, factor)` pair from a `"sensitivity"` expansion:
/// the named rate is multiplied by the factor before the chain is built,
/// so every grid point is a pure rate variant sharing the base model's
/// structural fingerprint.
fn build_model(obj: &Json, scale: Option<(&str, f64)>) -> Result<(String, Ctmc), String> {
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "model needs a string \"kind\"".to_string())?;
    // Every kind rejects keys it does not read, naming the typo and the
    // keys it accepts (the per-model analog of the top-level guard).
    let kind_keys: &[&str] = match kind {
        "raid" => &["g", "c_h", "d_h", "p_r", "absorbing"],
        "two_state" => &["lambda", "mu", "absorbing"],
        "cyclic" => &["n"],
        "duplex" => &["lambda", "mu", "coverage"],
        "machines" => &["machines", "repairmen", "lambda", "mu"],
        "multiproc" => &[
            "n_proc",
            "n_mem",
            "lambda_p",
            "lambda_m",
            "coverage",
            "mu",
            "delta",
            "absorbing",
        ],
        "compose" => &[
            "components",
            "crews",
            "uncovered",
            "down_absorbing",
            "reward",
            "max_states",
        ],
        "inline" => &["rates", "rewards", "initial", "n"],
        _ => &[],
    };
    if !kind_keys.is_empty() {
        reject_unknown_keys(
            obj,
            &format!("{kind} model"),
            &[COMMON_MODEL_KEYS, kind_keys],
        )?;
    }
    let (default_name, ctmc) = match kind {
        "raid" => {
            let g = get_u32(obj, "g")?.ok_or_else(|| "raid model needs \"g\"".to_string())?;
            let mut params = RaidParams::paper(g);
            if let Some(c_h) = get_u32(obj, "c_h")? {
                params.c_h = c_h;
            }
            if let Some(d_h) = get_u32(obj, "d_h")? {
                params.d_h = d_h;
            }
            if let Some(p_r) = get_f64(obj, "p_r")? {
                params.p_r = p_r;
            }
            apply_rate_scale(
                "raid",
                scale,
                &mut [
                    ("lambda_d", &mut params.lambda_d),
                    ("lambda_s", &mut params.lambda_s),
                    ("lambda_c", &mut params.lambda_c),
                    ("mu_drc", &mut params.mu_drc),
                    ("mu_drp", &mut params.mu_drp),
                    ("mu_crp", &mut params.mu_crp),
                    ("mu_sr", &mut params.mu_sr),
                    ("mu_g", &mut params.mu_g),
                ],
            )?;
            let absorbing = get_bool(obj, "absorbing")?.unwrap_or(false);
            if absorbing {
                params = params.with_absorbing_failure();
            }
            let built = RaidModel::new(params)
                .build()
                .map_err(|e| format!("raid model failed to build: {e}"))?;
            (
                format!("raid_g{g}_{}", if absorbing { "ur" } else { "ua" }),
                built.ctmc,
            )
        }
        "two_state" => {
            let mut lambda =
                get_f64(obj, "lambda")?.ok_or_else(|| "two_state needs \"lambda\"".to_string())?;
            let absorbing = get_bool(obj, "absorbing")?.unwrap_or(false);
            if absorbing {
                // The non-repairable variant has no repair rate to scale.
                apply_rate_scale(
                    "two_state (absorbing)",
                    scale,
                    &mut [("lambda", &mut lambda)],
                )?;
                (
                    "two_state_nonrepairable".to_string(),
                    regenr_models::two_state::non_repairable_unit(lambda),
                )
            } else {
                let mut mu =
                    get_f64(obj, "mu")?.ok_or_else(|| "two_state needs \"mu\"".to_string())?;
                apply_rate_scale(
                    "two_state",
                    scale,
                    &mut [("lambda", &mut lambda), ("mu", &mut mu)],
                )?;
                (
                    "two_state".to_string(),
                    regenr_models::two_state::repairable_unit(lambda, mu),
                )
            }
        }
        "cyclic" => {
            let n = get_u32(obj, "n")?.ok_or_else(|| "cyclic needs \"n\"".to_string())?;
            apply_rate_scale("cyclic", scale, &mut [])?;
            (
                format!("cyclic_{n}"),
                regenr_models::cyclic::ring(n as usize),
            )
        }
        "duplex" => {
            let mut lambda =
                get_f64(obj, "lambda")?.ok_or_else(|| "duplex needs \"lambda\"".to_string())?;
            let mut mu = get_f64(obj, "mu")?.ok_or_else(|| "duplex needs \"mu\"".to_string())?;
            apply_rate_scale(
                "duplex",
                scale,
                &mut [("lambda", &mut lambda), ("mu", &mut mu)],
            )?;
            let coverage =
                get_f64(obj, "coverage")?.ok_or_else(|| "duplex needs \"coverage\"".to_string())?;
            if !(0.0..=1.0).contains(&coverage) {
                return Err(format!(
                    "duplex \"coverage\" must be in [0, 1], got {coverage}"
                ));
            }
            (
                "duplex".to_string(),
                regenr_models::redundant::duplex_with_coverage(lambda, mu, coverage),
            )
        }
        "machines" => {
            let mut model = MachinesModel {
                machines: get_u32(obj, "machines")?
                    .ok_or_else(|| "machines model needs \"machines\"".to_string())?,
                repairmen: get_u32(obj, "repairmen")?
                    .ok_or_else(|| "machines model needs \"repairmen\"".to_string())?,
                lambda: get_f64(obj, "lambda")?
                    .ok_or_else(|| "machines model needs \"lambda\"".to_string())?,
                mu: get_f64(obj, "mu")?.ok_or_else(|| "machines model needs \"mu\"".to_string())?,
            };
            apply_rate_scale(
                "machines",
                scale,
                &mut [("lambda", &mut model.lambda), ("mu", &mut model.mu)],
            )?;
            let built = model
                .build()
                .map_err(|e| format!("machines model failed to build: {e}"))?;
            (
                format!("machines_{}x{}", model.machines, model.repairmen),
                built.ctmc,
            )
        }
        "multiproc" => build_multiproc_model(obj, scale)?,
        "compose" => build_compose_model(obj, scale)?,
        "inline" => ("inline".to_string(), build_inline_model(obj, scale)?),
        other => {
            return Err(format!(
                "unknown model kind {other:?} \
                 (expected raid/two_state/cyclic/duplex/machines/multiproc/compose/inline)"
            ))
        }
    };
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or(default_name);
    Ok((name, ctmc))
}

impl SweepSpec {
    /// Parses a spec document.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document.
    pub fn from_json(doc: &Json) -> Result<SweepSpec, String> {
        let Json::Obj(members) = doc else {
            return Err("spec must be a JSON object".to_string());
        };
        // Reject unknown top-level keys by name, before anything else: a
        // typo must produce a clear error, never a wrong-config sweep.
        let unknown: Vec<&str> = members
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !KNOWN_SPEC_KEYS.contains(k))
            .collect();
        if !unknown.is_empty() {
            return Err(format!(
                "unknown spec field(s): {} (known top-level fields: {})",
                unknown
                    .iter()
                    .map(|k| format!("{k:?}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                KNOWN_SPEC_KEYS.join(", ")
            ));
        }
        let mut options = EngineOptions::default();
        if let Some(x) = get_f64(doc, "small_lambda_t")? {
            options.small_lambda_t = x;
        }
        if let Some(x) = get_f64(doc, "tiny_lambda_t")? {
            options.tiny_lambda_t = x;
        }
        if let Some(x) = get_u32(doc, "adaptive_min_states")? {
            options.adaptive_min_states = x as usize;
        }
        if let Some(x) = get_u32(doc, "threads")? {
            options.threads = x as usize;
        }
        if let Some(s) = doc.get("kernel") {
            let s = s
                .as_str()
                .ok_or_else(|| "field \"kernel\" must be a string".to_string())?;
            options.parallel.kernel = regenr_sparse::KernelChoice::parse(s)?;
        }
        if let Some(s) = doc.get("backend") {
            let s = s
                .as_str()
                .ok_or_else(|| "field \"backend\" must be a string".to_string())?;
            options.parallel.backend = regenr_sparse::BackendChoice::parse(s)?;
        }
        if let Some(s) = get_knob_token(doc, "rhs_block")? {
            options.parallel.rhs_block = regenr_sparse::RhsBlockChoice::parse(&s)?;
        }
        if let Some(s) = get_knob_token(doc, "index_width")? {
            options.parallel.index_width = regenr_sparse::IndexWidthChoice::parse(&s)?;
        }
        if let Some(x) = get_f64(doc, "theta")? {
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "field \"theta\" must be a non-negative finite number, got {x}"
                ));
            }
            options.theta = x;
        }

        let cache = get_cache_config(doc)?;
        let default_epsilon = get_epsilon(doc)?.unwrap_or(1e-12);
        let default_method = match doc.get("method").and_then(Json::as_str) {
            Some(s) => parse_method_choice(s)?,
            None => MethodChoice::Auto,
        };
        let default_horizons = get_horizons(doc)?;
        let default_measures = get_measures(doc)?.unwrap_or(vec![MeasureKind::Trr]);
        let max_retries = get_u32(doc, "max_retries")?.unwrap_or(0) as usize;

        let models = doc
            .get("models")
            .and_then(Json::as_arr)
            .ok_or_else(|| "spec needs a \"models\" array".to_string())?;
        if models.is_empty() {
            return Err("spec has an empty \"models\" array".to_string());
        }

        let mut requests = Vec::new();
        for model_obj in models {
            // The "sensitivity" sweep form expands one model object into a
            // rate-scaled instance per grid point. Every instance shares
            // the base model's *structural* fingerprint by construction
            // (only rate values change, never which transitions exist), so
            // the engine's artifact graph re-binds cached plans, layouts,
            // and chain facts across the whole grid.
            let points: Vec<Option<(String, f64)>> = match parse_sensitivity(model_obj)? {
                None => vec![None],
                Some((param, grid)) => grid
                    .into_iter()
                    .map(|factor| Some((param.clone(), factor)))
                    .collect(),
            };
            for point in points {
                let scale = point.as_ref().map(|(p, f)| (p.as_str(), *f));
                let (base_name, ctmc) = build_model(model_obj, scale)?;
                let name = match &point {
                    // Grid points are distinguishable by name:
                    // `raid_g20_ua@lambda_d=0.5`.
                    Some((param, factor)) => format!("{base_name}@{param}={factor}"),
                    None => base_name,
                };
                let model = Arc::new(ctmc);
                // Fingerprint once here, not once per solve: a sensitivity
                // grid hands the same engine dozens of rate variants, and
                // hashing each 100k-entry matrix inside the timed sweep
                // would dilute the delta-rebind win the grid exists to
                // demonstrate.
                let fps = Some(crate::fingerprint::model_fps(&model));
                let horizons = get_horizons(model_obj)?
                    .or_else(|| default_horizons.clone())
                    .ok_or_else(|| {
                        format!("model {name:?} has no horizons (none at the top level either)")
                    })?;
                let epsilon = get_epsilon(model_obj)?.unwrap_or(default_epsilon);
                let method = match model_obj.get("method").and_then(Json::as_str) {
                    Some(s) => parse_method_choice(s)?,
                    None => default_method,
                };
                let regen_state = match model_obj.get("regen_state") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_usize().ok_or_else(|| {
                        format!("field \"regen_state\" must be a non-negative integer, got {v}")
                    })?),
                };
                let measures = get_measures(model_obj)?.unwrap_or(default_measures.clone());
                for measure in measures {
                    requests.push(SolveRequest {
                        model: model.clone(),
                        name: name.clone(),
                        measure,
                        horizons: horizons.clone(),
                        epsilon,
                        method,
                        regen_state,
                        fps,
                        max_retries,
                    });
                }
            }
        }
        Ok(SweepSpec {
            options,
            cache,
            requests,
            deadline_ms: get_ms(doc, "deadline_ms")?,
            debug_stall_ms: get_ms(doc, "debug_stall_ms")?,
        })
    }
}

/// Serializes a sweep report (the CLI's output document).
pub fn report_to_json(report: &SweepReport) -> Json {
    report_to_json_opts(report, false)
}

/// Like [`report_to_json`] but omitting every execution-dependent field —
/// wall times, cache counters (hit/miss splits vary with scheduling under
/// contention), pool/workspace gauges — so reports from runs that differ
/// only in thread counts are **byte-for-byte identical**. This is what the
/// CI determinism job diffs (`regenr sweep … --stable`).
pub fn stable_report_to_json(report: &SweepReport) -> Json {
    report_to_json_opts(report, true)
}

/// Serializes one solved cell. The serve layer streams exactly these
/// objects (plus a `"record"` tag) as NDJSON, so a streamed cell and the
/// matching entry of an offline report can never drift apart.
pub fn cell_to_json(r: &SolveReport, stable: bool) -> Json {
    let mut fields = vec![
        ("model".into(), Json::Str(r.model.clone())),
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", r.fingerprint)),
        ),
        ("measure".into(), Json::Str(measure_name(r.measure).into())),
        ("t".into(), Json::Num(r.t)),
        ("method".into(), Json::Str(r.method.name().into())),
        ("reason".into(), Json::Str(r.reason.as_str().into())),
        ("value".into(), Json::Num(r.value)),
        ("steps".into(), Json::Num(r.steps as f64)),
        ("error_bound".into(), Json::Num(r.error_bound)),
        ("abscissae".into(), Json::Num(r.abscissae as f64)),
        ("converged".into(), Json::Bool(r.converged)),
        ("lambda_t".into(), Json::Num(r.lambda_t)),
    ];
    if !stable {
        // The kernel and its backend are execution-tuning, not a
        // result: forced-kernel/forced-backend --stable reports
        // must stay byte-for-byte identical (the backend is even
        // machine-dependent under Auto).
        fields.push(("kernel".into(), Json::Str(r.kernel.into())));
        fields.push(("backend".into(), Json::Str(r.backend.into())));
        fields.push(("unif_cache_hit".into(), Json::Bool(r.unif_cache_hit)));
        fields.push(("params_cache_hit".into(), Json::Bool(r.params_cache_hit)));
        fields.push(("wall_seconds".into(), Json::Num(r.wall.as_secs_f64())));
        // Supervision annotations are execution facts too: a recovered
        // cell's *value* is bitwise-identical to running the fallback
        // method directly, so --stable output stays byte-for-byte stable
        // whether or not faults were injected.
        fields.push(("attempts".into(), Json::Num(r.attempts as f64)));
        if let Some(via) = r.recovered_via {
            fields.push(("recovered_via".into(), Json::Str(via.name().into())));
        }
    }
    Json::Obj(fields)
}

/// Serializes one sweep failure (shared by reports and the serve summary).
pub fn failure_to_json(f: &SweepFailure) -> Json {
    Json::Obj(vec![
        ("model".into(), Json::Str(f.model.clone())),
        ("measure".into(), Json::Str(measure_name(f.measure).into())),
        ("error".into(), Json::Str(f.error.clone())),
        (
            "kind".into(),
            Json::Str(
                if f.infrastructure {
                    "infrastructure"
                } else {
                    "model"
                }
                .into(),
            ),
        ),
    ])
}

/// Serializes [`crate::engine::RobustnessStats`] (the report's
/// `"execution".robustness` object; also aggregated by `GET /stats`).
pub fn robustness_json(r: &crate::engine::RobustnessStats) -> Json {
    Json::Obj(vec![
        (
            "health_failures".into(),
            Json::Num(r.health_failures as f64),
        ),
        ("fallbacks".into(), Json::Num(r.fallbacks as f64)),
        ("retries".into(), Json::Num(r.retries as f64)),
        (
            "recovered_cells".into(),
            Json::Num(r.recovered_cells as f64),
        ),
    ])
}

/// Serializes the artifact-cache counters (the report's `"cache"` object;
/// also served by `GET /stats`).
pub fn cache_stats_json(stats: &crate::cache::CacheStats) -> Json {
    let pool = |p: crate::cache::PoolStats| {
        Json::Obj(vec![
            ("hits".into(), Json::Num(p.hits as f64)),
            ("misses".into(), Json::Num(p.misses as f64)),
            ("evictions".into(), Json::Num(p.evictions as f64)),
            ("entries".into(), Json::Num(p.entries as f64)),
            ("bytes".into(), Json::Num(p.bytes as f64)),
            // Live rebuild-cost gauge (the eviction weight input), in
            // array-elements-touched units — alongside bytes so capacity
            // planning can see both axes.
            ("cost".into(), Json::Num(p.cost as f64)),
        ])
    };
    Json::Obj(vec![
        ("structure".into(), pool(stats.structure)),
        ("uniformized".into(), pool(stats.uniformized)),
        ("regen_params".into(), pool(stats.regen_params)),
        // Artifact-graph counters: structure facts served to rate variants
        // of a cached topology, uniformizations built by re-binding a
        // structural donor's plans, and dependents orphaned by evicting
        // their parent artifact.
        ("derived_hits".into(), Json::Num(stats.derived_hits as f64)),
        ("rebinds".into(), Json::Num(stats.rebinds as f64)),
        ("orphaned".into(), Json::Num(stats.orphaned as f64)),
    ])
}

fn report_to_json_opts(report: &SweepReport, stable: bool) -> Json {
    let reports = report
        .reports
        .iter()
        .map(|r| cell_to_json(r, stable))
        .collect();
    let failures = report.failures.iter().map(failure_to_json).collect();
    let mut doc = vec![
        ("reports".into(), Json::Arr(reports)),
        ("failures".into(), Json::Arr(failures)),
    ];
    if !stable {
        doc.push(("cache".into(), cache_stats_json(&report.cache)));
        let exec = &report.exec;
        doc.push((
            "execution".into(),
            Json::Obj(vec![
                ("simd_backend".into(), Json::Str(exec.simd_backend.into())),
                ("sweep_workers".into(), Json::Num(exec.sweep_workers as f64)),
                ("pool_threads".into(), Json::Num(exec.pool_threads as f64)),
                (
                    "pool".into(),
                    Json::Obj(vec![
                        (
                            "pooled_runs".into(),
                            Json::Num(exec.pool.pooled_runs as f64),
                        ),
                        (
                            "inline_runs".into(),
                            Json::Num(exec.pool.inline_runs as f64),
                        ),
                        ("chunks".into(), Json::Num(exec.pool.chunks as f64)),
                        (
                            "stolen_chunks".into(),
                            Json::Num(exec.pool.stolen_chunks as f64),
                        ),
                        (
                            "overlapped_runs".into(),
                            Json::Num(exec.pool.overlapped_runs as f64),
                        ),
                    ]),
                ),
                (
                    "workspace".into(),
                    Json::Obj(vec![
                        ("takes".into(), Json::Num(exec.workspace.takes as f64)),
                        (
                            "fresh_allocs".into(),
                            Json::Num(exec.workspace.fresh_allocs as f64),
                        ),
                        ("reused".into(), Json::Num(exec.workspace.reused as f64)),
                    ]),
                ),
                // Cells solved inside blocked multi-RHS propagations —
                // execution accounting like the rest of this object (the
                // values themselves are bitwise independent of grouping).
                ("blocked_cells".into(), Json::Num(exec.blocked_cells as f64)),
                // The artifact-graph reuse counters repeated here: how much
                // of this sweep's build work was served by the graph
                // (derived facts, plan rebinds) vs. lost to parent
                // evictions — execution accounting, not results.
                (
                    "derived_hits".into(),
                    Json::Num(report.cache.derived_hits as f64),
                ),
                ("rebinds".into(), Json::Num(report.cache.rebinds as f64)),
                ("orphaned".into(), Json::Num(report.cache.orphaned as f64)),
                ("robustness".into(), robustness_json(&report.robustness)),
            ]),
        ));
        doc.push(("wall_seconds".into(), Json::Num(report.wall.as_secs_f64())));
    }
    Json::Obj(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_spec() {
        let spec = SweepSpec::parse(
            r#"{
                "epsilon": 1e-10,
                "horizons": [1, 10],
                "models": [
                    {"kind": "two_state", "lambda": 1e-3, "mu": 1.0},
                    {"kind": "cyclic", "n": 4, "measures": ["trr", "mrr"]}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.requests.len(), 3, "1 two_state + 2 cyclic measures");
        assert_eq!(spec.requests[0].epsilon, 1e-10);
        assert_eq!(spec.requests[0].horizons, vec![1.0, 10.0]);
        assert_eq!(spec.requests[2].measure, MeasureKind::Mrr);
    }

    #[test]
    fn per_model_overrides_win() {
        let spec = SweepSpec::parse(
            r#"{
                "horizons": [1],
                "method": "sr",
                "models": [
                    {"kind": "two_state", "lambda": 0.1, "mu": 1.0,
                     "horizons": [5, 50], "method": "rrl", "epsilon": 1e-8}
                ]
            }"#,
        )
        .unwrap();
        let req = &spec.requests[0];
        assert_eq!(req.horizons, vec![5.0, 50.0]);
        assert_eq!(req.method, MethodChoice::Fixed(Method::Rrl));
        assert_eq!(req.epsilon, 1e-8);
    }

    #[test]
    fn parses_cache_config() {
        let spec = SweepSpec::parse(
            r#"{
                "horizons": [1],
                "cache": {"max_entries": 8, "max_bytes": 1048576},
                "models": [{"kind": "cyclic", "n": 3}]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.cache.max_entries, Some(8));
        assert_eq!(spec.cache.max_bytes, Some(1048576));
        // Absent → unbounded; partial → only that cap.
        let spec = SweepSpec::parse(r#"{"horizons": [1], "models": [{"kind": "cyclic", "n": 3}]}"#)
            .unwrap();
        assert_eq!(spec.cache, CacheConfig::unbounded());
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "cache": {"max_entries": 2},
                "models": [{"kind": "cyclic", "n": 3}]}"#,
        )
        .unwrap();
        assert_eq!(spec.cache.max_entries, Some(2));
        assert_eq!(spec.cache.max_bytes, None);
    }

    #[test]
    fn rejects_bad_cache_config() {
        // 0 is valid — a cache that retains nothing (cold every time).
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "cache": {"max_entries": 0},
                "models": [{"kind": "cyclic", "n": 3}]}"#,
        )
        .unwrap();
        assert_eq!(spec.cache.max_entries, Some(0));
        for bad in ["-1", "2.5", "1e400", "\"lots\""] {
            let doc = format!(
                r#"{{"horizons": [1], "cache": {{"max_entries": {bad}}},
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "cache cap {bad} accepted");
        }
        // A mistyped "cache" value must be an error, not a silent unbounded
        // cache.
        for bad in ["64", "\"small\"", "[4]", "true"] {
            let doc = format!(
                r#"{{"horizons": [1], "cache": {bad},
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "cache {bad} accepted");
        }
    }

    /// Non-finite or non-positive ε must fail at parse time — downstream it
    /// would key cache entries by NaN bits or break the error-budget splits.
    #[test]
    fn rejects_non_finite_epsilon() {
        for bad in ["0", "-1e-12", "1e999", "-1e999"] {
            let top = format!(
                r#"{{"epsilon": {bad}, "horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(
                SweepSpec::parse(&top).is_err(),
                "top-level ε {bad} accepted"
            );
            let per_model = format!(
                r#"{{"horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3, "epsilon": {bad}}}]}}"#
            );
            assert!(
                SweepSpec::parse(&per_model).is_err(),
                "per-model ε {bad} accepted"
            );
        }
    }

    #[test]
    fn parses_inline_rate_matrix_model() {
        let spec = SweepSpec::parse(
            r#"{
                "horizons": [1, 100],
                "models": [
                    {"kind": "inline", "name": "unit",
                     "rates": [[0, 1, 0.001], [1, 0, 1.0]],
                     "rewards": [0, 1]}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.requests.len(), 1);
        let req = &spec.requests[0];
        assert_eq!(req.name, "unit");
        assert_eq!(req.model.n_states(), 2);
        assert_eq!(req.model.initial(), &[1.0, 0.0], "default initial is e_0");
        assert_eq!(req.model.rewards(), &[0.0, 1.0]);
        // Explicit initial + padding states via "n".
        let spec = SweepSpec::parse(
            r#"{
                "horizons": [1],
                "models": [
                    {"kind": "inline", "n": 3,
                     "rates": [[0, 1, 0.5], [1, 0, 2.0]],
                     "initial": [0.25, 0.75, 0],
                     "rewards": [1, 0, 0]}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.requests[0].model.n_states(), 3);
        assert_eq!(spec.requests[0].model.initial()[1], 0.75);
    }

    #[test]
    fn rejects_bad_inline_models() {
        let parse = |models: &str| {
            SweepSpec::parse(&format!(r#"{{"horizons": [1], "models": [{models}]}}"#))
        };
        // Missing rates / rewards.
        assert!(parse(r#"{"kind": "inline", "rewards": [1]}"#).is_err());
        assert!(parse(r#"{"kind": "inline", "rates": [[0, 1, 1.0]]}"#).is_err());
        // Malformed triples.
        assert!(parse(r#"{"kind": "inline", "rates": [[0, 1]], "rewards": [1, 1]}"#).is_err());
        assert!(
            parse(r#"{"kind": "inline", "rates": [[0, 1, -2.0]], "rewards": [1, 1]}"#).is_err(),
            "negative rate must be rejected"
        );
        assert!(
            parse(r#"{"kind": "inline", "rates": [[0, 1.5, 1.0]], "rewards": [1, 1]}"#).is_err(),
            "fractional state index must be rejected"
        );
        // Dimension mismatches.
        assert!(
            parse(r#"{"kind": "inline", "rates": [[0, 1, 1.0]], "rewards": [1]}"#).is_err(),
            "rewards shorter than the state count must be rejected"
        );
        assert!(
            parse(r#"{"kind": "inline", "n": 1, "rates": [[0, 1, 1.0]], "rewards": [1, 1]}"#)
                .is_err(),
            "n below the implied state count must be rejected"
        );
        // Invalid chains still fail through Ctmc construction validation.
        assert!(
            parse(
                r#"{"kind": "inline", "rates": [[0, 1, 1.0]],
                    "initial": [0.25, 0.25], "rewards": [1, 1]}"#
            )
            .is_err(),
            "an initial distribution not summing to 1 must be rejected"
        );
        assert!(
            parse(r#"{"kind": "inline", "rates": [[0, 1, 1.0]], "rewards": [1, -1]}"#).is_err(),
            "negative rewards must be rejected"
        );
    }

    #[test]
    fn stable_report_omits_execution_dependent_fields() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [{"kind": "two_state", "lambda": 1e-3, "mu": 1.0}]}"#,
        )
        .unwrap();
        let engine = crate::Engine::with_cache_config(spec.options, spec.cache);
        let report = engine.sweep(&spec.requests);
        let full = report_to_json(&report).to_string();
        let stable = stable_report_to_json(&report).to_string();
        for field in [
            "wall_seconds",
            "cache",
            "execution",
            "unif_cache_hit",
            "kernel",
            "backend",
            "simd_backend",
            "stolen_chunks",
        ] {
            assert!(full.contains(field), "full report must contain {field}");
            assert!(!stable.contains(field), "stable report leaks {field}");
        }
        assert!(stable.contains("\"value\""));
    }

    /// The `"kernel"` knob forces the SpMV kernel engine-wide; every forced
    /// kernel produces a `--stable` report byte-for-byte identical to
    /// `Auto` (the CI determinism job diffs exactly this).
    #[test]
    fn forced_kernel_sweeps_match_auto_byte_for_byte() {
        let spec_for = |kernel: &str| {
            format!(
                r#"{{"epsilon": 1e-10, "kernel": "{kernel}", "horizons": [1, 100, 10000],
                    "models": [{{"kind": "raid", "g": 2}},
                               {{"kind": "two_state", "lambda": 1e-3, "absorbing": true}}]}}"#
            )
        };
        let run = |kernel: &str| {
            let spec = SweepSpec::parse(&spec_for(kernel)).unwrap();
            assert_eq!(
                spec.options.parallel.kernel,
                regenr_sparse::KernelChoice::parse(kernel).unwrap()
            );
            let engine = crate::Engine::with_cache_config(spec.options, spec.cache);
            let report = engine.sweep(&spec.requests);
            assert!(
                report.failures.is_empty(),
                "{kernel}: {:?}",
                report.failures
            );
            stable_report_to_json(&report).to_string()
        };
        let auto = run("auto");
        for kernel in ["generic", "shortrow", "diagsplit", "sliced"] {
            assert_eq!(auto, run(kernel), "kernel {kernel} must match auto");
        }
    }

    #[test]
    fn rejects_bad_kernel_knob() {
        for bad in ["\"warp\"", "3", "true"] {
            let doc = format!(
                r#"{{"kernel": {bad}, "horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "kernel {bad} accepted");
        }
    }

    /// The `"backend"` knob forces the SIMD execution backend engine-wide;
    /// every forced backend produces a `--stable` report byte-for-byte
    /// identical to forced-scalar (the CI determinism job diffs exactly
    /// this — in a non-SIMD build every choice resolves to scalar and the
    /// test still holds trivially).
    #[test]
    fn forced_backend_sweeps_match_scalar_byte_for_byte() {
        let spec_for = |backend: &str| {
            format!(
                r#"{{"epsilon": 1e-10, "backend": "{backend}", "horizons": [1, 100, 10000],
                    "models": [{{"kind": "raid", "g": 2}},
                               {{"kind": "two_state", "lambda": 1e-3, "absorbing": true}}]}}"#
            )
        };
        let run = |backend: &str| {
            let spec = SweepSpec::parse(&spec_for(backend)).unwrap();
            assert_eq!(
                spec.options.parallel.backend,
                regenr_sparse::BackendChoice::parse(backend).unwrap()
            );
            let engine = crate::Engine::with_cache_config(spec.options, spec.cache);
            let report = engine.sweep(&spec.requests);
            assert!(
                report.failures.is_empty(),
                "{backend}: {:?}",
                report.failures
            );
            // The resolved backend is surfaced in the *full* report.
            assert!(!report.exec.simd_backend.is_empty());
            stable_report_to_json(&report).to_string()
        };
        let scalar = run("scalar");
        for backend in ["auto", "sse2", "avx2"] {
            assert_eq!(scalar, run(backend), "backend {backend} must match scalar");
        }
    }

    #[test]
    fn rejects_bad_backend_knob() {
        for bad in ["\"avx512\"", "3", "true"] {
            let doc = format!(
                r#"{{"backend": {bad}, "horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "backend {bad} accepted");
        }
    }

    /// The blocked-stepping knobs force the RHS block width and the
    /// column-index width engine-wide; every combination produces a
    /// `--stable` report byte-for-byte identical to `auto` (the CI
    /// determinism job diffs exactly this). The grid includes a
    /// two-measure model so shared-generator grouping actually engages
    /// under `auto`.
    #[test]
    fn forced_rhs_block_and_index_width_sweeps_match_auto_byte_for_byte() {
        let spec_for = |rhs: &str, width: &str| {
            format!(
                r#"{{"epsilon": 1e-10, "rhs_block": {rhs}, "index_width": {width},
                    "horizons": [1, 100], "measures": ["trr", "mrr"],
                    "models": [{{"kind": "raid", "g": 2}},
                               {{"kind": "two_state", "lambda": 1e-3, "mu": 1.0}}]}}"#
            )
        };
        let run = |rhs: &str, width: &str| {
            let spec = SweepSpec::parse(&spec_for(rhs, width)).unwrap();
            let engine = crate::Engine::with_cache_config(spec.options, spec.cache);
            let report = engine.sweep(&spec.requests);
            assert!(
                report.failures.is_empty(),
                "rhs_block {rhs} index_width {width}: {:?}",
                report.failures
            );
            (
                report.exec.blocked_cells,
                stable_report_to_json(&report).to_string(),
            )
        };
        let (auto_cells, auto) = run("\"auto\"", "\"auto\"");
        assert!(auto_cells > 0, "two-measure grid must group under auto");
        let (serial_cells, serial) = run("1", "\"64\"");
        assert_eq!(serial_cells, 0, "rhs_block 1 must disable grouping");
        assert_eq!(auto, serial, "blocked and serial reports must match");
        // String and bare-integer spellings, every width, every block.
        for (rhs, width) in [("2", "\"16\""), ("\"4\"", "\"32\""), ("8", "16")] {
            let (_, out) = run(rhs, width);
            assert_eq!(auto, out, "rhs_block {rhs} index_width {width}");
        }
    }

    #[test]
    fn rejects_bad_rhs_block_and_index_width_knobs() {
        for bad in ["\"3\"", "3", "\"wide\"", "true", "2.5", "-1"] {
            let doc = format!(
                r#"{{"rhs_block": {bad}, "horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "rhs_block {bad} accepted");
        }
        for bad in ["\"48\"", "48", "\"both\"", "false", "16.5"] {
            let doc = format!(
                r#"{{"index_width": {bad}, "horizons": [1],
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(
                SweepSpec::parse(&doc).is_err(),
                "index_width {bad} accepted"
            );
        }
    }

    /// Typos in top-level spec keys must be named errors, not silently
    /// ignored knobs — server clients get a 400 instead of a wrong-config
    /// sweep.
    #[test]
    fn rejects_unknown_top_level_keys_by_name() {
        let fail = |text: &str| SweepSpec::parse(text).map(|_| ()).unwrap_err();
        let err = fail(
            r#"{"horizons": [1], "kernal": "auto",
                "models": [{"kind": "cyclic", "n": 3}]}"#,
        );
        assert!(err.contains("\"kernal\""), "error must name the key: {err}");
        assert!(err.contains("unknown spec field"), "{err}");
        // Several unknowns are all named.
        let err = fail(
            r#"{"horizons": [1], "kernal": "auto", "epsilonn": 1e-9,
                "models": [{"kind": "cyclic", "n": 3}]}"#,
        );
        assert!(
            err.contains("\"kernal\"") && err.contains("\"epsilonn\""),
            "{err}"
        );
        // A non-object document is a clear error too.
        assert!(fail("[1, 2]").contains("object"));
    }

    /// `deadline_ms` / `debug_stall_ms` are recognized (serve consumes
    /// them; the CLI ignores them) and validated.
    #[test]
    fn parses_serve_only_fields() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "deadline_ms": 250, "debug_stall_ms": 40,
                "models": [{"kind": "cyclic", "n": 3}]}"#,
        )
        .unwrap();
        assert_eq!(spec.deadline_ms, Some(250));
        assert_eq!(spec.debug_stall_ms, Some(40));
        let spec = SweepSpec::parse(r#"{"horizons": [1], "models": [{"kind": "cyclic", "n": 3}]}"#)
            .unwrap();
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(spec.debug_stall_ms, None);
        for bad in ["-1", "2.5", "\"soon\""] {
            let doc = format!(
                r#"{{"horizons": [1], "deadline_ms": {bad},
                    "models": [{{"kind": "cyclic", "n": 3}}]}}"#
            );
            assert!(SweepSpec::parse(&doc).is_err(), "deadline {bad} accepted");
        }
    }

    /// Typos *inside model objects* are rejected by name too, with the
    /// error listing the keys that kind accepts.
    #[test]
    fn rejects_unknown_model_keys_by_name() {
        let fail = |models: &str| {
            SweepSpec::parse(&format!(r#"{{"horizons": [1], "models": [{models}]}}"#))
                .map(|_| ())
                .unwrap_err()
        };
        let err = fail(r#"{"kind": "duplex", "lambda": 0.01, "mu": 1.0, "coverge": 0.9}"#);
        assert!(
            err.contains("\"coverge\""),
            "error must name the key: {err}"
        );
        assert!(
            err.contains("coverage"),
            "error must list known keys: {err}"
        );
        assert!(err.contains("duplex"), "{err}");
        // Per-model override keys stay accepted for every kind.
        SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "cyclic", "n": 3, "name": "ring", "epsilon": 1e-9,
                 "method": "sr", "measures": ["trr"], "regen_state": 0,
                 "horizons": [2]}]}"#,
        )
        .unwrap();
        let err = fail(
            r#"{"kind": "machines", "machines": 4, "repairmen": 1,
                           "lambda": 0.1, "mu": 1.0, "coverage": 0.9}"#,
        );
        assert!(
            err.contains("\"coverage\""),
            "machines has no coverage: {err}"
        );
        let err = fail(
            r#"{"kind": "compose", "crew": 2,
                           "components": [{"name": "a", "count": 1, "lambda": 0.1}]}"#,
        );
        assert!(err.contains("\"crew\"") && err.contains("crews"), "{err}");
        // Unknown-kind errors list every kind, including the new ones.
        let err = fail(r#"{"kind": "warp"}"#);
        assert!(
            err.contains("multiproc") && err.contains("compose"),
            "{err}"
        );
    }

    #[test]
    fn parses_multiproc_kind() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "multiproc", "n_proc": 4, "n_mem": 3, "lambda_p": 1e-4,
                 "lambda_m": 5e-5, "coverage": 0.98, "mu": 1.0, "delta": 6.0}]}"#,
        )
        .unwrap();
        assert_eq!(spec.requests[0].name, "multiproc_4x3");
        assert_eq!(spec.requests[0].model.n_states(), 5 * 4 + 1);
        // Absorbing variant: delta optional, name tagged.
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "multiproc", "n_proc": 2, "n_mem": 2, "lambda_p": 1e-4,
                 "lambda_m": 5e-5, "coverage": 0.9, "mu": 1.0, "absorbing": true}]}"#,
        )
        .unwrap();
        assert_eq!(spec.requests[0].name, "multiproc_2x2_ur");
        for bad in [
            r#"{"kind": "multiproc", "n_proc": 2, "n_mem": 2, "lambda_p": 1e-4,
                "lambda_m": 5e-5, "coverage": 0.9, "mu": 1.0}"#, // no delta
            r#"{"kind": "multiproc", "n_proc": 2, "n_mem": 2, "lambda_p": 1e-4,
                "lambda_m": 5e-5, "coverage": 1.9, "mu": 1.0, "delta": 1.0}"#,
        ] {
            assert!(
                SweepSpec::parse(&format!(r#"{{"horizons": [1], "models": [{bad}]}}"#)).is_err(),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn parses_compose_kind_with_order_independent_name() {
        let forward = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "compose", "crews": 1, "reward": "capacity",
                 "uncovered": {"reboot": 6.0},
                 "components": [
                   {"name": "proc", "count": 4, "lambda": 1e-4, "mu": 1.0,
                    "coverage": 0.98, "required": 1},
                   {"name": "mem", "count": 3, "lambda": 5e-5, "mu": 1.0,
                    "coverage": 0.98, "required": 1}]}]}"#,
        )
        .unwrap();
        let reversed = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "compose", "crews": 1, "reward": "capacity",
                 "uncovered": {"reboot": 6.0},
                 "components": [
                   {"name": "mem", "count": 3, "lambda": 5e-5, "mu": 1.0,
                    "coverage": 0.98, "required": 1},
                   {"name": "proc", "count": 4, "lambda": 1e-4, "mu": 1.0,
                    "coverage": 0.98, "required": 1}]}]}"#,
        )
        .unwrap();
        assert_eq!(forward.requests[0].name, "compose_mem3_proc4");
        assert_eq!(reversed.requests[0].name, "compose_mem3_proc4");
        let fp = |spec: &SweepSpec| crate::fingerprint(&spec.requests[0].model);
        assert_eq!(
            fp(&forward),
            fp(&reversed),
            "permuted component lists must fingerprint identically"
        );
        assert_eq!(forward.requests[0].model.n_states(), 5 * 4 + 1);
    }

    #[test]
    fn compose_state_cap_is_a_spec_error() {
        let err = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "compose", "max_states": 5,
                 "components": [
                   {"name": "m", "count": 9, "lambda": 0.1, "mu": 1.0}]}]}"#,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("cap of 5 states"), "{err}");
        // Validation errors surface with context, not as panics.
        let err = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "compose", "components": [
                   {"name": "m", "count": 2, "lambda": 0.1,
                    "deps": [{"on": "ghost", "factor": 0.0}]}]}]}"#,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    /// The `"sensitivity"` sweep form expands a model into rate-scaled
    /// instances that share one *structural* fingerprint (the property the
    /// artifact graph's delta-warm path rides on) while their full/value
    /// fingerprints differ.
    #[test]
    fn sensitivity_expands_into_structure_sharing_rate_variants() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1, 100], "models": [
                {"kind": "two_state", "lambda": 1e-3, "mu": 1.0,
                 "sensitivity": {"param": "lambda", "grid": [0.5, 1, 2]}}]}"#,
        )
        .unwrap();
        assert_eq!(spec.requests.len(), 3);
        let names: Vec<&str> = spec.requests.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "two_state@lambda=0.5",
                "two_state@lambda=1",
                "two_state@lambda=2"
            ]
        );
        let fps: Vec<crate::ModelFps> = spec
            .requests
            .iter()
            .map(|r| crate::model_fps(&r.model))
            .collect();
        for fp in &fps[1..] {
            assert_eq!(
                fp.structure, fps[0].structure,
                "grid points must share the structural fingerprint"
            );
            assert_eq!(fp.unif_structure, fps[0].unif_structure);
            assert_ne!(fp.full, fps[0].full, "values must differ");
        }
        // The middle point is factor 1: bitwise the base model.
        assert_eq!(
            crate::fingerprint(&spec.requests[1].model),
            crate::fingerprint(&Arc::new(regenr_models::two_state::repairable_unit(
                1e-3, 1.0
            ))),
        );
        // A raid rate param works through the params table; the explicit
        // "name" override still applies before the suffix.
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "raid", "g": 2, "name": "r",
                 "sensitivity": {"param": "lambda_d", "grid": [0.25]}}]}"#,
        )
        .unwrap();
        assert_eq!(spec.requests[0].name, "r@lambda_d=0.25");
    }

    /// Bad sensitivity forms are named errors: unknown inner keys, bad
    /// grids, and params that are not scalable rates for the kind.
    #[test]
    fn rejects_bad_sensitivity_forms() {
        let fail = |model: &str| {
            SweepSpec::parse(&format!(r#"{{"horizons": [1], "models": [{model}]}}"#))
                .map(|_| ())
                .unwrap_err()
        };
        let two_state = |sens: &str| {
            format!(r#"{{"kind": "two_state", "lambda": 1e-3, "mu": 1.0, "sensitivity": {sens}}}"#)
        };
        // Unknown key inside the object, rejected by name.
        let err = fail(&two_state(r#"{"params": "lambda", "grid": [1]}"#));
        assert!(err.contains("\"params\""), "{err}");
        // Missing/empty/invalid grids.
        assert!(fail(&two_state(r#"{"param": "lambda"}"#)).contains("grid"));
        assert!(fail(&two_state(r#"{"param": "lambda", "grid": []}"#)).contains("empty"));
        // (Non-finite factors cannot arrive through JSON — the parser
        // rejects `1e999`/`NaN` as invalid numbers before validation.)
        for bad in ["[0]", "[-1]", "[\"2\"]"] {
            let err = fail(&two_state(&format!(
                r#"{{"param": "lambda", "grid": {bad}}}"#
            )));
            assert!(err.contains("positive finite"), "grid {bad}: {err}");
        }
        // A param that is not a scalable rate of the kind, with the valid
        // set listed — probabilities are not rates.
        let err = fail(&two_state(r#"{"param": "theta", "grid": [1]}"#));
        assert!(err.contains("\"theta\"") && err.contains("lambda"), "{err}");
        let err = fail(
            r#"{"kind": "raid", "g": 2,
                "sensitivity": {"param": "p_r", "grid": [1]}}"#,
        );
        assert!(err.contains("\"p_r\"") && err.contains("lambda_d"), "{err}");
        let err = fail(
            r#"{"kind": "cyclic", "n": 3,
                "sensitivity": {"param": "lambda", "grid": [1]}}"#,
        );
        assert!(err.contains("no scalable rates"), "{err}");
        let err = fail(
            r#"{"kind": "inline", "rates": [[0, 1, 1.0]], "rewards": [1, 0],
                "sensitivity": {"param": "lambda", "grid": [1]}}"#,
        );
        assert!(err.contains("\"rate\""), "{err}");
    }

    /// Compose and inline models scale through their own hooks: compose via
    /// `ComposeModel::with_scaled_rate`, inline by scaling every triple.
    #[test]
    fn sensitivity_scales_compose_and_inline_models() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "compose", "components": [
                   {"name": "m", "count": 2, "lambda": 0.1, "mu": 1.0}],
                 "sensitivity": {"param": "lambda", "grid": [1, 2]}}]}"#,
        )
        .unwrap();
        assert_eq!(spec.requests.len(), 2);
        let fps: Vec<crate::ModelFps> = spec
            .requests
            .iter()
            .map(|r| crate::model_fps(&r.model))
            .collect();
        assert_eq!(fps[0].structure, fps[1].structure);
        assert_ne!(fps[0].full, fps[1].full);
        let spec = SweepSpec::parse(
            r#"{"horizons": [1], "models": [
                {"kind": "inline", "rates": [[0, 1, 0.5], [1, 0, 2.0]],
                 "rewards": [1, 0],
                 "sensitivity": {"param": "rate", "grid": [2]}}]}"#,
        )
        .unwrap();
        let q = spec.requests[0].model.generator();
        assert_eq!(q.get(0, 1), 1.0, "0.5 doubled");
        assert_eq!(q.get(1, 0), 4.0, "2.0 doubled");
    }

    /// The cache JSON carries the artifact-graph counters and the per-pool
    /// rebuild-cost gauge alongside bytes; `--stable` reports stay free of
    /// all of it.
    #[test]
    fn cache_stats_json_surfaces_graph_counters_and_costs() {
        let spec = SweepSpec::parse(
            r#"{"horizons": [1, 10], "models": [
                {"kind": "two_state", "lambda": 1e-3, "mu": 1.0,
                 "sensitivity": {"param": "lambda", "grid": [1, 2, 4]}}]}"#,
        )
        .unwrap();
        let engine = crate::Engine::with_cache_config(spec.options, spec.cache);
        let report = engine.sweep(&spec.requests);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let stats = engine.cache().stats();
        assert!(
            stats.derived_hits > 0,
            "a sensitivity grid must share structure facts: {stats:?}"
        );
        assert!(stats.structure.cost > 0, "facts carry a rebuild cost");
        let cache_json = cache_stats_json(&stats).to_string();
        for field in ["derived_hits", "rebinds", "orphaned", "\"cost\""] {
            assert!(cache_json.contains(field), "cache json lacks {field}");
        }
        let full = report_to_json(&report).to_string();
        let stable = stable_report_to_json(&report).to_string();
        for field in ["derived_hits", "rebinds", "orphaned"] {
            assert!(full.contains(field), "full report lacks {field}");
            assert!(!stable.contains(field), "stable report leaks {field}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(SweepSpec::parse("{}").is_err());
        assert!(SweepSpec::parse(r#"{"models": []}"#).is_err());
        assert!(SweepSpec::parse(r#"{"models": [{"kind": "warp"}]}"#).is_err());
        assert!(
            SweepSpec::parse(r#"{"models": [{"kind": "cyclic", "n": 3}]}"#).is_err(),
            "no horizons anywhere must be rejected"
        );
        assert!(SweepSpec::parse(
            r#"{"horizons": [1], "method": "warp", "models": [{"kind": "cyclic", "n": 3}]}"#
        )
        .is_err());
        assert!(
            SweepSpec::parse(
                r#"{"horizons": [1],
                    "models": [{"kind": "cyclic", "n": 3, "regen_state": 1.5}]}"#
            )
            .is_err(),
            "a mistyped regen_state must be rejected, not silently defaulted"
        );
    }
}
