//! The unified [`Solver`] interface over every transient method in the
//! workspace.
//!
//! Each concrete solver keeps its specialized API (RRL's bounds, RSD's
//! detection report, …); this module gives them one common
//! `solve(measure, t)` surface plus capability flags so the engine — or any
//! generic caller — can treat them interchangeably. The [`UnifiedSolver`]
//! enum is the zero-boxing dispatch vehicle; [`build_solver`] constructs one
//! from a [`Method`] tag with per-method validation.

use crate::cache::ChainFacts;
use crate::method::{Capabilities, Method};
use crate::EngineError;
use regenr_core::{
    select_regenerative_state, RegenOptions, RrOptions, RrSolver, RrlOptions, RrlSolver,
    SelectOptions,
};
use regenr_ctmc::{Ctmc, CtmcError, Uniformized};
use regenr_laplace::InverterOptions;
use regenr_sparse::{ParallelConfig, Workspace};
use regenr_transient::{
    AdaptiveOptions, AdaptiveSolver, MeasureKind, OdeOptions, OdeSolver, RsdOptions, RsdSolver,
    SrOptions, SrSolver,
};
use std::sync::Arc;

/// A solver result in the engine's common shape.
#[derive(Clone, Copy, Debug)]
pub struct EngineSolution {
    /// The measure value.
    pub value: f64,
    /// Work steps: DTMC products for SR/RSD/adaptive, construction steps
    /// `K (+ L)` for RR/RRL (the paper's reported number), `0` for the ODE
    /// oracle.
    pub steps: usize,
    /// Error bound as reported by the method (`NaN` for the ODE oracle,
    /// whose step control is local, not global).
    pub error_bound: f64,
    /// Laplace abscissae evaluated (RRL only; `0` elsewhere).
    pub abscissae: usize,
    /// Health flag: `false` only when a method's internal convergence
    /// criterion failed (RRL's Laplace inversion). Methods that run to an
    /// a-priori truncation point — including RSD when it completes the full
    /// Poisson sum without detecting stationarity, which is exactly as
    /// rigorous as SR — report `true`.
    pub converged: bool,
}

impl From<regenr_transient::Solution> for EngineSolution {
    fn from(s: regenr_transient::Solution) -> Self {
        EngineSolution {
            value: s.value,
            steps: s.steps,
            error_bound: s.error_bound,
            abscissae: 0,
            converged: true,
        }
    }
}

impl From<regenr_core::RrlSolution> for EngineSolution {
    fn from(s: regenr_core::RrlSolution) -> Self {
        EngineSolution {
            value: s.value,
            steps: s.construction_steps,
            error_bound: s.error_bound,
            abscissae: s.abscissae,
            converged: s.inversion_converged,
        }
    }
}

impl From<regenr_core::RrSolution> for EngineSolution {
    fn from(s: regenr_core::RrSolution) -> Self {
        EngineSolution {
            value: s.value,
            steps: s.construction_steps,
            error_bound: s.error_bound,
            abscissae: 0,
            converged: true,
        }
    }
}

/// The one interface every transient method exposes.
pub trait Solver {
    /// Which method this is.
    fn method(&self) -> Method;

    /// This method's capability flags.
    fn capabilities(&self) -> Capabilities {
        self.method().capabilities()
    }

    /// Computes the measure at horizon `t`.
    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError>;

    /// Computes the measure at many horizons. Methods with shareable work
    /// (SR's propagation sweep, RRL's parameter construction) override this;
    /// the default loops.
    fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<EngineSolution>, EngineError> {
        ts.iter().map(|&t| self.solve(measure, t)).collect()
    }

    /// Like [`Solver::solve_many`] with caller-owned scratch: solvers
    /// threading the [`Workspace`] through their inner loops perform zero
    /// steady-state vector allocations across the horizon grid. The default
    /// ignores the workspace and delegates.
    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        let _ = ws;
        self.solve_many(measure, ts)
    }
}

impl Solver for SrSolver<'_> {
    fn method(&self) -> Method {
        Method::Sr
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        Ok(SrSolver::solve(self, measure, t).into())
    }

    fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(SrSolver::solve_many(self, measure, ts)
            .into_iter()
            .map(Into::into)
            .collect())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(SrSolver::solve_many_with(self, measure, ts, ws)
            .into_iter()
            .map(Into::into)
            .collect())
    }
}

impl Solver for RsdSolver<'_> {
    fn method(&self) -> Method {
        Method::Rsd
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        // Whether detection fired or the full Poisson sum ran, the result is
        // within ε (the undetected case degenerates to SR); `steps` tells
        // the two apart.
        Ok(RsdSolver::solve(self, measure, t).into())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(ts
            .iter()
            .map(|&t| self.solve_report_with(measure, t, ws).solution.into())
            .collect())
    }
}

impl Solver for AdaptiveSolver<'_> {
    fn method(&self) -> Method {
        Method::Adaptive
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        Ok(AdaptiveSolver::solve(self, measure, t).into())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(ts
            .iter()
            .map(|&t| self.solve_report_with(measure, t, ws).solution.into())
            .collect())
    }
}

impl Solver for OdeSolver<'_> {
    fn method(&self) -> Method {
        Method::Ode
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        Ok(OdeSolver::solve(self, measure, t).into())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(ts
            .iter()
            .map(|&t| self.solve_with(measure, t, ws).into())
            .collect())
    }
}

impl Solver for RrSolver<'_> {
    fn method(&self) -> Method {
        Method::Rr
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        Ok(RrSolver::solve(self, measure, t)?.into())
    }

    fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(RrSolver::solve_many(self, measure, ts)?
            .into_iter()
            .map(Into::into)
            .collect())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(RrSolver::solve_many_with(self, measure, ts, ws)?
            .into_iter()
            .map(Into::into)
            .collect())
    }
}

impl Solver for RrlSolver<'_> {
    fn method(&self) -> Method {
        Method::Rrl
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        Ok(RrlSolver::solve(self, measure, t)?.into())
    }

    fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(RrlSolver::solve_many(self, measure, ts)?
            .into_iter()
            .map(Into::into)
            .collect())
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        Ok(RrlSolver::solve_many_with(self, measure, ts, ws)?
            .into_iter()
            .map(Into::into)
            .collect())
    }
}

/// Per-solve configuration shared by every method.
#[derive(Clone, Copy, Debug)]
pub struct SolveConfig {
    /// Total absolute error budget `ε`.
    pub epsilon: f64,
    /// Uniformization safety factor `θ`.
    pub theta: f64,
    /// Regenerative state for RR/RRL; `None` picks the paper's pristine
    /// state (index 0) and falls back to occupancy-based selection when
    /// that state is invalid.
    pub regen_state: Option<usize>,
    /// Laplace-inversion tuning for RRL.
    pub inverter: InverterOptions,
    /// Inner SpMV parallelism.
    pub parallel: ParallelConfig,
    /// Hard state-count limit for the dense ODE oracle.
    pub dense_limit: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            epsilon: 1e-12,
            theta: 0.0,
            regen_state: None,
            inverter: InverterOptions::default(),
            parallel: ParallelConfig::default(),
            dense_limit: 1_000,
        }
    }
}

/// Any of the six solvers, behind one type. Implements [`Solver`] by
/// delegation; the engine also matches on it to reach method-specific
/// fast paths (RRL's cached parameters).
pub enum UnifiedSolver<'a> {
    /// Standard randomization.
    Sr(SrSolver<'a>),
    /// Steady-state detection.
    Rsd(RsdSolver<'a>),
    /// Active-set randomization.
    Adaptive(AdaptiveSolver<'a>),
    /// Dense ODE oracle.
    Ode(OdeSolver<'a>),
    /// Regenerative randomization.
    Rr(RrSolver<'a>),
    /// Regenerative randomization + Laplace inversion.
    Rrl(RrlSolver<'a>),
}

impl<'a> UnifiedSolver<'a> {
    /// The inner RRL solver, when this is the RRL method.
    pub fn as_rrl(&self) -> Option<&RrlSolver<'a>> {
        match self {
            UnifiedSolver::Rrl(s) => Some(s),
            _ => None,
        }
    }

    /// The inner RR solver, when this is the RR method.
    pub fn as_rr(&self) -> Option<&RrSolver<'a>> {
        match self {
            UnifiedSolver::Rr(s) => Some(s),
            _ => None,
        }
    }

    fn inner(&self) -> &dyn Solver {
        match self {
            UnifiedSolver::Sr(s) => s,
            UnifiedSolver::Rsd(s) => s,
            UnifiedSolver::Adaptive(s) => s,
            UnifiedSolver::Ode(s) => s,
            UnifiedSolver::Rr(s) => s,
            UnifiedSolver::Rrl(s) => s,
        }
    }
}

impl Solver for UnifiedSolver<'_> {
    fn method(&self) -> Method {
        self.inner().method()
    }

    fn solve(&self, measure: MeasureKind, t: f64) -> Result<EngineSolution, EngineError> {
        self.inner().solve(measure, t)
    }

    fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<EngineSolution>, EngineError> {
        self.inner().solve_many(measure, ts)
    }

    fn solve_many_ws(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<EngineSolution>, EngineError> {
        self.inner().solve_many_ws(measure, ts, ws)
    }
}

/// Picks the regenerative state: the explicit request, else the paper's
/// pristine state `0`, else (when `0` is invalid, e.g. absorbing) the
/// occupancy-ranking heuristic.
pub fn pick_regen_state(
    ctmc: &Ctmc,
    facts: &ChainFacts,
    requested: Option<usize>,
    theta: f64,
) -> Result<usize, CtmcError> {
    if let Some(r) = requested {
        return Ok(r);
    }
    if !facts.absorbing.contains(&0) && facts.n_states > 0 {
        return Ok(0);
    }
    select_regenerative_state(
        ctmc,
        SelectOptions {
            theta,
            ..Default::default()
        },
    )
}

/// Builds a validated solver for `method` on `ctmc`. `unif` is the cached
/// uniformization for methods that need one; pass `None` to build it here
/// (it is never built for the ODE oracle, which does not randomize).
pub fn build_solver<'a>(
    method: Method,
    ctmc: &'a Ctmc,
    facts: &ChainFacts,
    unif: Option<Arc<Uniformized>>,
    cfg: &SolveConfig,
) -> Result<UnifiedSolver<'a>, EngineError> {
    let caps = method.capabilities();
    if !caps.supports_absorbing && !facts.absorbing.is_empty() {
        return Err(EngineError::Unsupported {
            method,
            reason: format!(
                "chain has {} absorbing state(s); {method} requires an irreducible chain",
                facts.absorbing.len()
            ),
        });
    }
    if caps.dense_only && facts.n_states > cfg.dense_limit {
        return Err(EngineError::Unsupported {
            method,
            reason: format!(
                "{} states exceed the dense-oracle limit of {}",
                facts.n_states, cfg.dense_limit
            ),
        });
    }
    let regen = RegenOptions {
        epsilon: cfg.epsilon,
        theta: cfg.theta,
        parallel: cfg.parallel,
        ..Default::default()
    };
    let theta = cfg.theta;
    // Deferred so the ODE arm never pays for (or caches) a randomization.
    let unif = move || unif.unwrap_or_else(|| Arc::new(Uniformized::new(ctmc, theta)));
    Ok(match method {
        Method::Sr => UnifiedSolver::Sr(SrSolver::with_uniformized(
            ctmc,
            unif(),
            SrOptions {
                epsilon: cfg.epsilon,
                theta: cfg.theta,
                parallel: cfg.parallel,
            },
        )),
        Method::Rsd => UnifiedSolver::Rsd(RsdSolver::with_uniformized(
            ctmc,
            unif(),
            RsdOptions {
                epsilon: cfg.epsilon,
                theta: cfg.theta,
                parallel: cfg.parallel,
                ..Default::default()
            },
        )),
        Method::Adaptive => UnifiedSolver::Adaptive(AdaptiveSolver::with_uniformized(
            ctmc,
            unif(),
            AdaptiveOptions {
                epsilon: cfg.epsilon,
                theta: cfg.theta,
            },
        )),
        Method::Ode => UnifiedSolver::Ode(OdeSolver::new(
            ctmc,
            OdeOptions {
                tol: cfg.epsilon,
                ..Default::default()
            },
        )),
        // RR/RRL reuse the cached structure analysis: `with_uniformized`
        // would re-run the `O(n + nnz)` Tarjan pass per job even though the
        // engine already holds `ChainFacts` for this fingerprint.
        Method::Rr => {
            let r = pick_regen_state(ctmc, facts, cfg.regen_state, cfg.theta)?;
            UnifiedSolver::Rr(RrSolver::with_uniformized_facts(
                ctmc,
                r,
                unif(),
                facts.absorbing.clone(),
                RrOptions { regen },
            )?)
        }
        Method::Rrl => {
            let r = pick_regen_state(ctmc, facts, cfg.regen_state, cfg.theta)?;
            UnifiedSolver::Rrl(RrlSolver::with_uniformized_facts(
                ctmc,
                r,
                unif(),
                facts.absorbing.clone(),
                RrlOptions {
                    regen,
                    inverter: cfg.inverter,
                },
            )?)
        }
    })
}
