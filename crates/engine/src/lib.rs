//! # regenr-engine — the unified solver engine
//!
//! The paper's point (Carrasco, IPPS 2000) is that *which* transient method
//! wins — SR, RSD, RR, or RRL — depends on the model class (irreducible vs.
//! absorbing), stiffness, and the horizon `t`. Each solver crate exposes its
//! own constructor API; this crate puts one request/response layer on top:
//!
//! * [`Solver`] — one `solve(measure, t)` interface over all six methods,
//!   with per-method [`Capabilities`] (absorbing-chain support, MRR support,
//!   rigorous error bounds, …);
//! * [`SolveRequest`] / [`Engine::solve`] — batch solves over horizon
//!   grids, with [`MethodChoice::Auto`] encoding the paper's decision
//!   logic (SR for small `Λt`, RSD for irreducible chains, RRL for
//!   stiff/large-horizon absorbing cases) and structured [`SolveReport`]s
//!   (method chosen, dispatch reason, step counts, error bounds);
//! * [`ArtifactCache`] — a two-level artifact graph: uniformizations,
//!   structure analyses and RR/RRL killed-chain parameters keyed by a
//!   *structural* and a *value* [fingerprint](fingerprint::model_fps), so
//!   repeated requests across horizons/tolerances skip the expensive
//!   rebuilds and rate variants of one topology re-bind cached plans,
//!   layouts, and Tarjan facts instead of rebuilding them;
//! * [`Engine::sweep`] — scoped-thread parallel execution over
//!   `(model × measure × horizon)` grids, plus the `regenr` CLI binary that
//!   runs a sweep from a JSON spec and prints a JSON report.
//!
//! ## Quickstart
//!
//! ```
//! use regenr_engine::{Engine, MethodChoice, SolveRequest, Method};
//! use std::sync::Arc;
//!
//! let model = Arc::new(regenr_models::two_state::repairable_unit(1e-3, 1.0));
//! let engine = Engine::new();
//! let req = SolveRequest::new("unit", model, vec![1.0, 10.0, 1e4]).epsilon(1e-10);
//! let reports = engine.solve(&req).unwrap();
//! // Small Λt → SR; this chain is irreducible, so large horizons go to RSD.
//! assert_eq!(reports[0].method, Method::Sr);
//! assert_eq!(reports[2].method, Method::Rsd);
//! let exact = 1e-3 / 1.001 * (1.0 - (-1.001f64 * 1e4).exp());
//! assert!((reports[2].value - exact).abs() < 1e-8);
//! ```

pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod json;
pub mod method;
pub mod serve;
pub mod solver;
pub mod spec;

pub use cache::{ArtifactCache, CacheConfig, CacheStats, ChainFacts, PoolStats};
pub use engine::{
    DispatchReason, Engine, EngineOptions, ExecStats, MethodChoice, RobustnessStats, SolveReport,
    SolveRequest, SweepFailure, SweepProgress, SweepReport,
};
pub use fingerprint::{canonicalize_spec, fingerprint, model_fps, ModelFps};
pub use json::Json;
pub use method::{Capabilities, Method, ALL_METHODS};
pub use serve::{serve_stats_json, ServeConfig, ServeStats, Server};
pub use solver::{build_solver, EngineSolution, SolveConfig, Solver, UnifiedSolver};
pub use spec::{
    cache_stats_json, cell_to_json, failure_to_json, report_to_json, robustness_json,
    stable_report_to_json, SweepSpec,
};

use regenr_ctmc::CtmcError;
use std::fmt;

/// Engine-level errors.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The underlying chain machinery rejected the model/solve.
    Chain(CtmcError),
    /// The requested method cannot handle this model/measure.
    Unsupported {
        /// The method that was requested.
        method: Method,
        /// Why it cannot run.
        reason: String,
    },
    /// The request itself is malformed.
    InvalidRequest(String),
    /// A solver job panicked; the sweep isolated it and carried on. The
    /// payload is the panic message — this indicates a solver bug, not a
    /// bad request.
    JobPanicked(String),
    /// A solution failed the supervisor's numerical-health check (non-finite
    /// value, value outside the reward bounds, or a method-specific
    /// convergence flag unset) and every retry/fallback was exhausted.
    Unhealthy(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Chain(e) => write!(f, "chain error: {e}"),
            EngineError::Unsupported { method, reason } => {
                write!(f, "method {method} unsupported here: {reason}")
            }
            EngineError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            EngineError::JobPanicked(message) => {
                write!(f, "solver job panicked: {message}")
            }
            EngineError::Unhealthy(reason) => {
                write!(f, "numerical health check failed: {reason}")
            }
        }
    }
}

impl EngineError {
    /// Whether this error describes *infrastructure* misbehaviour (a panic,
    /// an injected fault, a corrupted solution) rather than a property of
    /// the request or model. The serve layer maps infrastructure failures
    /// to `5xx` and model/request errors to `4xx` — an injected fault must
    /// never masquerade as a model error.
    pub fn is_infrastructure(&self) -> bool {
        matches!(
            self,
            EngineError::JobPanicked(_)
                | EngineError::Unhealthy(_)
                | EngineError::Chain(CtmcError::Injected { .. })
        )
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for EngineError {
    fn from(e: CtmcError) -> Self {
        EngineError::Chain(e)
    }
}
