//! In-flight request coalescing: identical specs share one computation.
//!
//! This generalizes the artifact cache's per-key build slots (PR 2) from
//! single artifacts to whole sweeps: the first connection to post a spec
//! becomes the **leader** and runs the sweep; every identical spec that
//! arrives while it is in flight becomes a **follower** that subscribes to
//! the leader's [`SharedRun`] — streaming the same cells as they land and
//! receiving the same final report — without consuming an admission slot
//! or touching the engine. The run key is a hash of the *canonicalized*
//! spec document, so whitespace and formatting differences still coalesce
//! while any semantic difference (including `deadline_ms`) keeps runs
//! separate.

use crate::cache::lock;
use crate::engine::{SolveReport, SweepReport};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Terminal status of a shared run, carried into every summary record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job completed (per-request failures may still be present).
    Ok,
    /// The deadline expired mid-flight; streamed cells stay valid.
    Deadline,
    /// The leader's handler died before finishing (solver bug); followers
    /// are released rather than left waiting forever.
    Error,
}

impl RunStatus {
    /// Stable string used in summary records.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Deadline => "deadline",
            RunStatus::Error => "error",
        }
    }
}

#[derive(Default)]
struct RunState {
    /// Cells in completion order, appended as sweep jobs finish. Stored as
    /// reports (not serialized strings) so each subscriber renders with its
    /// own `stable` flag.
    cells: Vec<SolveReport>,
    done: bool,
    status: Option<RunStatus>,
    report: Option<SweepReport>,
}

/// One in-flight sweep shared between a leader and any followers.
pub struct SharedRun {
    state: Mutex<RunState>,
    cond: Condvar,
}

impl SharedRun {
    fn new() -> Self {
        SharedRun {
            state: Mutex::new(RunState::default()),
            cond: Condvar::new(),
        }
    }

    /// Appends freshly completed cells and wakes subscribers. Called from
    /// sweep worker threads via the leader's observer.
    pub fn push_cells(&self, cells: &[SolveReport]) {
        let mut st = lock(&self.state);
        st.cells.extend_from_slice(cells);
        self.cond.notify_all();
    }

    /// Marks the run finished with its final report and wakes everyone.
    pub fn finish(&self, report: SweepReport, status: RunStatus) {
        let mut st = lock(&self.state);
        st.done = true;
        st.status = Some(status);
        st.report = Some(report);
        self.cond.notify_all();
    }

    /// Blocks until cells beyond `cursor` exist or the run is done;
    /// returns the new cells and whether the run has finished. A follower
    /// loops on this to stream exactly what the leader streams.
    pub fn next_cells(&self, cursor: usize) -> (Vec<SolveReport>, bool) {
        let mut st = lock(&self.state);
        loop {
            if st.cells.len() > cursor || st.done {
                return (st.cells[cursor.min(st.cells.len())..].to_vec(), st.done);
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until the run finishes; returns the final report and status.
    /// The report is `None` only for [`RunStatus::Error`].
    pub fn wait_done(&self) -> (Option<SweepReport>, RunStatus) {
        let mut st = lock(&self.state);
        while !st.done {
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        (st.report.clone(), st.status.unwrap_or(RunStatus::Error))
    }

    fn is_done(&self) -> bool {
        lock(&self.state).done
    }
}

/// How a connection joined the in-flight table.
pub enum Joined {
    /// First arrival: run the sweep (an admission slot was acquired by the
    /// caller's gate closure before the key was published).
    Leader(Arc<SharedRun>),
    /// An identical spec is already in flight: subscribe to it.
    Follower(Arc<SharedRun>),
    /// No identical run in flight and the admission gate is full.
    Rejected,
}

/// The table of in-flight runs, keyed by canonical-spec hash.
#[derive(Default)]
pub struct InflightTable {
    runs: Mutex<HashMap<u64, Arc<SharedRun>>>,
}

impl InflightTable {
    /// Joins the run for `key`, or leads a new one if `admit` grants a
    /// slot. The whole decision happens under the table lock, so a
    /// follower can never attach to a key whose leader was rejected, and
    /// two leaders can never race on one key.
    pub fn join_or_lead(&self, key: u64, admit: impl FnOnce() -> bool) -> Joined {
        let mut runs = lock(&self.runs);
        if let Some(run) = runs.get(&key) {
            return Joined::Follower(run.clone());
        }
        if !admit() {
            return Joined::Rejected;
        }
        let run = Arc::new(SharedRun::new());
        runs.insert(key, run.clone());
        Joined::Leader(run)
    }

    /// Removes a finished run. New identical specs after this start fresh
    /// computations (and hit the warmed artifact cache instead).
    pub fn complete(&self, key: u64) {
        lock(&self.runs).remove(&key);
    }

    /// Number of runs currently in flight.
    pub fn len(&self) -> usize {
        lock(&self.runs).len()
    }

    /// True when no run is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Leader-side cleanup: if the handler unwinds (solver bug, broken pipe
/// panic) before calling [`SharedRun::finish`], this guard finishes the
/// run as [`RunStatus::Error`] and unpublishes the key so followers are
/// released and later identical specs are not poisoned.
pub struct LeaderGuard<'a> {
    table: &'a InflightTable,
    key: u64,
    run: Arc<SharedRun>,
}

impl<'a> LeaderGuard<'a> {
    /// Arms the guard for a leader of `key`.
    pub fn new(table: &'a InflightTable, key: u64, run: Arc<SharedRun>) -> Self {
        LeaderGuard { table, key, run }
    }

    /// The guarded run.
    pub fn run(&self) -> &Arc<SharedRun> {
        &self.run
    }

    /// Publishes the final report, releases followers, and unpublishes the
    /// key — the normal completion path.
    pub fn finish(self, report: SweepReport, status: RunStatus) {
        self.run.finish(report, status);
        self.table.complete(self.key);
        std::mem::forget(self);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.run.is_done() {
            self.run.finish(SweepReport::default(), RunStatus::Error);
        }
        self.table.complete(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_identical_key_becomes_follower() {
        let table = InflightTable::default();
        let admits = AtomicUsize::new(0);
        let admit = || {
            admits.fetch_add(1, Ordering::SeqCst);
            true
        };
        let Joined::Leader(run) = table.join_or_lead(7, admit) else {
            panic!("first arrival must lead");
        };
        let Joined::Follower(follower) = table.join_or_lead(7, admit) else {
            panic!("identical in-flight key must coalesce");
        };
        assert!(Arc::ptr_eq(&run, &follower));
        assert_eq!(admits.load(Ordering::SeqCst), 1, "followers skip admission");
        // A different key needs its own slot.
        assert!(matches!(table.join_or_lead(8, || false), Joined::Rejected));
        assert_eq!(table.len(), 1);
        table.complete(7);
        assert_eq!(table.len(), 0);
        // After completion the key leads again (fresh computation).
        assert!(matches!(table.join_or_lead(7, || true), Joined::Leader(_)));
    }

    #[test]
    fn followers_stream_cells_then_final_report() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(1, || true) else {
            panic!()
        };
        let follower = run.clone();
        let t = std::thread::spawn(move || {
            let mut seen = 0;
            loop {
                let (cells, done) = follower.next_cells(seen);
                seen += cells.len();
                if done {
                    let (report, status) = follower.wait_done();
                    return (seen, report.is_some(), status);
                }
            }
        });
        // No real SolveReport constructor shortcut here — empty pushes
        // still exercise wake-ups; the done flag carries the report.
        run.push_cells(&[]);
        run.finish(SweepReport::default(), RunStatus::Ok);
        let (seen, has_report, status) = t.join().unwrap();
        assert_eq!(seen, 0);
        assert!(has_report);
        assert_eq!(status, RunStatus::Ok);
    }

    #[test]
    fn leader_guard_releases_followers_on_unwind() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(3, || true) else {
            panic!()
        };
        {
            let _guard = LeaderGuard::new(&table, 3, run.clone());
            // dropped without finish() — simulating a panicking handler
        }
        let (report, status) = run.wait_done();
        assert_eq!(status, RunStatus::Error);
        assert!(report.is_none() || report.unwrap().reports.is_empty());
        assert_eq!(table.len(), 0, "the key must be unpublished");
    }
}
