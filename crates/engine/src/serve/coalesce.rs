//! In-flight request coalescing: identical specs share one computation.
//!
//! This generalizes the artifact cache's per-key build slots (PR 2) from
//! single artifacts to whole sweeps: the first connection to post a spec
//! becomes the **leader** and runs the sweep; every identical spec that
//! arrives while it is in flight becomes a **follower** that subscribes to
//! the leader's [`SharedRun`] — streaming the same cells as they land and
//! receiving the same final report — without consuming an admission slot
//! or touching the engine. The run key is a hash of the *canonicalized*
//! spec document, so whitespace and formatting differences still coalesce
//! while any semantic difference (including `deadline_ms`) keeps runs
//! separate.
//!
//! Runs also survive their leader: when a leader unwinds before finishing
//! and the run still has a retry budget and at least one subscribed
//! follower, the dying [`LeaderGuard`] flags a **promotion** instead of
//! failing the run — the first follower to observe it (via
//! [`SharedRun::follow`] / [`SharedRun::wait_done_or_promote`]) retakes
//! leadership and recomputes. Followers are never stranded: a run with no
//! claimable promotion finishes as [`RunStatus::Error`], and the last
//! follower abandoning an unclaimed promotion is told so it can fail the
//! run itself.

use crate::cache::lock;
use crate::engine::{SolveReport, SweepReport};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Terminal status of a shared run, carried into every summary record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every job completed (per-request failures may still be present).
    Ok,
    /// The deadline expired mid-flight; streamed cells stay valid.
    Deadline,
    /// The leader's handler died before finishing (solver bug); followers
    /// are released rather than left waiting forever.
    Error,
}

impl RunStatus {
    /// Stable string used in summary records.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Deadline => "deadline",
            RunStatus::Error => "error",
        }
    }
}

#[derive(Default)]
struct RunState {
    /// Cells in completion order, appended as sweep jobs finish. Stored as
    /// reports (not serialized strings) so each subscriber renders with its
    /// own `stable` flag.
    cells: Vec<SolveReport>,
    done: bool,
    status: Option<RunStatus>,
    report: Option<SweepReport>,
    /// Followers currently attached (able to claim a promotion).
    subscribers: usize,
    /// Leader re-elections still allowed for this run.
    retries_left: u32,
    /// A leader died with retries remaining; the first subscriber to
    /// observe this claims it and retakes leadership.
    promotion_pending: bool,
}

/// What a promotion-aware follower observed (see [`SharedRun::follow`]).
pub enum FollowEvent {
    /// New cells past the follower's cursor (possibly empty) and whether
    /// the run has finished.
    Cells(Vec<SolveReport>, bool),
    /// The leader died with retries remaining and this subscriber won the
    /// promotion race: it must retake leadership and recompute. The cells
    /// already published stay valid — the recomputation is deterministic,
    /// so re-pushed cells are bitwise duplicates, and the final report is
    /// authoritative.
    Promoted,
}

/// One in-flight sweep shared between a leader and any followers.
pub struct SharedRun {
    state: Mutex<RunState>,
    cond: Condvar,
}

impl SharedRun {
    fn new(leader_retries: u32) -> Self {
        SharedRun {
            state: Mutex::new(RunState {
                retries_left: leader_retries,
                ..RunState::default()
            }),
            cond: Condvar::new(),
        }
    }

    /// Appends freshly completed cells and wakes subscribers. Called from
    /// sweep worker threads via the leader's observer.
    pub fn push_cells(&self, cells: &[SolveReport]) {
        let mut st = lock(&self.state);
        st.cells.extend_from_slice(cells);
        self.cond.notify_all();
    }

    /// Marks the run finished with its final report and wakes everyone.
    pub fn finish(&self, report: SweepReport, status: RunStatus) {
        let mut st = lock(&self.state);
        st.done = true;
        st.status = Some(status);
        st.report = Some(report);
        self.cond.notify_all();
    }

    /// Blocks until cells beyond `cursor` exist or the run is done;
    /// returns the new cells and whether the run has finished. A follower
    /// loops on this to stream exactly what the leader streams.
    pub fn next_cells(&self, cursor: usize) -> (Vec<SolveReport>, bool) {
        let mut st = lock(&self.state);
        loop {
            if st.cells.len() > cursor || st.done {
                return (st.cells[cursor.min(st.cells.len())..].to_vec(), st.done);
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until the run finishes; returns the final report and status.
    /// The report is `None` only for [`RunStatus::Error`].
    pub fn wait_done(&self) -> (Option<SweepReport>, RunStatus) {
        let mut st = lock(&self.state);
        while !st.done {
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        (st.report.clone(), st.status.unwrap_or(RunStatus::Error))
    }

    /// The promotion-aware variant of [`SharedRun::next_cells`]: blocks
    /// until there is something past `cursor`, the run finishes, or a
    /// pending promotion is claimed by this caller. Only subscribed
    /// followers should call this — claiming a promotion obligates the
    /// caller to retake leadership.
    pub fn follow(&self, cursor: usize) -> FollowEvent {
        let mut st = lock(&self.state);
        loop {
            if st.promotion_pending {
                st.promotion_pending = false;
                return FollowEvent::Promoted;
            }
            if st.cells.len() > cursor || st.done {
                return FollowEvent::Cells(
                    st.cells[cursor.min(st.cells.len())..].to_vec(),
                    st.done,
                );
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The promotion-aware variant of [`SharedRun::wait_done`] for
    /// followers that don't stream cells: `None` means this caller claimed
    /// a pending promotion and must retake leadership.
    pub fn wait_done_or_promote(&self) -> Option<(Option<SweepReport>, RunStatus)> {
        let mut st = lock(&self.state);
        loop {
            if st.promotion_pending {
                st.promotion_pending = false;
                return None;
            }
            if st.done {
                return Some((st.report.clone(), st.status.unwrap_or(RunStatus::Error)));
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Counts a follower in. Claimable promotions require at least one
    /// subscriber, so the count must cover every attached follower —
    /// [`InflightTable::join_or_lead`] subscribes under the table lock
    /// before the follower is even returned.
    pub fn subscribe(&self) {
        lock(&self.state).subscribers += 1;
    }

    /// Counts a follower out. Returns `true` if this was the last
    /// subscriber leaving behind an *unclaimed* promotion — the caller
    /// must then finish the run as [`RunStatus::Error`] and unpublish the
    /// key, or the run would strand (nobody left to recompute, key still
    /// blocking fresh leaders).
    pub fn unsubscribe(&self) -> bool {
        let mut st = lock(&self.state);
        st.subscribers = st.subscribers.saturating_sub(1);
        st.promotion_pending && st.subscribers == 0 && !st.done
    }

    /// Called when a leader unwinds: offers the retry to the followers.
    /// Succeeds (and flags a pending promotion) only when retries remain
    /// and somebody is subscribed to claim it; on success the key must
    /// stay published so the promoted follower re-leads the same run.
    fn offer_retry(&self) -> bool {
        let mut st = lock(&self.state);
        if st.done || st.retries_left == 0 || st.subscribers == 0 {
            return false;
        }
        st.retries_left -= 1;
        st.promotion_pending = true;
        self.cond.notify_all();
        true
    }

    fn is_done(&self) -> bool {
        lock(&self.state).done
    }
}

/// How a connection joined the in-flight table.
pub enum Joined {
    /// First arrival: run the sweep (an admission slot was acquired by the
    /// caller's gate closure before the key was published).
    Leader(Arc<SharedRun>),
    /// An identical spec is already in flight: subscribe to it.
    Follower(Arc<SharedRun>),
    /// No identical run in flight and the admission gate is full.
    Rejected,
}

/// The table of in-flight runs, keyed by canonical-spec hash.
#[derive(Default)]
pub struct InflightTable {
    runs: Mutex<HashMap<u64, Arc<SharedRun>>>,
}

impl InflightTable {
    /// Joins the run for `key`, or leads a new one (with `leader_retries`
    /// re-elections budgeted) if `admit` grants a slot. The whole decision
    /// happens under the table lock, so a follower can never attach to a
    /// key whose leader was rejected, two leaders can never race on one
    /// key, and the follower is subscribed (promotion-eligible) before a
    /// dying leader could possibly look for one.
    pub fn join_or_lead(
        &self,
        key: u64,
        leader_retries: u32,
        admit: impl FnOnce() -> bool,
    ) -> Joined {
        regenr_failpoint::failpoint!("serve-coalesce");
        let mut runs = lock(&self.runs);
        if let Some(run) = runs.get(&key) {
            run.subscribe();
            return Joined::Follower(run.clone());
        }
        if !admit() {
            return Joined::Rejected;
        }
        let run = Arc::new(SharedRun::new(leader_retries));
        runs.insert(key, run.clone());
        Joined::Leader(run)
    }

    /// Removes a finished run. New identical specs after this start fresh
    /// computations (and hit the warmed artifact cache instead).
    pub fn complete(&self, key: u64) {
        lock(&self.runs).remove(&key);
    }

    /// Number of runs currently in flight.
    pub fn len(&self) -> usize {
        lock(&self.runs).len()
    }

    /// True when no run is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Leader-side cleanup: if the handler unwinds (solver bug, broken pipe
/// panic) before calling [`SharedRun::finish`], this guard finishes the
/// run as [`RunStatus::Error`] and unpublishes the key so followers are
/// released and later identical specs are not poisoned.
pub struct LeaderGuard<'a> {
    table: &'a InflightTable,
    key: u64,
    run: Arc<SharedRun>,
}

impl<'a> LeaderGuard<'a> {
    /// Arms the guard for a leader of `key`.
    pub fn new(table: &'a InflightTable, key: u64, run: Arc<SharedRun>) -> Self {
        LeaderGuard { table, key, run }
    }

    /// The guarded run.
    pub fn run(&self) -> &Arc<SharedRun> {
        &self.run
    }

    /// Publishes the final report, releases followers, and unpublishes the
    /// key — the normal completion path.
    pub fn finish(self, report: SweepReport, status: RunStatus) {
        self.run.finish(report, status);
        self.table.complete(self.key);
        std::mem::forget(self);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        // A dropped (not `finish`ed) guard means the leader unwound. If
        // retries remain and a follower is subscribed, hand the run over
        // instead of failing it: the key stays published and the promoted
        // follower re-leads under a fresh guard.
        if self.run.offer_retry() {
            return;
        }
        if !self.run.is_done() {
            self.run.finish(SweepReport::default(), RunStatus::Error);
        }
        self.table.complete(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_identical_key_becomes_follower() {
        let table = InflightTable::default();
        let admits = AtomicUsize::new(0);
        let admit = || {
            admits.fetch_add(1, Ordering::SeqCst);
            true
        };
        let Joined::Leader(run) = table.join_or_lead(7, 0, admit) else {
            panic!("first arrival must lead");
        };
        let Joined::Follower(follower) = table.join_or_lead(7, 0, admit) else {
            panic!("identical in-flight key must coalesce");
        };
        assert!(Arc::ptr_eq(&run, &follower));
        assert_eq!(admits.load(Ordering::SeqCst), 1, "followers skip admission");
        // A different key needs its own slot.
        assert!(matches!(
            table.join_or_lead(8, 0, || false),
            Joined::Rejected
        ));
        assert_eq!(table.len(), 1);
        table.complete(7);
        assert_eq!(table.len(), 0);
        // After completion the key leads again (fresh computation).
        assert!(matches!(
            table.join_or_lead(7, 0, || true),
            Joined::Leader(_)
        ));
    }

    #[test]
    fn followers_stream_cells_then_final_report() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(1, 0, || true) else {
            panic!()
        };
        let follower = run.clone();
        let t = std::thread::spawn(move || {
            let mut seen = 0;
            loop {
                let (cells, done) = follower.next_cells(seen);
                seen += cells.len();
                if done {
                    let (report, status) = follower.wait_done();
                    return (seen, report.is_some(), status);
                }
            }
        });
        // No real SolveReport constructor shortcut here — empty pushes
        // still exercise wake-ups; the done flag carries the report.
        run.push_cells(&[]);
        run.finish(SweepReport::default(), RunStatus::Ok);
        let (seen, has_report, status) = t.join().unwrap();
        assert_eq!(seen, 0);
        assert!(has_report);
        assert_eq!(status, RunStatus::Ok);
    }

    #[test]
    fn leader_guard_releases_followers_on_unwind() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(3, 0, || true) else {
            panic!()
        };
        {
            let _guard = LeaderGuard::new(&table, 3, run.clone());
            // dropped without finish() — simulating a panicking handler
        }
        let (report, status) = run.wait_done();
        assert_eq!(status, RunStatus::Error);
        assert!(report.is_none() || report.unwrap().reports.is_empty());
        assert_eq!(table.len(), 0, "the key must be unpublished");
    }

    #[test]
    fn dying_leader_promotes_a_subscribed_follower() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(5, 2, || true) else {
            panic!()
        };
        let Joined::Follower(follower) = table.join_or_lead(5, 2, || true) else {
            panic!()
        };
        {
            let _guard = LeaderGuard::new(&table, 5, run.clone());
            // dropped without finish() — leader died
        }
        assert!(
            !run.is_done(),
            "with retries and a subscriber the run must not be failed"
        );
        assert_eq!(table.len(), 1, "the key must stay published for re-lead");
        let FollowEvent::Promoted = follower.follow(0) else {
            panic!("the subscribed follower must be promoted");
        };
        // The promoted follower re-leads and completes the run normally.
        let guard = LeaderGuard::new(&table, 5, follower.clone());
        guard.finish(SweepReport::default(), RunStatus::Ok);
        let (report, status) = run.wait_done();
        assert_eq!(status, RunStatus::Ok);
        assert!(report.is_some());
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn promotion_is_claimed_exactly_once() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(6, 1, || true) else {
            panic!()
        };
        let Joined::Follower(a) = table.join_or_lead(6, 1, || true) else {
            panic!()
        };
        let Joined::Follower(_b) = table.join_or_lead(6, 1, || true) else {
            panic!()
        };
        drop(LeaderGuard::new(&table, 6, run.clone()));
        assert!(matches!(a.follow(0), FollowEvent::Promoted));
        // The second follower must block on cells, not double-claim: finish
        // the run and verify it observes completion instead.
        run.finish(SweepReport::default(), RunStatus::Ok);
        let (report, status) = run.wait_done();
        assert!(report.is_some());
        assert_eq!(status, RunStatus::Ok);
        table.complete(6);
    }

    #[test]
    fn leader_without_followers_or_retries_fails_the_run() {
        let table = InflightTable::default();
        // Retries budgeted but nobody subscribed: the retry has no one to
        // run it, so the run fails instead of stranding the key.
        let Joined::Leader(run) = table.join_or_lead(9, 3, || true) else {
            panic!()
        };
        drop(LeaderGuard::new(&table, 9, run.clone()));
        assert_eq!(run.wait_done().1, RunStatus::Error);
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn last_unsubscriber_reports_an_unclaimed_promotion() {
        let table = InflightTable::default();
        let Joined::Leader(run) = table.join_or_lead(11, 1, || true) else {
            panic!()
        };
        let Joined::Follower(follower) = table.join_or_lead(11, 1, || true) else {
            panic!()
        };
        drop(LeaderGuard::new(&table, 11, run.clone()));
        // The only follower leaves without claiming the promotion — it must
        // learn it is abandoning the run so it can fail it cleanly.
        assert!(follower.unsubscribe(), "unclaimed promotion must surface");
        run.finish(SweepReport::default(), RunStatus::Error);
        table.complete(11);
        assert_eq!(run.wait_done().1, RunStatus::Error);
    }
}
