//! `regenr serve` — the persistent solver service.
//!
//! A hand-rolled HTTP/1.1 server over `std::net` (same no-dependency
//! discipline as the no-serde [`crate::json`] layer) that keeps one
//! [`Engine`] — artifact cache, worker pool, warmed workspaces — alive
//! across requests, so the second client asking for a `UR(1e5h)` sweep is
//! nearly all cache hits. Endpoints:
//!
//! | endpoint               | behavior                                        |
//! |------------------------|-------------------------------------------------|
//! | `POST /sweep`          | run the spec, stream per-cell results as NDJSON |
//! |                        | (chunked), final `"record":"summary"` line      |
//! | `POST /sweep/report`   | run the spec, return the full report document — |
//! |                        | `?stable=1` is byte-for-byte what               |
//! |                        | `regenr sweep <spec> --stable` prints           |
//! | `GET /healthz`         | liveness                                        |
//! | `GET /stats`           | serve counters + cache counters                 |
//! | `POST /shutdown`       | graceful drain (SIGTERM does the same)          |
//!
//! Three server-grade behaviors are the point, not extras:
//!
//! 1. **Coalescing** ([`coalesce`]): identical specs in flight share one
//!    computation — followers stream the leader's cells and count toward
//!    `coalesced`, not toward the engine.
//! 2. **Admission control + deadlines**: at most `max_inflight` distinct
//!    sweeps compute concurrently; excess distinct specs get `429` with a
//!    structured body instead of queuing unboundedly. A `"deadline_ms"`
//!    spec field cancels a sweep cleanly between jobs — cells already
//!    streamed stay valid and the summary says `"status":"deadline"`.
//! 3. **Graceful lifecycle**: `POST /shutdown` or SIGTERM stops accepting,
//!    drains in-flight connections, and returns from [`Server::run`]; the
//!    cache and pool live as long as the server, not a request.
//! 4. **Fault containment**: a leader that unwinds mid-sweep promotes a
//!    subscribed follower to recompute (up to
//!    [`ServeConfig::leader_retries`] re-elections per run) instead of
//!    erroring every subscriber; handler panics answer `500`, exhausted
//!    runs answer `503` — infrastructure faults never masquerade as model
//!    errors, which keep their structured `4xx` bodies.
//!
//! Engine-wide knobs (`threads`, `kernel`, `backend`, `theta`, dispatch
//! thresholds, `cache`) are fixed at server startup — a spec carrying them
//! is rejected with `400`, because silently serving it with different
//! options would produce reports that diverge from the same spec run
//! offline. Per-model fields (`epsilon`, `method`, `horizons`, `measures`,
//! `regen_state`) remain fully per-request.

pub mod coalesce;
pub mod http;

use crate::cache::{lock, CacheConfig};
use crate::engine::{Engine, EngineOptions, SolveReport, SweepProgress, SweepReport};
use crate::json::Json;
use crate::spec::{cache_stats_json, cell_to_json, failure_to_json, SweepSpec};
use coalesce::{FollowEvent, InflightTable, Joined, LeaderGuard, RunStatus, SharedRun};
use http::{read_request, write_response, Chunked, HttpError, Request};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration (CLI: `regenr serve [--addr] [--threads]
/// [--max-inflight]`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`HOST:PORT`; port `0` picks a free port).
    pub addr: String,
    /// Sweep worker threads per request (`0` = available parallelism);
    /// becomes the shared engine's [`EngineOptions::threads`].
    pub threads: usize,
    /// Maximum distinct sweeps computing concurrently; excess load is
    /// rejected with `429`. Coalesced followers don't consume slots.
    pub max_inflight: usize,
    /// Request body limit (`413` beyond it).
    pub max_body_bytes: usize,
    /// Artifact-cache capacity. A long-running service must bound its
    /// cache; the default keeps 256 models / 512 MiB under LRU eviction.
    pub cache: CacheConfig,
    /// Leader re-elections budgeted per coalesced run: when a leader's
    /// handler unwinds mid-sweep this many times, a subscribed follower is
    /// promoted to recompute instead of every subscriber getting an error.
    pub leader_retries: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            threads: 0,
            max_inflight: 4,
            max_body_bytes: 16 * 1024 * 1024,
            cache: CacheConfig {
                max_entries: Some(256),
                max_bytes: Some(512 * 1024 * 1024),
            },
            leader_retries: 2,
        }
    }
}

/// Monotonic serve counters, surfaced in every summary record and by
/// `GET /stats` (the [`crate::ExecStats`]/[`crate::CacheStats`] of the
/// serve layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests parsed off the wire (all endpoints).
    pub requests: u64,
    /// Sweep computations actually started (coalesced requests excluded).
    pub sweeps: u64,
    /// Requests served by subscribing to an identical in-flight sweep.
    pub coalesced: u64,
    /// Requests rejected with `429` by admission control.
    pub rejected: u64,
    /// Sweeps cancelled by their deadline.
    pub deadline_expired: u64,
    /// Requests rejected with `4xx` parse/validation errors.
    pub bad_requests: u64,
    /// NDJSON cell records written to clients (all connections).
    pub cells_streamed: u64,
    /// High-water mark of concurrently computing sweeps.
    pub inflight_highwater: u64,
    /// Followers promoted to leader after a leader died mid-sweep.
    pub promotions: u64,
    /// Request handlers that panicked (answered `500`; infrastructure
    /// faults, never request errors).
    pub handler_panics: u64,
}

#[derive(Default)]
struct ServeCounters {
    requests: AtomicU64,
    sweeps: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    bad_requests: AtomicU64,
    cells_streamed: AtomicU64,
    inflight_highwater: AtomicU64,
    promotions: AtomicU64,
    handler_panics: AtomicU64,
}

impl ServeCounters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            cells_streamed: self.cells_streamed.load(Ordering::Relaxed),
            inflight_highwater: self.inflight_highwater.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
        }
    }
}

/// Serializes the serve counters (summary records and `GET /stats`).
pub fn serve_stats_json(s: &ServeStats) -> Json {
    Json::Obj(vec![
        ("requests".into(), Json::Num(s.requests as f64)),
        ("sweeps".into(), Json::Num(s.sweeps as f64)),
        ("coalesced".into(), Json::Num(s.coalesced as f64)),
        ("rejected".into(), Json::Num(s.rejected as f64)),
        (
            "deadline_expired".into(),
            Json::Num(s.deadline_expired as f64),
        ),
        ("bad_requests".into(), Json::Num(s.bad_requests as f64)),
        ("cells_streamed".into(), Json::Num(s.cells_streamed as f64)),
        (
            "inflight_highwater".into(),
            Json::Num(s.inflight_highwater as f64),
        ),
        ("promotions".into(), Json::Num(s.promotions as f64)),
        ("handler_panics".into(), Json::Num(s.handler_panics as f64)),
    ])
}

/// The admission gate: a bounded count of concurrently computing sweeps.
/// `Mutex<usize>` rather than lock-free — admission happens once per
/// sweep, under the in-flight table's decision, never on a hot path.
struct Gate {
    max: usize,
    cur: Mutex<usize>,
}

impl Gate {
    fn admit(&self, counters: &ServeCounters) -> bool {
        let mut cur = lock(&self.cur);
        if *cur >= self.max {
            return false;
        }
        *cur += 1;
        counters
            .inflight_highwater
            .fetch_max(*cur as u64, Ordering::Relaxed);
        true
    }

    /// Admits unconditionally — for a promoted follower retaking a dead
    /// leader's run. The dead leader's slot is released as its handler
    /// unwinds, but the promotion must never lose a race against that
    /// release: transiently exceeding `max` by the in-flight promotions is
    /// the lesser evil versus rejecting the retry (stranding followers).
    fn admit_forced(&self, counters: &ServeCounters) {
        let mut cur = lock(&self.cur);
        *cur += 1;
        counters
            .inflight_highwater
            .fetch_max(*cur as u64, Ordering::Relaxed);
    }

    fn release(&self) {
        *lock(&self.cur) -= 1;
    }

    fn inflight(&self) -> usize {
        *lock(&self.cur)
    }
}

/// Releases the leader's admission slot on scope exit (including unwind).
struct AdmitRelease<'a>(&'a Gate);

impl Drop for AdmitRelease<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// SIGTERM/SIGINT land here; the accept loop polls it. Registered through
/// a direct `signal(2)` FFI declaration — the workspace has no `libc`
/// crate, and an atomic store is async-signal-safe.
static TERM_SIGNAL: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod signal {
    use super::TERM_SIGNAL;
    use std::sync::atomic::Ordering;

    extern "C" fn on_term(_sig: i32) {
        TERM_SIGNAL.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }
}

/// The persistent solver service. One engine (cache + pool) for the whole
/// process; connections are handled on their own threads; sweeps coalesce
/// through the in-flight table and compute under the admission gate.
pub struct Server {
    engine: Engine,
    table: InflightTable,
    gate: Gate,
    counters: ServeCounters,
    cfg: ServeConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Service-lifetime aggregate of every sweep's [`RobustnessStats`].
    robust: Mutex<crate::engine::RobustnessStats>,
}

impl Server {
    /// Binds the listener and builds the shared engine. The returned
    /// server is inert until [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Arc<Server>> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let options = EngineOptions {
            threads: cfg.threads,
            ..EngineOptions::default()
        };
        Ok(Arc::new(Server {
            engine: Engine::with_cache_config(options, cfg.cache),
            table: InflightTable::default(),
            gate: Gate {
                max: cfg.max_inflight.max(1),
                cur: Mutex::new(0),
            },
            counters: ServeCounters::default(),
            cfg,
            listener,
            local_addr,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            robust: Mutex::new(crate::engine::RobustnessStats::default()),
        }))
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (cache counters for tests and `GET /stats`).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Current serve counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Service-lifetime robustness counters (summed over every sweep this
    /// server computed, including leader retries and promoted recomputes).
    pub fn robustness(&self) -> crate::engine::RobustnessStats {
        *lock(&self.robust)
    }

    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// connections, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || TERM_SIGNAL.load(Ordering::SeqCst)
    }

    /// Accepts connections until shutdown/SIGTERM, then drains. Each
    /// connection runs on its own thread; compute concurrency is bounded
    /// by the admission gate (and the shared worker pool), not by the
    /// connection count, so coalesced storms can be much wider than
    /// `max_inflight`.
    pub fn run(self: &Arc<Self>) -> std::io::Result<()> {
        #[cfg(unix)]
        signal::install();
        self.listener.set_nonblocking(true)?;
        while !self.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let server = Arc::clone(self);
                    server.active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        // Decrement on unwind too: a panicking handler
                        // must not wedge the drain loop forever.
                        struct Active(Arc<Server>);
                        impl Drop for Active {
                            fn drop(&mut self) {
                                self.0.active.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _active = Active(Arc::clone(&server));
                        handle_connection(&server, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: in-flight sweeps finish and their connections close; new
        // connections are no longer accepted.
        while self.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// 64-bit FNV-1a over the canonicalized spec document — the coalescing
/// key. Canonicalization (parse → [`crate::fingerprint::canonicalize_spec`]
/// → compact re-serialize) makes whitespace, float spelling and compose
/// component order irrelevant while any semantic difference (including
/// `deadline_ms`) separates runs.
fn spec_key(doc: &Json) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in crate::fingerprint::canonicalize_spec(doc)
        .to_string()
        .bytes()
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn error_body(code: &str, detail: String) -> String {
    Json::Obj(vec![
        ("error".into(), Json::Str(code.into())),
        ("detail".into(), Json::Str(detail)),
    ])
    .to_string()
}

/// Engine-wide spec knobs that are fixed at server startup. Serving a spec
/// that sets them would silently produce reports diverging from the same
/// spec run offline, so they are rejected loudly instead.
const FIXED_ENGINE_KEYS: &[&str] = &[
    "threads",
    "kernel",
    "backend",
    "rhs_block",
    "index_width",
    "theta",
    "small_lambda_t",
    "tiny_lambda_t",
    "adaptive_min_states",
    "cache",
];

/// Parses and validates a posted spec; returns the spec and its
/// coalescing key, or a ready-to-send `(status, body)` error.
fn parse_posted_spec(body: &[u8]) -> Result<(SweepSpec, u64), (u16, String)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| (400, error_body("bad_encoding", "body is not UTF-8".into())))?;
    let doc = Json::parse(text).map_err(|e| (400, error_body("bad_json", e.to_string())))?;
    for key in FIXED_ENGINE_KEYS {
        if doc.get(key).is_some() {
            return Err((
                400,
                error_body(
                    "fixed_engine_option",
                    format!(
                        "spec field {key:?} configures the engine and is fixed at server \
                         startup; remove it (per-model fields stay per-request)"
                    ),
                ),
            ));
        }
    }
    let spec = SweepSpec::from_json(&doc).map_err(|e| (400, error_body(spec_error_code(&e), e)))?;
    let key = spec_key(&doc);
    Ok((spec, key))
}

/// Names a spec error for the structured `"error"` field. Model-*build*
/// failures (a compose model blowing its `max_states` cap, a component
/// graph that cannot be compiled) get their own codes so a client can
/// tell "your model is too big" from "your JSON is wrong" — all of them
/// are request properties (`4xx`), never infrastructure (`5xx`). The
/// matched phrases are the `Display` texts of our own error types, pinned
/// by `posted_spec_validation_maps_to_http_errors`.
fn spec_error_code(detail: &str) -> &'static str {
    if detail.contains("state space exceeded the cap") {
        "state_space_exceeded"
    } else if detail.contains("failed to build") {
        "model_build_failed"
    } else {
        "bad_spec"
    }
}

/// The sweep observer a leader computes under: cells are published to the
/// shared run (leader and followers stream from it), and the deadline is
/// polled between jobs.
struct RunObserver<'a> {
    run: &'a SharedRun,
    deadline: Option<Instant>,
}

impl SweepProgress for RunObserver<'_> {
    fn cancelled(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn on_reports(&self, reports: &[SolveReport]) {
        self.run.push_cells(reports);
    }
}

/// Builds the final `"record":"summary"` line. Stable mode keeps only the
/// deterministic fields; the full form carries the serve counters
/// (coalesced/rejected/deadline/high-water — the satellite counters) and
/// the cache snapshot.
fn summary_json(
    report: &SweepReport,
    status: RunStatus,
    coalesced: bool,
    stable: bool,
    stats: &ServeStats,
) -> Json {
    let mut fields = vec![
        ("record".into(), Json::Str("summary".into())),
        ("status".into(), Json::Str(status.as_str().into())),
        ("cells".into(), Json::Num(report.reports.len() as f64)),
        ("coalesced".into(), Json::Bool(coalesced)),
        (
            "failures".into(),
            Json::Arr(report.failures.iter().map(failure_to_json).collect()),
        ),
    ];
    if !stable {
        fields.push((
            "cancelled_jobs".into(),
            Json::Num(report.cancelled_jobs as f64),
        ));
        fields.push(("serve".into(), serve_stats_json(stats)));
        fields.push(("cache".into(), cache_stats_json(&report.cache)));
        fields.push(("wall_seconds".into(), Json::Num(report.wall.as_secs_f64())));
    }
    Json::Obj(fields)
}

/// Writes one batch of cell records to a client.
fn write_cells(
    server: &Server,
    cells: &[SolveReport],
    chunked: &mut Chunked<'_>,
    stable: bool,
) -> std::io::Result<()> {
    for cell in cells {
        regenr_failpoint::failpoint!("serve-write");
        let Json::Obj(mut fields) = cell_to_json(cell, stable) else {
            unreachable!("cell_to_json returns an object");
        };
        fields.insert(0, ("record".into(), Json::Str("cell".into())));
        chunked.record(&Json::Obj(fields).to_string())?;
        server
            .counters
            .cells_streamed
            .fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Streams a shared run's cells from `cursor` until the run finishes;
/// returns the final cursor. Promotion-blind — leaders (original and
/// promoted) stream through this.
fn stream_cells_from(
    server: &Server,
    run: &SharedRun,
    chunked: &mut Chunked<'_>,
    stable: bool,
    mut cursor: usize,
) -> std::io::Result<usize> {
    loop {
        let (cells, done) = run.next_cells(cursor);
        cursor += cells.len();
        write_cells(server, &cells, chunked, stable)?;
        if done {
            return Ok(cursor);
        }
    }
}

/// Writes the final `"record":"summary"` line for a finished run.
fn write_summary(
    server: &Server,
    run: &SharedRun,
    chunked: &mut Chunked<'_>,
    stable: bool,
    coalesced: bool,
) -> std::io::Result<()> {
    let (report, status) = run.wait_done();
    let report = report.unwrap_or_default();
    let summary = summary_json(
        &report,
        status,
        coalesced,
        stable,
        &server.counters.snapshot(),
    );
    chunked.record(&summary.to_string())
}

/// Runs a sweep as the leader of `run`: optional stall (load-testing
/// knob), the observed sweep with deadline polling, then publication of
/// the final report to followers. Returns nothing — results flow through
/// the shared run.
fn compute_as_leader(server: &Server, spec: &SweepSpec, guard: LeaderGuard<'_>) {
    if let Some(ms) = spec.debug_stall_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    // After the stall, so a chaos spec using `debug_stall_ms` can gather
    // followers before the injected leader death.
    regenr_failpoint::failpoint!("serve-leader");
    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let observer = RunObserver {
        run: guard.run(),
        deadline,
    };
    let report = server.engine.sweep_observed(&spec.requests, &observer);
    lock(&server.robust).merge(&report.robustness);
    let status = if report.cancelled_jobs > 0 && observer.cancelled() {
        server
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        RunStatus::Deadline
    } else {
        RunStatus::Ok
    };
    guard.finish(report, status);
}

/// Computes as leader on a scoped thread while streaming the shared run's
/// cells (from `cursor`) and the final summary to this connection. A
/// compute panic is contained *here*, not propagated: the dying
/// [`LeaderGuard`] either promotes a follower — whose recomputation this
/// same loop keeps streaming — or fails the run, and either way this
/// client still receives a complete, well-terminated body.
#[allow(clippy::too_many_arguments)]
fn lead_and_stream(
    server: &Server,
    spec: &SweepSpec,
    guard: LeaderGuard<'_>,
    run: &SharedRun,
    chunked: &mut Chunked<'_>,
    stable: bool,
    cursor: usize,
    coalesced: bool,
) {
    let streamed = std::thread::scope(|s| {
        s.spawn(|| {
            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compute_as_leader(server, spec, guard)
            }));
            if computed.is_err() {
                server
                    .counters
                    .handler_panics
                    .fetch_add(1, Ordering::Relaxed);
            }
        });
        stream_cells_from(server, run, chunked, stable, cursor)
    });
    if streamed.is_ok() {
        let _ = write_summary(server, run, chunked, stable, coalesced);
    }
}

/// Follower-side cleanup: unsubscribes on scope exit (including unwind).
/// If this abandons the run's last chance at a promoted leader, it fails
/// the run and unpublishes the key so every other follower is released —
/// nobody is left waiting on a run no one can finish.
struct Subscription<'a> {
    table: &'a InflightTable,
    key: u64,
    run: &'a Arc<SharedRun>,
    active: bool,
}

impl<'a> Subscription<'a> {
    fn new(table: &'a InflightTable, key: u64, run: &'a Arc<SharedRun>) -> Self {
        // join_or_lead already subscribed us under the table lock.
        Subscription {
            table,
            key,
            run,
            active: true,
        }
    }

    fn end(&mut self) {
        if std::mem::take(&mut self.active) && self.run.unsubscribe() {
            self.run.finish(SweepReport::default(), RunStatus::Error);
            self.table.complete(self.key);
        }
    }
}

impl Drop for Subscription<'_> {
    fn drop(&mut self) {
        self.end();
    }
}

/// `POST /sweep`: chunked NDJSON streaming.
fn handle_sweep_stream(server: &Server, stream: &mut TcpStream, req: &Request) {
    let stable = req.query_flag("stable");
    let (spec, key) = match parse_posted_spec(&req.body) {
        Ok(parsed) => parsed,
        Err((status, body)) => {
            server.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(stream, status, &body);
            return;
        }
    };
    match server
        .table
        .join_or_lead(key, server.cfg.leader_retries, || {
            server.gate.admit(&server.counters)
        }) {
        Joined::Rejected => reject_overloaded(server, stream),
        Joined::Follower(run) => {
            server.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut sub = Subscription::new(&server.table, key, &run);
            let Ok(mut chunked) = Chunked::start(stream) else {
                return; // sub drop unsubscribes (and fails a stranding run)
            };
            let mut cursor = 0usize;
            loop {
                match run.follow(cursor) {
                    FollowEvent::Cells(cells, done) => {
                        cursor += cells.len();
                        if write_cells(server, &cells, &mut chunked, stable).is_err() {
                            break;
                        }
                        if done {
                            let _ = write_summary(server, &run, &mut chunked, stable, true);
                            break;
                        }
                    }
                    FollowEvent::Promoted => {
                        // The leader died; this follower retakes the run.
                        // It stops being a passive subscriber first, so a
                        // second death with no other followers fails fast
                        // instead of waiting on its own promotion.
                        sub.end();
                        server.counters.promotions.fetch_add(1, Ordering::Relaxed);
                        server.gate.admit_forced(&server.counters);
                        let _release = AdmitRelease(&server.gate);
                        server.counters.sweeps.fetch_add(1, Ordering::Relaxed);
                        let guard = LeaderGuard::new(&server.table, key, run.clone());
                        lead_and_stream(
                            server,
                            &spec,
                            guard,
                            &run,
                            &mut chunked,
                            stable,
                            cursor,
                            true,
                        );
                        break;
                    }
                }
            }
            let _ = chunked.finish();
        }
        Joined::Leader(run) => {
            let _release = AdmitRelease(&server.gate);
            server.counters.sweeps.fetch_add(1, Ordering::Relaxed);
            let guard = LeaderGuard::new(&server.table, key, run.clone());
            // Headers go out before the sweep computes: clients (and the
            // admission tests) observe acceptance immediately, and slow
            // sweeps stream cell-by-cell from the first completed job.
            let Ok(mut chunked) = Chunked::start(stream) else {
                return; // guard drop releases any racing followers
            };
            // The handler thread streams; a scoped thread computes. Both
            // sides read the same shared run, so the leader's body is
            // byte-for-byte what a follower of the same run receives
            // (modulo the per-connection `coalesced` flag).
            lead_and_stream(server, &spec, guard, &run, &mut chunked, stable, 0, false);
            let _ = chunked.finish();
        }
    }
}

/// `POST /sweep/report`: the full report document in one response.
/// `?stable=1` bodies are byte-for-byte identical to
/// `regenr sweep <spec> --stable` — the CI serve-smoke job diffs exactly
/// this against the offline CLI.
fn handle_sweep_report(server: &Server, stream: &mut TcpStream, req: &Request) {
    let stable = req.query_flag("stable");
    let (spec, key) = match parse_posted_spec(&req.body) {
        Ok(parsed) => parsed,
        Err((status, body)) => {
            server.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(stream, status, &body);
            return;
        }
    };
    let (report, status) = match server
        .table
        .join_or_lead(key, server.cfg.leader_retries, || {
            server.gate.admit(&server.counters)
        }) {
        Joined::Rejected => return reject_overloaded(server, stream),
        Joined::Follower(run) => {
            server.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut sub = Subscription::new(&server.table, key, &run);
            match run.wait_done_or_promote() {
                Some((report, status)) => {
                    sub.end();
                    (report.unwrap_or_default(), status)
                }
                None => {
                    // Promoted: recompute the dead leader's run here.
                    sub.end();
                    server.counters.promotions.fetch_add(1, Ordering::Relaxed);
                    server.gate.admit_forced(&server.counters);
                    let _release = AdmitRelease(&server.gate);
                    server.counters.sweeps.fetch_add(1, Ordering::Relaxed);
                    let guard = LeaderGuard::new(&server.table, key, run.clone());
                    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        compute_as_leader(server, &spec, guard)
                    }));
                    if computed.is_err() {
                        server
                            .counters
                            .handler_panics
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let (report, status) = run.wait_done();
                    (report.unwrap_or_default(), status)
                }
            }
        }
        Joined::Leader(run) => {
            let _release = AdmitRelease(&server.gate);
            server.counters.sweeps.fetch_add(1, Ordering::Relaxed);
            let guard = LeaderGuard::new(&server.table, key, run.clone());
            // A compute panic is contained: the dying guard promotes a
            // follower (wait_done below then returns the recovered run —
            // even this leader's own client gets the recomputed report)
            // or fails the run, which the status check turns into a 503.
            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compute_as_leader(server, &spec, guard)
            }));
            if computed.is_err() {
                server
                    .counters
                    .handler_panics
                    .fetch_add(1, Ordering::Relaxed);
            }
            let (report, status) = run.wait_done();
            (report.unwrap_or_default(), status)
        }
    };
    if status == RunStatus::Error {
        // The sweep died for infrastructure reasons (leader panic with the
        // retry budget exhausted) — never a property of the posted spec,
        // so this must not look like a model error: 503, retryable.
        let _ = write_response(
            stream,
            503,
            &error_body(
                "infrastructure",
                "sweep failed for infrastructure reasons (leader died, retries \
                 exhausted); the spec was accepted — retry the request"
                    .into(),
            ),
        );
        return;
    }
    let doc = if stable {
        crate::spec::stable_report_to_json(&report)
    } else {
        crate::spec::report_to_json(&report)
    };
    // The CLI prints the document with println! — match its trailing
    // newline so `cmp` against `regenr sweep --stable` output passes.
    let _ = write_response(stream, 200, &format!("{doc}\n"));
}

fn reject_overloaded(server: &Server, stream: &mut TcpStream) {
    server.counters.rejected.fetch_add(1, Ordering::Relaxed);
    let body = Json::Obj(vec![
        ("error".into(), Json::Str("overloaded".into())),
        (
            "detail".into(),
            Json::Str(
                "in-flight sweep budget exhausted; retry later or coalesce onto an \
                 identical in-flight spec"
                    .into(),
            ),
        ),
        ("max_inflight".into(), Json::Num(server.gate.max as f64)),
        ("inflight".into(), Json::Num(server.gate.inflight() as f64)),
    ])
    .to_string();
    let _ = write_response(stream, 429, &body);
}

fn handle_stats(server: &Server, stream: &mut TcpStream) {
    let body = Json::Obj(vec![
        (
            "serve".into(),
            serve_stats_json(&server.counters.snapshot()),
        ),
        ("inflight_runs".into(), Json::Num(server.table.len() as f64)),
        (
            "robustness".into(),
            crate::spec::robustness_json(&server.robustness()),
        ),
        (
            "cache".into(),
            cache_stats_json(&server.engine.cache().stats()),
        ),
    ])
    .to_string();
    let _ = write_response(stream, 200, &body);
}

fn handle_connection(server: &Server, mut stream: TcpStream) {
    // A dead or stalled client must not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let req = match read_request(&mut stream, server.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(HttpError::Malformed(what)) => {
            server.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, 400, &error_body("bad_request", what.into()));
            return;
        }
        Err(HttpError::TooLarge) => {
            server.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                413,
                &error_body("too_large", "request exceeds the configured limit".into()),
            );
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    server.counters.requests.fetch_add(1, Ordering::Relaxed);
    // A panicking handler answers 500 — an infrastructure fault must look
    // like one, never close the connection silently or (worse) surface as
    // a request error. If the handler already streamed a response body the
    // 500 write simply fails or trails a finished exchange; best effort.
    let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        regenr_failpoint::failpoint!("serve-read");
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/sweep") => handle_sweep_stream(server, &mut stream, &req),
            ("POST", "/sweep/report") => handle_sweep_report(server, &mut stream, &req),
            ("GET", "/healthz") => {
                let _ = write_response(
                    &mut stream,
                    200,
                    &Json::Obj(vec![("status".into(), Json::Str("ok".into()))]).to_string(),
                );
            }
            ("GET", "/stats") => handle_stats(server, &mut stream),
            ("POST", "/shutdown") => {
                let _ = write_response(
                    &mut stream,
                    200,
                    &Json::Obj(vec![("status".into(), Json::Str("draining".into()))]).to_string(),
                );
                server.shutdown();
            }
            (_, "/sweep" | "/sweep/report" | "/shutdown") | ("POST", "/healthz" | "/stats") => {
                let _ = write_response(
                    &mut stream,
                    405,
                    &error_body("method_not_allowed", format!("{} {}", req.method, req.path)),
                );
            }
            _ => {
                let _ =
                    write_response(&mut stream, 404, &error_body("not_found", req.path.clone()));
            }
        }
    }));
    if dispatched.is_err() {
        server
            .counters
            .handler_panics
            .fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            &mut stream,
            500,
            &error_body(
                "internal_panic",
                "request handler panicked; the fault is in the server, not the request".into(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_key_canonicalizes_whitespace_but_not_semantics() {
        let a = Json::parse(r#"{"horizons":[1,10],"epsilon":1e-10}"#).unwrap();
        let b = Json::parse("{ \"horizons\" : [ 1,\n 10 ],\t\"epsilon\": 1e-10 }").unwrap();
        assert_eq!(spec_key(&a), spec_key(&b), "formatting must coalesce");
        let c = Json::parse(r#"{"horizons":[1,10],"epsilon":1e-9}"#).unwrap();
        assert_ne!(spec_key(&a), spec_key(&c), "semantic changes must not");
        let d = Json::parse(r#"{"horizons":[1,10],"epsilon":1e-10,"deadline_ms":5}"#).unwrap();
        assert_ne!(spec_key(&a), spec_key(&d), "deadlines separate runs");
    }

    /// Permuting a compose model's component list must coalesce to the
    /// same in-flight run (the canonicalizer sorts components by name
    /// before hashing).
    #[test]
    fn spec_key_is_component_order_independent() {
        let forward = Json::parse(
            r#"{"horizons":[1],"models":[{"kind":"compose","components":[
                {"name":"a","count":1,"lambda":0.1},
                {"name":"b","count":2,"lambda":0.2}]}]}"#,
        )
        .unwrap();
        let reversed = Json::parse(
            r#"{"horizons":[1],"models":[{"kind":"compose","components":[
                {"name":"b","count":2,"lambda":0.2},
                {"name":"a","count":1,"lambda":0.1}]}]}"#,
        )
        .unwrap();
        assert_eq!(spec_key(&forward), spec_key(&reversed));
        let changed = Json::parse(
            r#"{"horizons":[1],"models":[{"kind":"compose","components":[
                {"name":"b","count":3,"lambda":0.2},
                {"name":"a","count":1,"lambda":0.1}]}]}"#,
        )
        .unwrap();
        assert_ne!(spec_key(&forward), spec_key(&changed));
    }

    #[test]
    fn gate_admits_to_capacity_and_tracks_highwater() {
        let counters = ServeCounters::default();
        let gate = Gate {
            max: 2,
            cur: Mutex::new(0),
        };
        assert!(gate.admit(&counters));
        assert!(gate.admit(&counters));
        assert!(!gate.admit(&counters), "third sweep must be rejected");
        assert_eq!(gate.inflight(), 2);
        gate.release();
        assert!(gate.admit(&counters), "released slots are reusable");
        assert_eq!(counters.snapshot().inflight_highwater, 2);
    }

    #[test]
    fn posted_spec_validation_maps_to_http_errors() {
        // Engine-wide knobs are fixed at startup.
        let err = parse_posted_spec(
            br#"{"horizons":[1],"threads":4,"models":[{"kind":"cyclic","n":3}]}"#,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("fixed_engine_option"), "{}", err.1);
        // The blocked-stepping knobs are engine-wide too: the server's
        // stepper plans are shared across requests, so a posted spec may
        // not retune them per request.
        for knob in [r#""rhs_block":4"#, r#""index_width":"16""#] {
            let body = format!(r#"{{"horizons":[1],{knob},"models":[{{"kind":"cyclic","n":3}}]}}"#);
            let err = parse_posted_spec(body.as_bytes()).map(|_| ()).unwrap_err();
            assert_eq!(err.0, 400, "{knob}");
            assert!(err.1.contains("fixed_engine_option"), "{knob}: {}", err.1);
        }
        // Unknown keys surface the spec parser's naming error.
        let err = parse_posted_spec(
            br#"{"horizons":[1],"kernal":"auto","models":[{"kind":"cyclic","n":3}]}"#,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.1.contains("kernal"), "{}", err.1);
        // Bad JSON is a 400 with the byte offset.
        let err = parse_posted_spec(b"{nope").map(|_| ()).unwrap_err();
        assert!(err.1.contains("bad_json"), "{}", err.1);
        // Model-build failures carry their own structured names — an
        // over-cap compose spec is a *request* property: 4xx with the
        // error named, never an infrastructure 5xx. This also pins the
        // `Display` phrases `spec_error_code` keys on.
        let err = parse_posted_spec(
            br#"{"horizons": [1], "models": [
                {"kind": "compose", "max_states": 5,
                 "components": [
                   {"name": "m", "count": 9, "lambda": 0.1, "mu": 1.0}]}]}"#,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("state_space_exceeded"), "{}", err.1);
        assert!(err.1.contains("cap of 5 states"), "{}", err.1);
        // A valid spec parses and produces a stable key.
        let (spec, key) = parse_posted_spec(
            br#"{"horizons":[1],"deadline_ms":50,"models":[{"kind":"cyclic","n":3}]}"#,
        )
        .map_err(|e| e.1)
        .unwrap();
        assert_eq!(spec.requests.len(), 1);
        assert_eq!(spec.deadline_ms, Some(50));
        assert_ne!(key, 0);
    }
}
