//! Minimal HTTP/1.1 over `std::net` for the serve subsystem.
//!
//! Same no-dependency discipline as the no-serde JSON layer: this is the
//! slice of HTTP the solver service needs — request line + headers +
//! `Content-Length` bodies in, fixed-length or chunked responses out —
//! not a general-purpose server framework. Every response carries
//! `Connection: close`, so clients read to EOF and each request gets a
//! fresh connection; that keeps the protocol state machine trivial and
//! makes graceful drain (count open connections to zero) exact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, path (query split off), and the body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The path component of the request target (no query string).
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// True when the query string contains `key=1` or a bare `key`
    /// (`/sweep/report?stable=1`). No percent-decoding — the serve API
    /// only uses flag-shaped parameters.
    pub fn query_flag(&self, key: &str) -> bool {
        self.query
            .split('&')
            .any(|kv| kv == key || kv == format!("{key}=1") || kv == format!("{key}=true"))
    }
}

/// Why a request could not be read. `Malformed` turns into a 400 and
/// `TooLarge` into a 413; I/O errors just drop the connection.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not an HTTP/1.x request we accept.
    Malformed(&'static str),
    /// The declared body exceeds the server's limit.
    TooLarge,
    /// The socket failed mid-read (client gone, timeout).
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Hard cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Reads one request from the stream. `max_body` bounds `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(HttpError::Malformed("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not an HTTP/1.x request"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response (JSON bodies throughout).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer NDJSON response in progress. Headers go out at
/// construction — before the sweep computes — so clients observe
/// admission immediately; each record is one chunk; [`Chunked::finish`]
/// writes the terminating zero chunk.
pub struct Chunked<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> Chunked<'a> {
    /// Starts a 200 chunked NDJSON response.
    pub fn start(stream: &'a mut TcpStream) -> std::io::Result<Self> {
        stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        stream.flush()?;
        Ok(Chunked { stream })
    }

    /// Writes one NDJSON record (a trailing newline is appended) as one
    /// chunk and flushes, so slow sweeps still stream cell-by-cell.
    pub fn record(&mut self, line: &str) -> std::io::Result<()> {
        let payload_len = line.len() + 1;
        write!(self.stream, "{payload_len:x}\r\n{line}\n\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked body.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Decodes a chunked transfer body (used by the serve tests and the
/// `repro serve` load generator, which read responses to EOF).
pub fn decode_chunked(mut body: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line_end = body.windows(2).position(|w| w == b"\r\n")?;
        let size_line = std::str::from_utf8(&body[..line_end]).ok()?;
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        body = &body[line_end + 2..];
        if size == 0 {
            return Some(out);
        }
        if body.len() < size + 2 {
            return None;
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

/// A tiny blocking HTTP client for the load generator and tests: sends one
/// request, reads to EOF (the server always closes), returns
/// `(status, body)` with chunked bodies decoded.
pub fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    send_request_head(&mut stream, method, target, body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

/// Writes the request head + body for `http_request` (split out so callers
/// that need to read the response incrementally — e.g. waiting for headers
/// before firing a second request — can reuse the wire format).
pub fn send_request_head(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: regenr\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Splits a raw response into `(status, decoded body)`.
pub fn parse_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let chunked = lines.any(|l| {
        l.to_ascii_lowercase()
            .starts_with("transfer-encoding: chunked")
    });
    let body = &raw[head_end + 4..];
    if chunked {
        decode_chunked(body).map(|b| (status, b))
    } else {
        Some((status, body.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_roundtrip() {
        let encoded = b"5\r\nhello\r\n7\r\n world!\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(encoded).unwrap(), b"hello world!");
        assert_eq!(decode_chunked(b"0\r\n\r\n").unwrap(), b"");
        // Truncated bodies are a decode failure, not a panic.
        assert!(decode_chunked(b"5\r\nhel").is_none());
        assert!(decode_chunked(b"zz\r\n\r\n").is_none());
    }

    #[test]
    fn parses_fixed_length_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"{}");
    }

    #[test]
    fn query_flags() {
        let req = Request {
            method: "POST".into(),
            path: "/sweep/report".into(),
            query: "stable=1&x=2".into(),
            body: vec![],
        };
        assert!(req.query_flag("stable"));
        assert!(!req.query_flag("x"));
        assert!(!req.query_flag("verbose"));
    }
}
