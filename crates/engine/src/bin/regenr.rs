//! `regenr` — run a solver-engine sweep from a JSON spec.
//!
//! ```text
//! regenr sweep <spec.json>     run the spec (use '-' for stdin)
//! regenr sweep - --pretty      pretty-print the report
//! regenr sweep - --stable      omit timing/cache/pool fields so reports
//!                              from runs differing only in thread counts
//!                              diff byte-for-byte (CI determinism job)
//! regenr demo [G]              built-in paper workload (RAID UA+UR grid)
//! regenr methods               list methods and capability flags
//! regenr serve [--addr HOST:PORT] [--threads N] [--max-inflight K]
//!                              persistent solver service: POST sweep specs,
//!                              stream per-cell NDJSON results; identical
//!                              in-flight specs coalesce onto one
//!                              computation; see regenr_engine::serve
//! ```
//!
//! Output is a single JSON report on stdout: one entry per
//! `(model, measure, horizon)` cell with the value, the method chosen and
//! why, step counts, error bounds, and artifact-cache counters. Spec model
//! kinds: `raid`, `two_state`, `cyclic`, `duplex`, `machines`, `multiproc`,
//! `compose` (declarative component systems — classes × rates × coverage ×
//! dependencies, built through streaming state exploration; the `specs/`
//! corpus at the repo root holds ready-to-run examples), and `inline` rate
//! matrices. See `regenr_engine::spec` for the full schema.

use regenr_engine::{
    report_to_json, stable_report_to_json, Engine, Json, ServeConfig, Server, SweepSpec,
    ALL_METHODS,
};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pretty = args.iter().any(|a| a == "--pretty");
    let stable = args.iter().any(|a| a == "--stable");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let code = match positional.first().map(|s| s.as_str()) {
        Some("sweep") => sweep(positional.get(1).map(|s| s.as_str()), pretty, stable),
        Some("demo") => match positional.get(1) {
            None => demo(20, pretty, stable),
            Some(arg) => match arg.parse() {
                Ok(g) => demo(g, pretty, stable),
                Err(_) => {
                    eprintln!("usage: regenr demo [G] — G must be a positive integer, got {arg:?}");
                    2
                }
            },
        },
        Some("methods") => {
            methods(pretty);
            0
        }
        Some("serve") => serve(&args),
        _ => {
            eprintln!(
                "usage: regenr <sweep <spec.json|->|demo [G]|methods|serve> [--pretty] [--stable]\n\
                 serve flags: --addr HOST:PORT  --threads N  --max-inflight K\n\
                 see the module docs of regenr_engine::spec for the spec schema"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Parses a `--flag VALUE` pair from the raw argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn serve(args: &[String]) -> i32 {
    let mut cfg = ServeConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        cfg.addr = addr.to_string();
    }
    for (flag, slot) in [
        ("--threads", &mut cfg.threads),
        ("--max-inflight", &mut cfg.max_inflight),
    ] {
        if let Some(value) = flag_value(args, flag) {
            match value.parse() {
                Ok(n) => *slot = n,
                Err(_) => {
                    eprintln!("regenr serve: {flag} needs a non-negative integer, got {value:?}");
                    return 2;
                }
            }
        }
    }
    let max_inflight = cfg.max_inflight;
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("regenr serve: failed to bind: {e}");
            return 1;
        }
    };
    eprintln!(
        "regenr serve: listening on {} (max-inflight {max_inflight}); POST /sweep, \
         POST /sweep/report, GET /healthz, GET /stats, POST /shutdown; SIGTERM drains",
        server.local_addr()
    );
    match server.run() {
        Ok(()) => {
            let stats = server.stats();
            eprintln!(
                "regenr serve: drained; requests={} sweeps={} coalesced={} rejected={} \
                 deadline_expired={} inflight_highwater={}",
                stats.requests,
                stats.sweeps,
                stats.coalesced,
                stats.rejected,
                stats.deadline_expired,
                stats.inflight_highwater
            );
            0
        }
        Err(e) => {
            eprintln!("regenr serve: accept loop failed: {e}");
            1
        }
    }
}

fn emit(doc: &Json, pretty: bool) {
    if pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{doc}");
    }
}

fn run_spec(text: &str, pretty: bool, stable: bool) -> i32 {
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("spec error: {e}");
            return 2;
        }
    };
    let engine = Engine::with_cache_config(spec.options, spec.cache);
    let report = engine.sweep(&spec.requests);
    let doc = if stable {
        stable_report_to_json(&report)
    } else {
        report_to_json(&report)
    };
    emit(&doc, pretty);
    if report.failures.is_empty() {
        0
    } else {
        1
    }
}

fn sweep(path: Option<&str>, pretty: bool, stable: bool) -> i32 {
    let Some(path) = path else {
        eprintln!("usage: regenr sweep <spec.json|->");
        return 2;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("failed to read stdin: {e}");
                return 2;
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return 2;
            }
        }
    };
    run_spec(&text, pretty, stable)
}

/// The paper's Section 3 workload as a built-in spec: level-5 RAID, UA
/// (irreducible) and UR (absorbing) across the full horizon grid.
fn demo(g: u32, pretty: bool, stable: bool) -> i32 {
    let spec = format!(
        r#"{{
            "epsilon": 1e-12,
            "horizons": [1, 10, 100, 1000, 10000, 100000],
            "models": [
                {{"kind": "raid", "g": {g}}},
                {{"kind": "raid", "g": {g}, "absorbing": true}}
            ]
        }}"#
    );
    run_spec(&spec, pretty, stable)
}

fn methods(pretty: bool) {
    let list = ALL_METHODS
        .iter()
        .map(|m| {
            let caps = m.capabilities();
            Json::Obj(vec![
                ("method".into(), Json::Str(m.name().into())),
                (
                    "supports_absorbing".into(),
                    Json::Bool(caps.supports_absorbing),
                ),
                ("supports_mrr".into(), Json::Bool(caps.supports_mrr)),
                (
                    "rigorous_error_bound".into(),
                    Json::Bool(caps.rigorous_error_bound),
                ),
                (
                    "horizon_independent_cost".into(),
                    Json::Bool(caps.horizon_independent_cost),
                ),
                ("dense_only".into(), Json::Bool(caps.dense_only)),
            ])
        })
        .collect();
    emit(&Json::Arr(list), pretty);
}
