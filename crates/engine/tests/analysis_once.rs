//! The tentpole invariant of the ChainFacts plumbing, proved through the
//! process-global [`regenr_ctmc::analysis_runs`] counter: the `O(n + nnz)`
//! Tarjan structure analysis runs **once per fingerprint**, not once per
//! job, because RR/RRL construction consumes the engine's cached facts via
//! `with_uniformized_facts`.
//!
//! This file deliberately holds a single `#[test]` — the counter is global
//! to the test process, so the invariant can only be asserted without racing
//! siblings in a binary of its own.

use regenr_engine::{Engine, Method, MethodChoice, SolveRequest};
use std::sync::Arc;

#[test]
fn structure_analysis_runs_once_per_fingerprint() {
    let engine = Engine::new();
    let absorbing = Arc::new(regenr_models::two_state::non_repairable_unit(1e-3));
    let irreducible = Arc::new(regenr_models::two_state::repairable_unit(1e-3, 1.0));

    let before = regenr_ctmc::analysis_runs();
    // Repeated requests and mixed methods over two fingerprints. Every
    // RR/RRL construction used to re-run the analysis inside
    // `with_uniformized`; `Auto` dispatch adds SR/RSD/RRL jobs on top.
    for _ in 0..3 {
        for method in [
            MethodChoice::Auto,
            MethodChoice::Fixed(Method::Rr),
            MethodChoice::Fixed(Method::Rrl),
        ] {
            let req = SolveRequest::new("abs", absorbing.clone(), vec![50.0, 4e6])
                .epsilon(1e-10)
                .method(method);
            engine.solve(&req).unwrap();
        }
        let req = SolveRequest::new("irr", irreducible.clone(), vec![1.0, 1e6]).epsilon(1e-10);
        engine.solve(&req).unwrap();
    }

    let analyses = regenr_ctmc::analysis_runs() - before;
    assert_eq!(
        analyses, 2,
        "two fingerprints must cost exactly two structure analyses"
    );
    let stats = engine.cache().stats().structure;
    assert_eq!(stats.misses, 2, "cache built facts once per fingerprint");
    assert_eq!(stats.entries, 2);
    assert!(stats.hits >= 10, "every later plan consult must hit");
}
