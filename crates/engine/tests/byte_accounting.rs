//! Allocator-truth audit of the artifact cache's byte accounting: the
//! `approx_bytes` estimates the bounded cache charges for `Uniformized` and
//! `RegenParams` artifacts are cross-checked against a counting global
//! allocator (live bytes = allocated − freed across the construction).
//! A dedicated integration-test binary because the counting allocator is
//! necessarily process-global.

use regenr_core::{RegenOptions, RegenParams};
use regenr_ctmc::{Ctmc, Uniformized};
use regenr_engine::fingerprint::unif_fingerprint;
use regenr_engine::{ArtifactCache, CacheConfig};
use regenr_sparse::{IndexWidthChoice, KernelChoice, ParallelConfig, SellSort};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

struct CountingAlloc;

static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// A birth–death chain large enough that the artifacts dominate fixed
/// overheads (struct headers, the plan-cache mutex, …).
fn birth_chain(n: usize) -> Ctmc {
    let mut rates = Vec::new();
    for i in 0..n - 1 {
        rates.push((i, i + 1, 1.0));
        rates.push((i + 1, i, 0.5));
    }
    let mut init = vec![0.0; n];
    init[0] = 1.0;
    let rewards: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    Ctmc::from_rates(n, &rates, init, rewards).unwrap()
}

/// Asserts `estimate` is within `tol` (relative) of the measured live-byte
/// delta.
fn assert_close(what: &str, measured: i64, estimate: usize, tol: f64) {
    assert!(measured > 0, "{what}: measurement window saw no allocation");
    let ratio = estimate as f64 / measured as f64;
    assert!(
        (ratio - 1.0).abs() <= tol,
        "{what}: approx_bytes {estimate} vs allocator truth {measured} (ratio {ratio:.3}, \
         tolerance ±{tol})"
    );
}

/// One `#[test]` on purpose: the live-byte counter is process-global, so a
/// sibling test running on another libtest thread would pollute the
/// measurement windows (same constraint `analysis_once.rs` documents for
/// its process-global counter). Both artifacts are audited sequentially.
#[test]
fn approx_bytes_matches_allocator_truth() {
    // Uniformized: both CSR matrices, capacity-accounted.
    let chain = birth_chain(4_000);
    // Dry run so lazy one-time allocations don't pollute the window.
    drop(Uniformized::new(&chain, 0.0));
    let before = live_bytes();
    let unif = Uniformized::new(&chain, 0.0);
    let measured = live_bytes() - before;
    assert_close("Uniformized", measured, unif.approx_bytes(), 0.10);
    drop(unif);
    assert!(
        live_bytes() <= before,
        "dropping the artifact must release its bytes"
    );

    // RegenParams: push-grown killed-chain sequences, capacity-accounted
    // (length-based math under-reported these by up to 2×).
    let chain = birth_chain(1_500);
    let opts = RegenOptions {
        epsilon: 1e-10,
        ..Default::default()
    };
    let t = 200.0;
    drop(RegenParams::compute(&chain, 0, t, &opts).unwrap());
    let before = live_bytes();
    let params = RegenParams::compute(&chain, 0, t, &opts).unwrap();
    let measured = live_bytes() - before;
    assert_close("RegenParams", measured, params.approx_bytes(), 0.15);
    drop(params);
    assert!(
        live_bytes() <= before,
        "dropping the parameters must release their bytes"
    );

    // Kernel layouts, allocator truth: the lazily built compact-index and
    // σ-sorted layouts report honest bytes through `plan_bytes()` — the
    // number the byte-bounded cache charges via the plan-bytes hook.
    let chain = birth_chain(4_000);
    let compact = ParallelConfig {
        min_nnz: 0,
        threads: 1,
        kernel: KernelChoice::ShortRow,
        index_width: IndexWidthChoice::W16,
        ..Default::default()
    };
    let sorted = ParallelConfig {
        kernel: KernelChoice::Sliced,
        sell_sort: SellSort::Always,
        ..compact
    };
    // Dry runs on a twin artifact so pool/one-time allocations don't
    // pollute the measurement windows.
    {
        let twin = Uniformized::new(&chain, 0.0);
        let _ = twin.stepper(&compact);
        let _ = twin.stepper(&sorted);
    }
    let unif = Uniformized::new(&chain, 0.0);
    let before = live_bytes();
    let _hold_compact = unif.stepper(&compact);
    let measured = live_bytes() - before;
    assert_close("compact-index layout", measured, unif.plan_bytes(), 0.10);

    let charged_so_far = unif.plan_bytes();
    let before = live_bytes();
    let _hold_sorted = unif.stepper(&sorted);
    let measured = live_bytes() - before;
    assert_close(
        "σ-sorted sliced layout",
        measured,
        unif.plan_bytes() - charged_so_far,
        0.15,
    );
    drop((_hold_compact, _hold_sorted));

    // Byte-cap honesty end to end: a cache capped at the matrices alone
    // must evict the entry the moment either layout materializes on the
    // cached artifact.
    for (what, cfg) in [("compact-index", &compact), ("σ-sorted", &sorted)] {
        let fp = unif_fingerprint(&chain);
        let cache = ArtifactCache::with_config(CacheConfig {
            max_entries: None,
            max_bytes: Some(unif.matrix_bytes()),
        });
        let (cached, hit) = cache.uniformized(fp, &chain, 0.0);
        assert!(!hit);
        assert_eq!(cache.stats().uniformized.entries, 1);
        let _stepper = cached.stepper(cfg);
        assert!(cached.plan_bytes() > 0, "{what}: layout must carry bytes");
        let stats = cache.stats().uniformized;
        assert_eq!(
            stats.evictions, 1,
            "{what}: lazy layout bytes must push the entry over cap"
        );
        assert_eq!(stats.bytes, 0, "{what}: eviction releases the charge");
    }
}
