//! Allocator-truth audit of the artifact cache's byte accounting: the
//! `approx_bytes` estimates the bounded cache charges for `Uniformized` and
//! `RegenParams` artifacts are cross-checked against a counting global
//! allocator (live bytes = allocated − freed across the construction).
//! A dedicated integration-test binary because the counting allocator is
//! necessarily process-global.

use regenr_core::{RegenOptions, RegenParams};
use regenr_ctmc::{Ctmc, Uniformized};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

struct CountingAlloc;

static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// A birth–death chain large enough that the artifacts dominate fixed
/// overheads (struct headers, the plan-cache mutex, …).
fn birth_chain(n: usize) -> Ctmc {
    let mut rates = Vec::new();
    for i in 0..n - 1 {
        rates.push((i, i + 1, 1.0));
        rates.push((i + 1, i, 0.5));
    }
    let mut init = vec![0.0; n];
    init[0] = 1.0;
    let rewards: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    Ctmc::from_rates(n, &rates, init, rewards).unwrap()
}

/// Asserts `estimate` is within `tol` (relative) of the measured live-byte
/// delta.
fn assert_close(what: &str, measured: i64, estimate: usize, tol: f64) {
    assert!(measured > 0, "{what}: measurement window saw no allocation");
    let ratio = estimate as f64 / measured as f64;
    assert!(
        (ratio - 1.0).abs() <= tol,
        "{what}: approx_bytes {estimate} vs allocator truth {measured} (ratio {ratio:.3}, \
         tolerance ±{tol})"
    );
}

/// One `#[test]` on purpose: the live-byte counter is process-global, so a
/// sibling test running on another libtest thread would pollute the
/// measurement windows (same constraint `analysis_once.rs` documents for
/// its process-global counter). Both artifacts are audited sequentially.
#[test]
fn approx_bytes_matches_allocator_truth() {
    // Uniformized: both CSR matrices, capacity-accounted.
    let chain = birth_chain(4_000);
    // Dry run so lazy one-time allocations don't pollute the window.
    drop(Uniformized::new(&chain, 0.0));
    let before = live_bytes();
    let unif = Uniformized::new(&chain, 0.0);
    let measured = live_bytes() - before;
    assert_close("Uniformized", measured, unif.approx_bytes(), 0.10);
    drop(unif);
    assert!(
        live_bytes() <= before,
        "dropping the artifact must release its bytes"
    );

    // RegenParams: push-grown killed-chain sequences, capacity-accounted
    // (length-based math under-reported these by up to 2×).
    let chain = birth_chain(1_500);
    let opts = RegenOptions {
        epsilon: 1e-10,
        ..Default::default()
    };
    let t = 200.0;
    drop(RegenParams::compute(&chain, 0, t, &opts).unwrap());
    let before = live_bytes();
    let params = RegenParams::compute(&chain, 0, t, &opts).unwrap();
    let measured = live_bytes() - before;
    assert_close("RegenParams", measured, params.approx_bytes(), 0.15);
    drop(params);
    assert!(
        live_bytes() <= before,
        "dropping the parameters must release their bytes"
    );
}
