//! Fault-injection tests — compiled only with `--features failpoints`.
//!
//! The failpoint registry is process-global, so every test here serializes
//! on [`REGISTRY`] and clears the registry on entry and exit; this file is
//! its own integration binary, so the unarmed engine/serve suites never see
//! an armed registry.

#![cfg(feature = "failpoints")]

use regenr_engine::serve::http::http_request;
use regenr_engine::{Engine, Json, Method, ServeConfig, Server, SweepSpec};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static REGISTRY: Mutex<()> = Mutex::new(());

/// Serializes the process-global registry and guarantees a clean slate on
/// entry and (via `Drop`) on exit, even when the test panics.
fn armed(spec: &str) -> MutexGuard<'static, ()> {
    let guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    regenr_failpoint::clear();
    regenr_failpoint::configure(spec).expect("failpoint spec parses");
    guard
}

struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        regenr_failpoint::clear();
    }
}

fn sweep(spec_body: &str) -> regenr_engine::SweepReport {
    let spec = SweepSpec::parse(spec_body).expect("spec parses");
    Engine::new().sweep(&spec.requests)
}

/// An injected NaN fails the health check and the supervisor walks the
/// fallback chain: RRL's corrupted inversion recovers on RR, annotated on
/// the cell and counted in the sweep's robustness aggregate.
#[test]
fn injected_nan_recovers_via_the_fallback_chain() {
    let _lock = armed("rrl-nan=nan,count=1");
    let _clean = Disarm;
    let report = sweep(
        r#"{"horizons":[10000],"method":"rrl",
            "models":[{"kind":"raid","g":8,"absorbing":true}],"epsilon":1e-10}"#,
    );
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    let cell = &report.reports[0];
    assert_eq!(cell.method, Method::Rr, "RRL's first fallback is RR");
    assert_eq!(cell.recovered_via, Some(Method::Rr));
    assert_eq!(cell.attempts, 2);
    assert!(cell.value.is_finite() && cell.value >= 0.0);
    assert_eq!(report.robustness.health_failures, 1);
    assert_eq!(report.robustness.fallbacks, 1);
    assert_eq!(report.robustness.recovered_cells, 1);
}

/// A chunk panic mid-SpMV is caught by the supervisor, the worker's arenas
/// are discarded, and the *same* method is retried under the request's
/// `max_retries` budget — no fallback, so `recovered_via` stays `None`.
#[test]
fn chunk_panic_retries_the_same_method() {
    let _lock = armed("pool-chunk=panic,count=1");
    let _clean = Disarm;
    let report = sweep(
        r#"{"horizons":[10000],"max_retries":2,
            "models":[{"kind":"raid","g":20}],"epsilon":1e-10}"#,
    );
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    let cell = &report.reports[0];
    assert_eq!(cell.attempts, 2, "one panic, one clean retry");
    assert_eq!(cell.recovered_via, None, "same method, not a fallback");
    assert!(report.robustness.retries >= 1);
    assert_eq!(report.robustness.recovered_cells, 1);
}

/// When every retry and fallback is exhausted the failure surfaces as
/// *infrastructure* (the serve layer's 5xx basis) — never as a model error.
#[test]
fn exhausted_recovery_is_an_infrastructure_failure() {
    // `every=1`: the fault re-fires on the retry and on every fallback.
    let _lock = armed("sr-nan=nan,every=1");
    let _clean = Disarm;
    let report = sweep(
        r#"{"horizons":[1],"method":"sr","max_retries":1,
            "models":[{"kind":"cyclic","n":4}],"epsilon":1e-10}"#,
    );
    assert!(report.reports.is_empty());
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert!(
        failure.infrastructure,
        "an injected fault must never masquerade as a model error: {}",
        failure.error
    );
    assert!(failure.error.contains("health"), "{}", failure.error);
    assert!(report.robustness.health_failures >= 2, "retry also failed");
}

/// Satellite (d): a request whose deadline expires while its leader is
/// killed. The promoted follower must come back with a *clean* status
/// (`deadline` or `ok`, depending on who wins the race) — it must never
/// hang and never see a malformed stream.
#[test]
fn deadline_expiry_racing_leader_death_stays_clean() {
    let _lock = armed("serve-leader=panic,count=1");
    let _clean = Disarm;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let runner = Arc::clone(&server);
    let run_handle = std::thread::spawn(move || runner.run().expect("accept loop"));

    // The stall lets followers subscribe before the injected death; the
    // deadline (measured from each compute attempt) expires mid-stall, so
    // the promoted recompute races deadline expiry by construction.
    let spec = r#"{"horizons":[1,10,100,1000],"models":[{"kind":"cyclic","n":6}],
                   "epsilon":1e-10,"debug_stall_ms":300,"deadline_ms":100}"#;
    let (tx, rx) = std::sync::mpsc::channel();
    for _ in 0..4 {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let (status, body) = http_request(addr, "POST", "/sweep", spec).expect("request");
            let _ = tx.send((status, String::from_utf8_lossy(&body).into_owned()));
        });
    }
    drop(tx);
    for i in 0..4 {
        let (status, body) = rx
            .recv_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("client {i} hung: a follower was stranded"));
        assert_eq!(status, 200, "{body}");
        let summary = body.lines().last().expect("stream ends with a summary");
        let doc = Json::parse(summary).expect("summary is valid JSON");
        assert_eq!(doc.get("record").and_then(|s| s.as_str()), Some("summary"));
        let status = doc.get("status").and_then(|s| s.as_str()).unwrap();
        assert!(
            status == "deadline" || status == "ok",
            "clean terminal status required, got {status:?}: {summary}"
        );
        for line in body.lines().filter(|l| *l != summary) {
            let cell = Json::parse(line).expect("cell line is valid JSON");
            assert_eq!(cell.get("record").and_then(|s| s.as_str()), Some("cell"));
        }
    }
    assert!(
        server.stats().promotions >= 1,
        "the dying leader must have promoted a follower"
    );

    // The server survived the race: the same spec, unarmed and undeadlined,
    // completes fully.
    let clean = r#"{"horizons":[1,10],"models":[{"kind":"cyclic","n":6}],"epsilon":1e-10}"#;
    let (status, body) = http_request(addr, "POST", "/sweep/report", clean).expect("request");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    let (status, _) = http_request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    run_handle.join().expect("drain");
}

/// A leader that dies with nobody to promote (no followers) and no budget
/// left reports `503 infrastructure` on `/sweep/report` — the spec was
/// fine, the infrastructure was not, and the client may simply retry.
#[test]
fn lone_leader_death_is_a_503_not_a_model_error() {
    // `every=1` keeps killing the leader through its entire retry budget.
    let _lock = armed("serve-leader=panic,every=1");
    let _clean = Disarm;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        leader_retries: 0,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let runner = Arc::clone(&server);
    let run_handle = std::thread::spawn(move || runner.run().expect("accept loop"));

    let spec = r#"{"horizons":[1],"models":[{"kind":"cyclic","n":4}],"epsilon":1e-10}"#;
    let (status, body) = http_request(addr, "POST", "/sweep/report", spec).expect("request");
    let body = String::from_utf8_lossy(&body);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("infrastructure"), "{body}");
    assert!(server.stats().handler_panics >= 1);

    // Disarmed, the identical request succeeds — proof the 503 described
    // the infrastructure, not the spec.
    regenr_failpoint::clear();
    let (status, _) = http_request(addr, "POST", "/sweep/report", spec).expect("request");
    assert_eq!(status, 200);

    let (status, _) = http_request(addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    run_handle.join().expect("drain");
}
