//! Wire-level tests for `regenr serve`: coalescing, deadlines, admission
//! control, validation errors, and graceful lifecycle — all against a real
//! listener on a loopback port.

use regenr_engine::serve::http::http_request;
use regenr_engine::{Engine, ServeConfig, Server, SweepSpec};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small but multi-cell workload: 4 horizons × 1 model = 4 sweep jobs.
const SPEC_BODY: &str =
    r#"{"horizons":[1, 10, 100, 1000], "models":[{"kind":"cyclic","n":6}], "epsilon":1e-10}"#;

fn start_server(cfg: ServeConfig) -> (Arc<Server>, SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run().expect("accept loop"));
    (server, addr, handle)
}

fn default_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..ServeConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let (status, bytes) = http_request(addr, "POST", target, body).expect("request");
    (status, String::from_utf8(bytes).expect("utf-8 body"))
}

/// Appends one `"key":value` member to a JSON-object spec string.
fn with_field(spec: &str, member: &str) -> String {
    format!("{},{member}}}", spec.trim_end().trim_end_matches('}'))
}

fn shutdown(server: &Arc<Server>, addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("run() returns after drain");
    assert!(server.stats().requests >= 1);
}

/// Two identical concurrent requests must produce ONE engine computation
/// and byte-identical `--stable` bodies; the served body must also match
/// what the offline engine produces for the same requests.
#[test]
fn identical_concurrent_requests_coalesce_to_one_computation() {
    let (server, addr, handle) = start_server(default_cfg());
    // The stall keeps the leader's run in flight long enough for the
    // second request to attach deterministically.
    let spec = with_field(SPEC_BODY, r#""debug_stall_ms":400"#);

    let leader_spec = spec.clone();
    let leader_addr = addr;
    let leader =
        std::thread::spawn(move || post(leader_addr, "/sweep/report?stable=1", &leader_spec));
    wait_until("leader admitted", || server.stats().sweeps == 1);
    let (f_status, f_body) = post(addr, "/sweep/report?stable=1", &spec);
    let (l_status, l_body) = leader.join().unwrap();

    assert_eq!((l_status, f_status), (200, 200));
    assert_eq!(l_body, f_body, "coalesced bodies must be byte-identical");
    let stats = server.stats();
    assert_eq!(stats.sweeps, 1, "one computation for two requests");
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.rejected, 0);

    // The engine ran the sweep once: exactly as many cache builds as a
    // single offline run of the same spec performs.
    let offline = Engine::new();
    let offline_spec = SweepSpec::parse(SPEC_BODY).expect("spec parses");
    let offline_report = offline.sweep(&offline_spec.requests);
    assert_eq!(
        server.engine().cache().stats().uniformized.misses,
        offline_report.cache.uniformized.misses,
        "followers must not touch the engine"
    );
    // Served stable body == offline stable report (plus the CLI newline).
    let offline_body = format!(
        "{}\n",
        regenr_engine::stable_report_to_json(&offline_report)
    );
    assert_eq!(l_body, offline_body, "served --stable must match offline");

    shutdown(&server, addr, handle);
}

/// A tiny deadline cancels cleanly: the stream stays well-formed, the
/// summary says `"status":"deadline"`, and the server remains healthy.
#[test]
fn deadline_cancels_cleanly_and_server_stays_healthy() {
    let (server, addr, handle) = start_server(default_cfg());
    let spec = with_field(SPEC_BODY, r#""deadline_ms":0"#);
    let (status, body) = post(addr, "/sweep", &spec);
    assert_eq!(status, 200, "a deadline is a clean result, not an error");
    let summary = body
        .lines()
        .last()
        .expect("stream ends with a summary record");
    let doc = regenr_engine::Json::parse(summary).expect("summary is valid JSON");
    assert_eq!(
        doc.get("status").and_then(|s| s.as_str()),
        Some("deadline"),
        "summary: {summary}"
    );
    assert_eq!(doc.get("record").and_then(|s| s.as_str()), Some("summary"));
    let cancelled = doc
        .get("cancelled_jobs")
        .and_then(|n| n.as_f64())
        .expect("full summary carries cancelled_jobs");
    assert!(cancelled >= 1.0, "at least one job must have been cut");
    assert_eq!(server.stats().deadline_expired, 1);

    // Every line before the summary is a valid cell record — partial
    // results stay usable.
    for line in body.lines().filter(|l| *l != summary) {
        let cell = regenr_engine::Json::parse(line).expect("cell line is valid JSON");
        assert_eq!(cell.get("record").and_then(|s| s.as_str()), Some("cell"));
    }

    // The server is still healthy: the same spec without the deadline
    // completes fully.
    let (status, body) = post(addr, "/sweep", SPEC_BODY);
    assert_eq!(status, 200);
    let summary = body.lines().last().unwrap();
    let doc = regenr_engine::Json::parse(summary).unwrap();
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(doc.get("cells").and_then(|n| n.as_f64()), Some(4.0));

    shutdown(&server, addr, handle);
}

/// With a full admission gate, distinct specs get a structured 429 while
/// identical specs still coalesce (they don't need a slot).
#[test]
fn admission_control_rejects_distinct_but_coalesces_identical() {
    let cfg = ServeConfig {
        max_inflight: 1,
        ..default_cfg()
    };
    let (server, addr, handle) = start_server(cfg);
    let stalled = with_field(SPEC_BODY, r#""debug_stall_ms":500"#);

    let leader_spec = stalled.clone();
    let leader = std::thread::spawn(move || post(addr, "/sweep", &leader_spec));
    wait_until("leader admitted", || server.stats().sweeps == 1);

    // Distinct spec: the only slot is taken → 429 with a structured body.
    let distinct = r#"{"horizons":[1], "models":[{"kind":"cyclic","n":4}]}"#;
    let (status, body) = post(addr, "/sweep/report", distinct);
    assert_eq!(status, 429, "body: {body}");
    let doc = regenr_engine::Json::parse(&body).expect("429 body is structured JSON");
    assert_eq!(
        doc.get("error").and_then(|s| s.as_str()),
        Some("overloaded")
    );
    assert_eq!(doc.get("max_inflight").and_then(|n| n.as_f64()), Some(1.0));

    // Identical spec: coalesces onto the in-flight run, no slot needed.
    let (status, _body) = post(addr, "/sweep/report", &stalled);
    assert_eq!(status, 200);
    let (status, _) = leader.join().unwrap();
    assert_eq!(status, 200);

    let stats = server.stats();
    assert_eq!(stats.sweeps, 1);
    assert_eq!(stats.coalesced, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.inflight_highwater, 1);

    shutdown(&server, addr, handle);
}

/// Spec validation surfaces as structured 400s: unknown keys are named,
/// engine-wide knobs are refused, bad JSON reports its offset.
#[test]
fn validation_errors_are_structured_400s() {
    let (server, addr, handle) = start_server(default_cfg());

    let (status, body) = post(
        addr,
        "/sweep/report",
        r#"{"horizonz":[1], "models":[{"kind":"cyclic","n":3}]}"#,
    );
    assert_eq!(status, 400);
    assert!(
        body.contains("horizonz"),
        "must name the unknown key: {body}"
    );

    let (status, body) = post(
        addr,
        "/sweep/report",
        r#"{"horizons":[1], "threads": 8, "models":[{"kind":"cyclic","n":3}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("fixed_engine_option"), "{body}");

    let (status, body) = post(addr, "/sweep", "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad_json"), "{body}");

    assert_eq!(server.stats().bad_requests, 3);
    assert_eq!(server.stats().sweeps, 0, "no computation was started");
    shutdown(&server, addr, handle);
}

/// Liveness, stats, routing errors, and graceful shutdown.
#[test]
fn lifecycle_healthz_stats_routing_and_drain() {
    let (server, addr, handle) = start_server(default_cfg());

    let (status, body) = http_request(addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, br#"{"status":"ok"}"#);

    let (status, _) = post(addr, "/sweep/report", SPEC_BODY);
    assert_eq!(status, 200);

    let (status, body) = http_request(addr, "GET", "/stats", "").unwrap();
    assert_eq!(status, 200);
    let doc = regenr_engine::Json::parse(&String::from_utf8(body).unwrap()).unwrap();
    let serve = doc.get("serve").expect("stats carries serve counters");
    assert_eq!(serve.get("sweeps").and_then(|n| n.as_f64()), Some(1.0));
    assert!(doc.get("cache").is_some(), "stats carries cache counters");

    let (status, _) = http_request(addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "GET", "/sweep", "").unwrap();
    assert_eq!(status, 405, "GET on a POST endpoint");

    // Graceful drain: the run loop returns once in-flight connections are
    // done (the join inside `shutdown` would hang forever otherwise).
    shutdown(&server, addr, handle);
    let stats = server.stats();
    assert_eq!(stats.sweeps, 1);
    assert_eq!(stats.bad_requests, 0);
}
