//! Property tests: canned compositions are *bitwise* equal to the
//! hand-coded model families — same state numbering (BFS discovery order),
//! same CSR structure, and the same bit pattern in every rate, reward and
//! initial-probability entry, across random parameters.

use proptest::prelude::*;
use regenr_ctmc::Ctmc;
use regenr_models::compose::ComposeModel;
use regenr_models::machines::MachinesModel;
use regenr_models::multiproc::{MultiprocModel, MultiprocParams};
use regenr_models::redundant::duplex_with_coverage;

fn assert_ctmc_bitwise_eq(a: &Ctmc, b: &Ctmc) {
    assert_eq!(a.n_states(), b.n_states(), "state count");
    assert_eq!(a.generator().row_ptr(), b.generator().row_ptr(), "row_ptr");
    assert_eq!(a.generator().col_idx(), b.generator().col_idx(), "col_idx");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(a.generator().values()),
        bits(b.generator().values()),
        "rates"
    );
    assert_eq!(bits(a.initial()), bits(b.initial()), "initial");
    assert_eq!(bits(a.rewards()), bits(b.rewards()), "rewards");
}

proptest! {
    #[test]
    fn composed_duplex_bitwise_matches_hand_coded(
        lambda in 1e-6f64..1.0,
        mu in 1e-3f64..10.0,
        // Strictly positive coverage: at c = 0 the hand-coded builder keeps
        // an unreachable simplex state that exploration never numbers.
        coverage in 0.01f64..1.0,
    ) {
        let hand = duplex_with_coverage(lambda, mu, coverage);
        let composed = ComposeModel::duplex(lambda, mu, coverage)
            .unwrap()
            .build()
            .unwrap();
        assert_ctmc_bitwise_eq(&hand, &composed.ctmc);
    }

    #[test]
    fn composed_machines_bitwise_matches_hand_coded(
        machines in 1u32..40,
        repairmen in 1u32..40,
        lambda in 1e-6f64..1.0,
        mu in 1e-3f64..10.0,
    ) {
        let hand = MachinesModel { machines, repairmen, lambda, mu }
            .build()
            .unwrap();
        let composed = ComposeModel::machines(machines, repairmen, lambda, mu)
            .unwrap()
            .build()
            .unwrap();
        assert_ctmc_bitwise_eq(&hand.ctmc, &composed.ctmc);
    }

    #[test]
    fn composed_multiproc_bitwise_matches_hand_coded(
        n_proc in 1u32..8,
        n_mem in 1u32..8,
        lambda_p in 1e-6f64..0.1,
        lambda_m in 1e-6f64..0.1,
        coverage in 0.01f64..1.0,
        mu in 0.1f64..5.0,
        delta in 0.1f64..10.0,
        absorbing_crash in any::<bool>(),
    ) {
        let params = MultiprocParams {
            n_proc, n_mem, lambda_p, lambda_m, coverage, mu, delta, absorbing_crash,
        };
        let hand = MultiprocModel::new(params).build().unwrap();
        let composed = ComposeModel::multiproc(&params).unwrap().build().unwrap();
        assert_ctmc_bitwise_eq(&hand.ctmc, &composed.ctmc);
    }
}
