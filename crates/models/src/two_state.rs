//! The textbook 2-state repairable unit — the closed-form anchor of the
//! test suite.
//!
//! State 0 = up, state 1 = down; failure rate `λ`, repair rate `μ`, reward 1
//! on the down state, so `TRR(t)` is the point unavailability
//!
//! `UA(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})`.

use regenr_ctmc::Ctmc;

/// Builds the repairable unit (initially up).
pub fn repairable_unit(lambda: f64, mu: f64) -> Ctmc {
    Ctmc::from_rates(
        2,
        &[(0, 1, lambda), (1, 0, mu)],
        vec![1.0, 0.0],
        vec![0.0, 1.0],
    )
    .expect("two-state parameters are always valid")
}

/// Closed-form point unavailability.
pub fn unavailability(lambda: f64, mu: f64, t: f64) -> f64 {
    lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp())
}

/// Closed-form interval unavailability `MRR(t) = (1/t)∫₀ᵗ UA`.
pub fn interval_unavailability(lambda: f64, mu: f64, t: f64) -> f64 {
    let lm = lambda + mu;
    lambda / lm * (t - (1.0 - (-lm * t).exp()) / lm) / t
}

/// Non-repairable variant: the down state is absorbing and
/// `UR(t) = 1 − e^{−λt}`.
pub fn non_repairable_unit(lambda: f64) -> Ctmc {
    Ctmc::from_rates(2, &[(0, 1, lambda)], vec![1.0, 0.0], vec![0.0, 1.0])
        .expect("parameters are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    #[test]
    fn closed_forms_match_sr() {
        let (l, m) = (2e-3, 0.5);
        let c = repairable_unit(l, m);
        let sr = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.5, 10.0, 500.0] {
            assert!((sr.solve(MeasureKind::Trr, t).value - unavailability(l, m, t)).abs() < 1e-11);
            assert!(
                (sr.solve(MeasureKind::Mrr, t).value - interval_unavailability(l, m, t)).abs()
                    < 1e-11
            );
        }
    }

    #[test]
    fn limits_are_sane() {
        let (l, m) = (0.1, 1.0);
        assert!(unavailability(l, m, 0.0) == 0.0);
        assert!((unavailability(l, m, 1e9) - l / (l + m)).abs() < 1e-12);
        assert!(interval_unavailability(l, m, 1e9) < unavailability(l, m, 1e9));
    }
}
