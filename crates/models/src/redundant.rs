//! Duplex system with imperfect failure coverage.
//!
//! Two active units (failure rate `λ` each). A unit failure is *covered*
//! with probability `c` (the survivor carries the load, repair at `μ`) and
//! uncovered with probability `1−c` (immediate, unrecoverable system
//! failure). From the simplex state a second failure is also fatal. This is
//! the smallest interesting model with an absorbing state (`A = 1`) whose
//! unreliability has a simple closed form, used to validate the absorbing
//! paths of every solver.

use regenr_ctmc::Ctmc;

/// Builds the duplex model: state 0 = duplex, 1 = simplex, 2 = failed
/// (absorbing). Reward = failure indicator (`TRR(t) = UR(t)`).
pub fn duplex_with_coverage(lambda: f64, mu: f64, coverage: f64) -> Ctmc {
    assert!((0.0..=1.0).contains(&coverage));
    Ctmc::from_rates(
        3,
        &[
            (0, 1, 2.0 * lambda * coverage),
            (0, 2, 2.0 * lambda * (1.0 - coverage)),
            (1, 0, mu),
            (1, 2, lambda),
        ],
        vec![1.0, 0.0, 0.0],
        vec![0.0, 0.0, 1.0],
    )
    .expect("duplex parameters are always valid")
}

/// Closed-form unreliability of [`duplex_with_coverage`], from the explicit
/// 2×2 matrix exponential of the transient block.
pub fn duplex_unreliability(lambda: f64, mu: f64, coverage: f64, t: f64) -> f64 {
    // Transient generator restricted to {duplex, simplex}:
    //   [ −2λ        2λc ]
    //   [  μ      −(λ+μ) ]
    // UR(t) = 1 − (p_0(t) + p_1(t)).
    let a = -2.0 * lambda;
    let b = 2.0 * lambda * coverage;
    let c2 = mu;
    let d = -(lambda + mu);
    // Eigenvalues of the 2×2 block.
    let tr = a + d;
    let det = a * d - b * c2;
    let disc = (tr * tr / 4.0 - det).max(0.0).sqrt();
    let (s1, s2) = (tr / 2.0 + disc, tr / 2.0 - disc);
    // p(t) = e^{At}·p(0) with p(0) = (1,0); survival = 1ᵀp(t).
    // Diagonalize: survival(t) = k1·e^{s1 t} + k2·e^{s2 t} where k_i follow
    // from matching value and derivative at t=0:
    //   survival(0) = 1,  survival'(0) = 1ᵀA p(0) = a + b.
    let sp0 = a + b;
    if (s1 - s2).abs() < 1e-14 {
        // Defective/repeated root: survival = (1 + (sp0 − s1)·t)·e^{s1 t}.
        return 1.0 - (1.0 + (sp0 - s1) * t) * (s1 * t).exp();
    }
    let k1 = (sp0 - s2) / (s1 - s2);
    let k2 = 1.0 - k1;
    1.0 - (k1 * (s1 * t).exp() + k2 * (s2 * t).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    #[test]
    fn closed_form_matches_sr() {
        let (l, m, c) = (0.01, 1.0, 0.95);
        let chain = duplex_with_coverage(l, m, c);
        let sr = SrSolver::new(&chain, SrOptions::default());
        for &t in &[1.0, 10.0, 100.0, 1000.0] {
            let got = sr.solve(MeasureKind::Trr, t).value;
            let want = duplex_unreliability(l, m, c, t);
            assert!((got - want).abs() < 1e-10, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn perfect_coverage_beats_imperfect() {
        let (l, m, t) = (0.01, 1.0, 100.0);
        assert!(
            duplex_unreliability(l, m, 1.0, t) < duplex_unreliability(l, m, 0.9, t),
            "higher coverage must lower unreliability"
        );
    }

    #[test]
    fn unreliability_is_monotone_in_t() {
        let mut prev = 0.0;
        for i in 1..50 {
            let ur = duplex_unreliability(0.05, 0.5, 0.98, i as f64);
            assert!(ur >= prev - 1e-12);
            prev = ur;
        }
        assert!(prev > 0.0 && prev <= 1.0);
    }
}
