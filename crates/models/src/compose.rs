//! Declarative component-system models compiled to CTMCs.
//!
//! The paper's evaluation models were produced by the authors' in-house
//! modeling tool (Section 3); this module is the repo's equivalent: a system
//! is described as named **component classes** — each with a count, an
//! exponential per-unit failure rate, a repair rate, an imperfect coverage
//! probability, and a minimum number of working units the system needs —
//! plus a global repair-crew limit, a policy for uncovered failures, and a
//! reward expression. [`ComposeModel`] implements
//! [`ModelSpec`] over a packed per-class-count state
//! vector, so the existing [`CtmcBuilder`] pipeline (eager or streaming)
//! compiles it to a validated [`Ctmc`].
//!
//! Dependency rules condition a class's failure rate on another class's
//! state: `Dependency { on, min_working, factor }` multiplies the failure
//! rate by `factor` whenever class `on` has fewer than `min_working` units
//! working. `factor = 0` models dormancy (a component cannot fail while its
//! power feed is down), `factor > 1` models stress.
//!
//! The hand-coded `duplex`, `machines` and `multiproc` families are exactly
//! expressible as canned compositions ([`ComposeModel::duplex`],
//! [`ComposeModel::machines`], [`ComposeModel::multiproc`]); unit and
//! property tests assert the compiled chains are bit-for-bit identical to
//! the hand-coded builders. The RAID model stays hand-coded as the paper
//! anchor.

use crate::multiproc::MultiprocParams;
use regenr_ctmc::{BuiltModel, Ctmc, CtmcBuilder, CtmcError, ModelSpec};
use std::fmt;

/// A failure-rate modifier conditioned on another class's state.
#[derive(Clone, Debug, PartialEq)]
pub struct Dependency {
    /// Name of the watched class.
    pub on: String,
    /// The rule fires while the watched class has fewer than this many
    /// working units.
    pub min_working: u32,
    /// Multiplier applied to the failure rate while the rule fires
    /// (`0` = dormant, `> 1` = stressed).
    pub factor: f64,
}

/// One class of identical components.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentClass {
    /// Class name (unique within a model).
    pub name: String,
    /// Number of units.
    pub count: u32,
    /// Per-unit failure rate.
    pub lambda: f64,
    /// Per-crew repair rate for this class.
    pub mu: f64,
    /// Probability a failure is covered (reconfiguration succeeds).
    pub coverage: f64,
    /// Minimum working units for the system to be *up*.
    pub required: u32,
    /// Failure-rate modifiers.
    pub deps: Vec<Dependency>,
}

impl ComponentClass {
    /// A class with perfect coverage, no up-requirement and no dependencies.
    pub fn new(name: impl Into<String>, count: u32, lambda: f64, mu: f64) -> Self {
        ComponentClass {
            name: name.into(),
            count,
            lambda,
            mu,
            coverage: 1.0,
            required: 0,
            deps: Vec::new(),
        }
    }

    /// Sets the coverage probability.
    pub fn coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage;
        self
    }

    /// Sets the minimum working units for system-up.
    pub fn required(mut self, required: u32) -> Self {
        self.required = required;
        self
    }

    /// Adds a dependency rule.
    pub fn dep(mut self, on: impl Into<String>, min_working: u32, factor: f64) -> Self {
        self.deps.push(Dependency {
            on: on.into(),
            min_working,
            factor,
        });
        self
    }
}

/// What happens on an uncovered failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UncoveredPolicy {
    /// The system is lost: absorbing `Failed` state (mission reliability).
    Absorbing,
    /// The system crashes and reboots to the full configuration at this rate.
    Reboot(f64),
}

/// Reward expression evaluated per state.
#[derive(Clone, Debug, PartialEq)]
pub enum RewardKind {
    /// `1` when the system is down — `TRR(t)` is unreliability/unavailability.
    Down,
    /// `1` when the system is up.
    Up,
    /// Minimum working count over all classes while up, `0` when down
    /// (computational capacity).
    Capacity,
    /// Working count of one class.
    Working(String),
}

/// Validation errors of a composition.
#[derive(Clone, Debug, PartialEq)]
pub enum ComposeError {
    /// A model needs at least one component class.
    NoClasses,
    /// Two classes share a name.
    DuplicateClass(String),
    /// A class has zero units.
    EmptyClass(String),
    /// A rate/probability parameter is out of range.
    BadParameter {
        /// Offending class.
        class: String,
        /// What is wrong.
        what: &'static str,
    },
    /// A dependency references an unknown class.
    UnknownDependency {
        /// Depending class.
        class: String,
        /// Unresolved name.
        on: String,
    },
    /// A class depends on itself.
    SelfDependency(String),
    /// The packed state vector does not fit in 64 bits.
    StateTooWide {
        /// Total bits required.
        bits: u32,
    },
    /// The reboot rate is not positive and finite.
    BadRebootRate(f64),
    /// `down_absorbing` lumps *every* system-down transition into the
    /// absorbing `Failed` state, which only makes sense when uncovered
    /// failures go there too.
    DownAbsorbingNeedsAbsorbing,
    /// A `working(class)` reward references an unknown class.
    UnknownRewardClass(String),
    /// A rate-scaling request named an unknown parameter or used a factor
    /// that is not positive and finite (see
    /// [`ComposeModel::with_scaled_rate`]).
    BadScale {
        /// The requested parameter.
        param: String,
        /// The requested factor.
        factor: f64,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::NoClasses => write!(f, "a composition needs at least one class"),
            ComposeError::DuplicateClass(name) => write!(f, "duplicate class {name:?}"),
            ComposeError::EmptyClass(name) => write!(f, "class {name:?} has count 0"),
            ComposeError::BadParameter { class, what } => {
                write!(f, "class {class:?}: {what}")
            }
            ComposeError::UnknownDependency { class, on } => {
                write!(f, "class {class:?} depends on unknown class {on:?}")
            }
            ComposeError::SelfDependency(name) => {
                write!(f, "class {name:?} depends on itself")
            }
            ComposeError::StateTooWide { bits } => write!(
                f,
                "packed state vector needs {bits} bits, more than the 64 available"
            ),
            ComposeError::BadRebootRate(rate) => {
                write!(f, "reboot rate {rate} must be positive and finite")
            }
            ComposeError::DownAbsorbingNeedsAbsorbing => write!(
                f,
                "down_absorbing requires the absorbing uncovered policy (not reboot)"
            ),
            ComposeError::BadScale { param, factor } => write!(
                f,
                "cannot scale {param:?} by {factor} \
                 (param must be \"lambda\" or \"mu\", factor positive and finite)"
            ),
            ComposeError::UnknownRewardClass(name) => {
                write!(f, "reward references unknown class {name:?}")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

/// State of a composition: per-class working counts packed into a `u64`,
/// plus the two special sinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComposeState {
    /// Working counts, packed per class (see [`ComposeModel::working`]).
    Up(u64),
    /// Absorbing system-loss state.
    Failed,
    /// Crashed by an uncovered failure, awaiting reboot.
    Crashed,
}

/// Resolved dependency: class index, threshold, factor.
type ResolvedDep = (usize, u32, f64);

/// A validated component-system model, compilable via
/// [`ModelSpec`].
///
/// Class declaration order is semantic: repair crews are assigned to failed
/// components in class order, and transition emission (hence BFS state
/// numbering) follows it. Spec-level parsing sorts classes by name so that
/// permuted component listings compile to identical chains.
#[derive(Clone, Debug)]
pub struct ComposeModel {
    classes: Vec<ComponentClass>,
    crews: u32,
    uncovered: UncoveredPolicy,
    down_absorbing: bool,
    reward: RewardKind,
    /// Bit offset of each class in the packed state.
    shifts: Vec<u32>,
    /// Bit width of each class.
    widths: Vec<u32>,
    /// Per-class dependencies with the watched class resolved to an index.
    resolved_deps: Vec<Vec<ResolvedDep>>,
    /// Class index for [`RewardKind::Working`] (0 otherwise).
    reward_class: usize,
}

impl ComposeModel {
    /// Validates and compiles the class structure.
    pub fn new(
        classes: Vec<ComponentClass>,
        crews: u32,
        uncovered: UncoveredPolicy,
        down_absorbing: bool,
        reward: RewardKind,
    ) -> Result<Self, ComposeError> {
        if classes.is_empty() {
            return Err(ComposeError::NoClasses);
        }
        for (i, c) in classes.iter().enumerate() {
            if classes[..i].iter().any(|o| o.name == c.name) {
                return Err(ComposeError::DuplicateClass(c.name.clone()));
            }
            if c.count == 0 {
                return Err(ComposeError::EmptyClass(c.name.clone()));
            }
            let bad = |what| ComposeError::BadParameter {
                class: c.name.clone(),
                what,
            };
            if !(c.lambda.is_finite() && c.lambda >= 0.0) {
                return Err(bad("lambda must be finite and >= 0"));
            }
            if !(c.mu.is_finite() && c.mu >= 0.0) {
                return Err(bad("mu must be finite and >= 0"));
            }
            if !(0.0..=1.0).contains(&c.coverage) {
                return Err(bad("coverage must be in [0, 1]"));
            }
            if c.required > c.count {
                return Err(bad("required exceeds count"));
            }
            for d in &c.deps {
                if d.on == c.name {
                    return Err(ComposeError::SelfDependency(c.name.clone()));
                }
                if !(d.factor.is_finite() && d.factor >= 0.0) {
                    return Err(bad("dependency factor must be finite and >= 0"));
                }
            }
        }
        let index_of = |name: &str| classes.iter().position(|c| c.name == name);
        let mut resolved_deps = Vec::with_capacity(classes.len());
        for c in &classes {
            let mut deps = Vec::with_capacity(c.deps.len());
            for d in &c.deps {
                let on = index_of(&d.on).ok_or_else(|| ComposeError::UnknownDependency {
                    class: c.name.clone(),
                    on: d.on.clone(),
                })?;
                deps.push((on, d.min_working, d.factor));
            }
            resolved_deps.push(deps);
        }
        let mut shifts = Vec::with_capacity(classes.len());
        let mut widths = Vec::with_capacity(classes.len());
        let mut total: u32 = 0;
        for c in &classes {
            let width = 32 - c.count.leading_zeros();
            shifts.push(total);
            widths.push(width);
            total += width;
        }
        if total > 64 {
            return Err(ComposeError::StateTooWide { bits: total });
        }
        if let UncoveredPolicy::Reboot(delta) = uncovered {
            if !(delta.is_finite() && delta > 0.0) {
                return Err(ComposeError::BadRebootRate(delta));
            }
            if down_absorbing {
                return Err(ComposeError::DownAbsorbingNeedsAbsorbing);
            }
        }
        let reward_class = match &reward {
            RewardKind::Working(name) => {
                index_of(name).ok_or_else(|| ComposeError::UnknownRewardClass(name.clone()))?
            }
            _ => 0,
        };
        Ok(ComposeModel {
            classes,
            crews,
            uncovered,
            down_absorbing,
            reward,
            shifts,
            widths,
            resolved_deps,
            reward_class,
        })
    }

    /// The duplex system of [`crate::redundant`] as a composition: one class
    /// of two units, coverage `c`, one crew, uncovered and system-down
    /// transitions both absorbing, reward = failure indicator.
    pub fn duplex(lambda: f64, mu: f64, coverage: f64) -> Result<Self, ComposeError> {
        ComposeModel::new(
            vec![ComponentClass::new("unit", 2, lambda, mu)
                .coverage(coverage)
                .required(1)],
            1,
            UncoveredPolicy::Absorbing,
            true,
            RewardKind::Down,
        )
    }

    /// The machines-repairman model of [`crate::machines`] as a composition:
    /// one class of `machines` units, `repairmen` crews, capacity reward.
    pub fn machines(
        machines: u32,
        repairmen: u32,
        lambda: f64,
        mu: f64,
    ) -> Result<Self, ComposeError> {
        ComposeModel::new(
            vec![ComponentClass::new("machine", machines, lambda, mu)],
            repairmen,
            UncoveredPolicy::Absorbing,
            false,
            RewardKind::Capacity,
        )
    }

    /// The degradable multiprocessor of [`crate::multiproc`] as a
    /// composition: `proc` and `mem` classes sharing one crew (processors
    /// first), coverage split per failure, capacity reward `min(p, m)`.
    pub fn multiproc(params: &MultiprocParams) -> Result<Self, ComposeError> {
        let uncovered = if params.absorbing_crash {
            UncoveredPolicy::Absorbing
        } else {
            UncoveredPolicy::Reboot(params.delta)
        };
        ComposeModel::new(
            vec![
                ComponentClass::new("proc", params.n_proc, params.lambda_p, params.mu)
                    .coverage(params.coverage)
                    .required(1),
                ComponentClass::new("mem", params.n_mem, params.lambda_m, params.mu)
                    .coverage(params.coverage)
                    .required(1),
            ],
            1,
            uncovered,
            false,
            RewardKind::Capacity,
        )
    }

    /// The component classes, in declaration order.
    pub fn classes(&self) -> &[ComponentClass] {
        &self.classes
    }

    /// Returns a copy of this model with every class's failure rate
    /// (`param = "lambda"`) or repair rate (`param = "mu"`) multiplied by
    /// `factor`. This is the rate-scaling hook sensitivity sweeps use:
    /// a positive finite factor never changes which rates are zero, so the
    /// scaled model explores the identical state space and the compiled
    /// chain shares the base model's *structural* fingerprint by
    /// construction — the engine's artifact graph can re-bind cached
    /// plans, layouts, and chain facts across the whole grid.
    pub fn with_scaled_rate(&self, param: &str, factor: f64) -> Result<Self, ComposeError> {
        let bad = || ComposeError::BadScale {
            param: param.to_string(),
            factor,
        };
        if !(factor.is_finite() && factor > 0.0) {
            return Err(bad());
        }
        let mut classes = self.classes.clone();
        for c in &mut classes {
            match param {
                "lambda" => c.lambda *= factor,
                "mu" => c.mu *= factor,
                _ => return Err(bad()),
            }
        }
        ComposeModel::new(
            classes,
            self.crews,
            self.uncovered,
            self.down_absorbing,
            self.reward.clone(),
        )
    }

    /// Order-independent default model name: class names and counts in
    /// sorted order, e.g. `compose_mem3_proc4`.
    pub fn default_name(&self) -> String {
        let mut parts: Vec<String> = self
            .classes
            .iter()
            .map(|c| format!("{}{}", c.name, c.count))
            .collect();
        parts.sort();
        format!("compose_{}", parts.join("_"))
    }

    /// Working count of class `i` in a packed state.
    pub fn working(&self, packed: u64, i: usize) -> u32 {
        ((packed >> self.shifts[i]) & ((1u64 << self.widths[i]) - 1)) as u32
    }

    fn decode(&self, packed: u64) -> Vec<u32> {
        (0..self.classes.len())
            .map(|i| self.working(packed, i))
            .collect()
    }

    fn pack(&self, working: &[u32]) -> u64 {
        working
            .iter()
            .zip(&self.shifts)
            .map(|(&w, &s)| (w as u64) << s)
            .sum()
    }

    fn is_up(&self, working: &[u32]) -> bool {
        working
            .iter()
            .zip(&self.classes)
            .all(|(&w, c)| w >= c.required)
    }

    fn full(&self) -> u64 {
        let counts: Vec<u32> = self.classes.iter().map(|c| c.count).collect();
        self.pack(&counts)
    }

    /// Compiles eagerly, returning the state table (tests, small models).
    pub fn build(&self) -> Result<BuiltModel<ComposeState>, CtmcError> {
        CtmcBuilder::default().explore(self)
    }

    /// Compiles via streaming exploration with an explicit state cap —
    /// the path used by `compose` specs, where the cap is an input error.
    pub fn build_streaming(&self, max_states: usize) -> Result<Ctmc, CtmcError> {
        CtmcBuilder::with_max_states(max_states).explore_streaming(self)
    }
}

impl ModelSpec for ComposeModel {
    type State = ComposeState;

    fn initial(&self) -> Vec<(ComposeState, f64)> {
        vec![(ComposeState::Up(self.full()), 1.0)]
    }

    fn reward(&self, state: &ComposeState) -> f64 {
        let packed = match *state {
            ComposeState::Up(packed) => packed,
            ComposeState::Failed | ComposeState::Crashed => {
                return match self.reward {
                    RewardKind::Down => 1.0,
                    _ => 0.0,
                }
            }
        };
        let working = self.decode(packed);
        let up = self.is_up(&working);
        match &self.reward {
            RewardKind::Down => {
                if up {
                    0.0
                } else {
                    1.0
                }
            }
            RewardKind::Up => {
                if up {
                    1.0
                } else {
                    0.0
                }
            }
            RewardKind::Capacity => {
                if up {
                    working.iter().copied().min().unwrap_or(0) as f64
                } else {
                    0.0
                }
            }
            RewardKind::Working(_) => working[self.reward_class] as f64,
        }
    }

    fn transitions(&self, state: &ComposeState) -> Vec<(ComposeState, f64)> {
        let packed = match *state {
            ComposeState::Up(packed) => packed,
            ComposeState::Failed => return Vec::new(),
            ComposeState::Crashed => {
                return match self.uncovered {
                    UncoveredPolicy::Reboot(delta) => {
                        vec![(ComposeState::Up(self.full()), delta)]
                    }
                    // Unreachable: Crashed only exists under Reboot.
                    UncoveredPolicy::Absorbing => Vec::new(),
                };
            }
        };
        let working = self.decode(packed);
        let mut out = Vec::new();
        // Failures, in class order, covered branch before uncovered — the
        // exact emission order (and arithmetic: `w·λ` then `·c` / `·(1−c)`)
        // of the hand-coded families, so BFS numbering and every rate bit
        // pattern match them.
        for (i, c) in self.classes.iter().enumerate() {
            if working[i] == 0 {
                continue;
            }
            let mut rate = working[i] as f64 * c.lambda;
            for &(on, min_working, factor) in &self.resolved_deps[i] {
                if working[on] < min_working {
                    rate *= factor;
                }
            }
            if rate <= 0.0 {
                continue;
            }
            let mut target = working.clone();
            target[i] -= 1;
            if self.down_absorbing && !self.is_up(&target) {
                // Covered or not, the system is lost: lump the full rate
                // into the absorbing state (bitwise `rate`, not
                // `rate·c + rate·(1−c)`).
                out.push((ComposeState::Failed, rate));
                continue;
            }
            if c.coverage > 0.0 {
                out.push((ComposeState::Up(self.pack(&target)), rate * c.coverage));
            }
            if c.coverage < 1.0 {
                let sink = match self.uncovered {
                    UncoveredPolicy::Absorbing => ComposeState::Failed,
                    UncoveredPolicy::Reboot(_) => ComposeState::Crashed,
                };
                out.push((sink, rate * (1.0 - c.coverage)));
            }
        }
        // Repairs: crews are assigned to failed components in class order.
        let mut crews_left = self.crews;
        for (i, c) in self.classes.iter().enumerate() {
            if crews_left == 0 {
                break;
            }
            let assigned = (c.count - working[i]).min(crews_left);
            crews_left -= assigned;
            if assigned > 0 && c.mu > 0.0 {
                let mut target = working.clone();
                target[i] += 1;
                out.push((ComposeState::Up(self.pack(&target)), assigned as f64 * c.mu));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::MachinesModel;
    use crate::multiproc::MultiprocModel;
    use crate::redundant::duplex_with_coverage;

    /// Bitwise CTMC equality: structure, every rate bit, initial, rewards.
    fn assert_ctmc_bitwise_eq(a: &Ctmc, b: &Ctmc) {
        assert_eq!(a.n_states(), b.n_states());
        assert_eq!(a.generator().row_ptr(), b.generator().row_ptr());
        assert_eq!(a.generator().col_idx(), b.generator().col_idx());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.generator().values()), bits(b.generator().values()));
        assert_eq!(bits(a.initial()), bits(b.initial()));
        assert_eq!(bits(a.rewards()), bits(b.rewards()));
    }

    #[test]
    fn duplex_composition_is_bitwise_identical() {
        for &(lambda, mu, coverage) in &[(0.01, 1.0, 0.95), (0.3, 2.5, 0.5), (1e-4, 0.7, 1.0)] {
            let hand = duplex_with_coverage(lambda, mu, coverage);
            let composed = ComposeModel::duplex(lambda, mu, coverage)
                .unwrap()
                .build()
                .unwrap();
            assert_ctmc_bitwise_eq(&hand, &composed.ctmc);
        }
    }

    #[test]
    fn machines_composition_is_bitwise_identical() {
        for &(machines, repairmen) in &[(8u32, 2u32), (1, 1), (5, 5), (12, 3)] {
            let hand = MachinesModel {
                machines,
                repairmen,
                lambda: 0.13,
                mu: 1.7,
            }
            .build()
            .unwrap();
            let composed = ComposeModel::machines(machines, repairmen, 0.13, 1.7)
                .unwrap()
                .build()
                .unwrap();
            assert_ctmc_bitwise_eq(&hand.ctmc, &composed.ctmc);
        }
    }

    #[test]
    fn multiproc_composition_is_bitwise_identical() {
        for absorbing_crash in [false, true] {
            let params = MultiprocParams {
                absorbing_crash,
                ..Default::default()
            };
            let hand = MultiprocModel::new(params).build().unwrap();
            let composed = ComposeModel::multiproc(&params).unwrap().build().unwrap();
            assert_ctmc_bitwise_eq(&hand.ctmc, &composed.ctmc);
        }
    }

    #[test]
    fn multiproc_perfect_coverage_composition_matches() {
        let params = MultiprocParams {
            coverage: 1.0,
            ..Default::default()
        };
        let hand = MultiprocModel::new(params).build().unwrap();
        let composed = ComposeModel::multiproc(&params).unwrap().build().unwrap();
        assert_ctmc_bitwise_eq(&hand.ctmc, &composed.ctmc);
    }

    #[test]
    fn dormant_dependency_suppresses_failures() {
        // Disks cannot fail while the (single) power feed is down.
        let model = ComposeModel::new(
            vec![
                ComponentClass::new("power", 1, 0.01, 2.0).required(1),
                ComponentClass::new("disk", 2, 0.05, 1.0)
                    .required(1)
                    .dep("power", 1, 0.0),
            ],
            1,
            UncoveredPolicy::Absorbing,
            false,
            RewardKind::Down,
        )
        .unwrap();
        let built = model.build().unwrap();
        // Find the state with power down, both disks up; its only outgoing
        // transitions must be the repair (disk failures are dormant).
        let dark = built
            .states
            .iter()
            .position(|s| matches!(s, ComposeState::Up(p) if model.working(*p, 0) == 0 && model.working(*p, 1) == 2))
            .expect("power-down state reachable");
        let row: Vec<_> = built
            .ctmc
            .generator()
            .row(dark)
            .filter(|&(j, _)| j != dark)
            .collect();
        assert_eq!(row.len(), 1, "only the power repair may leave {row:?}");
        assert_eq!(row[0].1, 2.0);
    }

    #[test]
    fn stress_dependency_raises_failure_rate() {
        // Remaining units fail 3× faster once the pool is degraded.
        let model = ComposeModel::new(
            vec![
                ComponentClass::new("unit", 3, 0.1, 1.0)
                    .required(1)
                    .dep("spare", 1, 3.0),
                ComponentClass::new("spare", 1, 0.1, 1.0),
            ],
            1,
            UncoveredPolicy::Absorbing,
            false,
            RewardKind::Up,
        )
        .unwrap();
        let built = model.build().unwrap();
        let find = |unit: u32, spare: u32| {
            built
                .states
                .iter()
                .position(|s| matches!(s, ComposeState::Up(p) if model.working(*p, 0) == unit && model.working(*p, 1) == spare))
                .unwrap()
        };
        let calm = find(3, 1);
        let stressed = find(3, 0);
        let calm_rate = built.ctmc.generator().get(calm, find(2, 1));
        let stressed_rate = built.ctmc.generator().get(stressed, find(2, 0));
        assert_eq!(calm_rate, 3.0 * 0.1);
        assert_eq!(stressed_rate, 3.0 * 0.1 * 3.0);
    }

    #[test]
    fn k_of_n_with_coverage_reaches_absorbing_failed() {
        let model = ComposeModel::new(
            vec![ComponentClass::new("node", 5, 0.02, 1.0)
                .coverage(0.95)
                .required(3)],
            2,
            UncoveredPolicy::Absorbing,
            true,
            RewardKind::Down,
        )
        .unwrap();
        let built = model.build().unwrap();
        // Working counts 5, 4, 3 plus the absorbing Failed state: any
        // transition below the k = 3 threshold is lumped.
        assert_eq!(built.ctmc.n_states(), 4);
        let failed = built.state_index(&ComposeState::Failed).unwrap();
        assert_eq!(built.ctmc.exit_rate(failed), 0.0);
        assert_eq!(built.ctmc.rewards()[failed], 1.0);
    }

    #[test]
    fn streaming_build_matches_eager() {
        let params = MultiprocParams::default();
        let model = ComposeModel::multiproc(&params).unwrap();
        let eager = model.build().unwrap().ctmc;
        let streamed = model.build_streaming(1_000_000).unwrap();
        assert_ctmc_bitwise_eq(&eager, &streamed);
    }

    #[test]
    fn state_cap_is_a_spec_level_error() {
        let model = ComposeModel::machines(100, 4, 0.1, 1.0).unwrap();
        match model.build_streaming(10) {
            Err(CtmcError::StateSpaceExceeded { max_states: 10 }) => {}
            other => panic!("expected StateSpaceExceeded, got {other:?}"),
        }
    }

    #[test]
    fn default_name_is_order_independent() {
        let a = ComposeModel::multiproc(&MultiprocParams::default()).unwrap();
        assert_eq!(a.default_name(), "compose_mem3_proc4");
    }

    #[test]
    fn validation_rejects_bad_structures() {
        let unit = || ComponentClass::new("unit", 2, 0.1, 1.0);
        let build = |classes: Vec<ComponentClass>| {
            ComposeModel::new(
                classes,
                1,
                UncoveredPolicy::Absorbing,
                false,
                RewardKind::Down,
            )
        };
        assert_eq!(build(vec![]).unwrap_err(), ComposeError::NoClasses);
        assert_eq!(
            build(vec![unit(), unit()]).unwrap_err(),
            ComposeError::DuplicateClass("unit".into())
        );
        assert_eq!(
            build(vec![ComponentClass::new("unit", 0, 0.1, 1.0)]).unwrap_err(),
            ComposeError::EmptyClass("unit".into())
        );
        assert!(matches!(
            build(vec![unit().coverage(1.5)]).unwrap_err(),
            ComposeError::BadParameter { .. }
        ));
        assert!(matches!(
            build(vec![unit().required(3)]).unwrap_err(),
            ComposeError::BadParameter { .. }
        ));
        assert_eq!(
            build(vec![unit().dep("ghost", 1, 2.0)]).unwrap_err(),
            ComposeError::UnknownDependency {
                class: "unit".into(),
                on: "ghost".into()
            }
        );
        assert_eq!(
            build(vec![unit().dep("unit", 1, 2.0)]).unwrap_err(),
            ComposeError::SelfDependency("unit".into())
        );
        let wide: Vec<ComponentClass> = ["a", "b", "c"]
            .iter()
            .map(|n| ComponentClass::new(*n, u32::MAX, 0.1, 1.0))
            .collect();
        assert_eq!(
            build(wide).unwrap_err(),
            ComposeError::StateTooWide { bits: 96 }
        );
        assert_eq!(
            ComposeModel::new(
                vec![unit()],
                1,
                UncoveredPolicy::Reboot(0.0),
                false,
                RewardKind::Down
            )
            .unwrap_err(),
            ComposeError::BadRebootRate(0.0)
        );
        assert_eq!(
            ComposeModel::new(
                vec![unit()],
                1,
                UncoveredPolicy::Reboot(1.0),
                true,
                RewardKind::Down
            )
            .unwrap_err(),
            ComposeError::DownAbsorbingNeedsAbsorbing
        );
        assert_eq!(
            ComposeModel::new(
                vec![unit()],
                1,
                UncoveredPolicy::Absorbing,
                false,
                RewardKind::Working("ghost".into())
            )
            .unwrap_err(),
            ComposeError::UnknownRewardClass("ghost".into())
        );
    }

    /// The sensitivity-scaling hook: a scaled model explores the identical
    /// state space (same pattern, so same structural fingerprint) with the
    /// targeted rates multiplied; bad params/factors are rejected.
    #[test]
    fn scaled_rates_share_the_state_space_and_reject_bad_requests() {
        let model = ComposeModel::new(
            vec![
                ComponentClass::new("a", 2, 0.1, 1.0).required(1),
                ComponentClass::new("b", 1, 0.05, 0.5),
            ],
            1,
            UncoveredPolicy::Absorbing,
            false,
            RewardKind::Down,
        )
        .unwrap();
        let scaled = model.with_scaled_rate("lambda", 2.0).unwrap();
        assert_eq!(scaled.classes()[0].lambda, 0.2);
        assert_eq!(scaled.classes()[0].mu, 1.0, "mu untouched");
        let base = model.build_streaming(10_000).unwrap();
        let twice = scaled.build_streaming(10_000).unwrap();
        assert_eq!(base.n_states(), twice.n_states());
        assert_eq!(base.generator().row_ptr(), twice.generator().row_ptr());
        assert_eq!(base.generator().col_idx(), twice.generator().col_idx());
        for (bad_param, bad_factor) in [("rate", 2.0), ("mu", 0.0), ("mu", f64::NAN)] {
            assert!(
                model.with_scaled_rate(bad_param, bad_factor).is_err(),
                "{bad_param} × {bad_factor} accepted"
            );
        }
    }
}
