//! A ring of `n` states with unit rates.
//!
//! With every exit rate equal to the uniformization rate, the randomized
//! DTMC has no self-loops and is *periodic* — the stress case for
//! steady-state detection (`d_n` never decays under θ=0 randomization). Used
//! by failure-injection tests.

use regenr_ctmc::Ctmc;

/// Builds the ring; reward 1 on state 0.
pub fn ring(n: usize) -> Ctmc {
    assert!(n >= 2);
    let rates: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
    let mut initial = vec![0.0; n];
    initial[0] = 1.0;
    let mut rewards = vec![0.0; n];
    rewards[0] = 1.0;
    Ctmc::from_rates(n, &rates, initial, rewards).expect("ring is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_ctmc::{analyze, Uniformized};
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    #[test]
    fn ring_is_irreducible_and_periodic_under_theta_zero() {
        let c = ring(6);
        assert!(analyze(&c).unwrap().is_irreducible());
        let u = Uniformized::new(&c, 0.0);
        for i in 0..6 {
            assert_eq!(u.p.get(i, i), 0.0, "θ=0 ring must lack self-loops");
        }
    }

    #[test]
    fn occupancy_converges_to_uniform() {
        let c = ring(5);
        let sr = SrSolver::new(&c, SrOptions::default());
        let v = sr.solve(MeasureKind::Trr, 500.0).value;
        assert!(
            (v - 0.2).abs() < 1e-9,
            "long-run occupancy must be 1/n, got {v}"
        );
    }
}
