//! Dependability/performability models used by the paper's evaluation and by
//! this repository's tests, examples, and benches.
//!
//! * [`raid`] — the level-5 RAID architecture of the paper's Section 3
//!   (Fig. 2): `G` parity groups × `N` disks, `N` controllers, hot spares,
//!   reconstruction with overload, global repair; `UA(t)` (irreducible) and
//!   `UR(t)` (absorbing) variants;
//! * [`two_state`] — the textbook repairable unit with closed-form
//!   availability (the validation anchor of the test suite);
//! * [`machines`] — machines-repairman performability model (reward = number
//!   of working machines), exercising non-binary reward structures;
//! * [`redundant`] — duplex system with imperfect failure coverage and an
//!   absorbing uncovered-failure state;
//! * [`multiproc`] — degradable multiprocessor (processors × memories,
//!   coverage, priority repair) with capacity rewards `min(p, m)`;
//! * [`cyclic`] — a ring of states; with equal rates its randomized DTMC is
//!   periodic, stressing steady-state detection;
//! * [`compose`] — declarative component-system models (classes × counts ×
//!   rates × coverage × dependencies × repair crews) compiled to CTMCs; the
//!   `duplex`/`machines`/`multiproc` families are canned compositions,
//!   cross-checked bitwise against the hand-coded builders.

pub mod compose;
pub mod cyclic;
pub mod machines;
pub mod multiproc;
pub mod raid;
pub mod redundant;
pub mod two_state;

pub use compose::{
    ComponentClass, ComposeError, ComposeModel, ComposeState, Dependency, RewardKind,
    UncoveredPolicy,
};
pub use raid::{RaidModel, RaidParams, RaidState};
