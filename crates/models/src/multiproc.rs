//! Fault-tolerant multiprocessor performability model.
//!
//! The classic degradable-system example of the performability literature
//! (Meyer-style): `P` processors and `M` memory modules, each failing
//! independently; a failure is *covered* (successful reconfiguration) with
//! probability `c`, otherwise the whole system crashes. A single repairman
//! restores modules (processors first); a crashed system is rebooted to full
//! configuration at rate `δ` (or, in the mission-reliability variant, the
//! crash is absorbing). Computational capacity — the reward rate — is
//! `min(p, m)` for an operational configuration, `0` otherwise, giving a
//! genuinely multi-level reward structure.

use regenr_ctmc::{BuiltModel, CtmcBuilder, CtmcError, ModelSpec};

/// Parameters of the multiprocessor model.
#[derive(Clone, Copy, Debug)]
pub struct MultiprocParams {
    /// Number of processors.
    pub n_proc: u32,
    /// Number of memory modules.
    pub n_mem: u32,
    /// Per-processor failure rate.
    pub lambda_p: f64,
    /// Per-memory failure rate.
    pub lambda_m: f64,
    /// Coverage probability of a failure.
    pub coverage: f64,
    /// Repair rate of the single repairman (processors first).
    pub mu: f64,
    /// Reboot rate after a crash; ignored in the absorbing variant.
    pub delta: f64,
    /// `true`: crash state absorbing (mission reliability, `A = 1`).
    pub absorbing_crash: bool,
}

impl Default for MultiprocParams {
    fn default() -> Self {
        MultiprocParams {
            n_proc: 4,
            n_mem: 3,
            lambda_p: 1e-4,
            lambda_m: 5e-5,
            coverage: 0.98,
            mu: 1.0,
            delta: 6.0,
            absorbing_crash: false,
        }
    }
}

/// State of the multiprocessor model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultiprocState {
    /// `p` processors and `m` memories operational (the system is *up* iff
    /// `p ≥ 1` and `m ≥ 1`; fully failed-by-attrition configurations are
    /// still repairable).
    Up {
        /// Operational processors.
        p: u32,
        /// Operational memories.
        m: u32,
    },
    /// Crashed by an uncovered failure.
    Crashed,
}

/// The model, compilable via [`ModelSpec`].
#[derive(Clone, Copy, Debug)]
pub struct MultiprocModel {
    /// Model parameters.
    pub params: MultiprocParams,
}

impl MultiprocModel {
    /// New model from parameters.
    pub fn new(params: MultiprocParams) -> Self {
        MultiprocModel { params }
    }

    /// Compiles the reachable chain (full configuration has index 0).
    pub fn build(&self) -> Result<BuiltModel<MultiprocState>, CtmcError> {
        CtmcBuilder::default().explore(self)
    }
}

impl ModelSpec for MultiprocModel {
    type State = MultiprocState;

    fn initial(&self) -> Vec<(MultiprocState, f64)> {
        vec![(
            MultiprocState::Up {
                p: self.params.n_proc,
                m: self.params.n_mem,
            },
            1.0,
        )]
    }

    fn reward(&self, state: &MultiprocState) -> f64 {
        match *state {
            MultiprocState::Up { p, m } if p >= 1 && m >= 1 => p.min(m) as f64,
            _ => 0.0,
        }
    }

    fn transitions(&self, state: &MultiprocState) -> Vec<(MultiprocState, f64)> {
        let pr = &self.params;
        let mut out = Vec::with_capacity(5);
        match *state {
            MultiprocState::Crashed => {
                if !pr.absorbing_crash {
                    out.push((
                        MultiprocState::Up {
                            p: pr.n_proc,
                            m: pr.n_mem,
                        },
                        pr.delta,
                    ));
                }
            }
            MultiprocState::Up { p, m } => {
                // Failures with coverage split; uncovered failures crash the
                // system regardless of redundancy.
                if p > 0 {
                    let rate = p as f64 * pr.lambda_p;
                    if pr.coverage > 0.0 {
                        out.push((MultiprocState::Up { p: p - 1, m }, rate * pr.coverage));
                    }
                    if pr.coverage < 1.0 {
                        out.push((MultiprocState::Crashed, rate * (1.0 - pr.coverage)));
                    }
                }
                if m > 0 {
                    let rate = m as f64 * pr.lambda_m;
                    if pr.coverage > 0.0 {
                        out.push((MultiprocState::Up { p, m: m - 1 }, rate * pr.coverage));
                    }
                    if pr.coverage < 1.0 {
                        out.push((MultiprocState::Crashed, rate * (1.0 - pr.coverage)));
                    }
                }
                // Single repairman, processors first.
                if p < pr.n_proc {
                    out.push((MultiprocState::Up { p: p + 1, m }, pr.mu));
                } else if m < pr.n_mem {
                    out.push((MultiprocState::Up { p, m: m + 1 }, pr.mu));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    #[test]
    fn state_space_is_grid_plus_crash() {
        let built = MultiprocModel::new(MultiprocParams::default())
            .build()
            .unwrap();
        // (P+1)(M+1) up-configurations + crashed.
        assert_eq!(built.ctmc.n_states(), 5 * 4 + 1);
        assert_eq!(built.ctmc.max_reward(), 3.0); // min(4, 3)
    }

    #[test]
    fn initial_state_has_full_capacity() {
        let model = MultiprocModel::new(MultiprocParams::default());
        let built = model.build().unwrap();
        assert_eq!(built.ctmc.rewards()[0], 3.0);
        assert_eq!(built.ctmc.initial()[0], 1.0);
    }

    #[test]
    fn capacity_decays_and_repairman_prioritizes_processors() {
        let built = MultiprocModel::new(MultiprocParams::default())
            .build()
            .unwrap();
        // From (p=2, m=3) the repairman must work on processors.
        let i = built
            .state_index(&MultiprocState::Up { p: 2, m: 3 })
            .unwrap();
        let j = built
            .state_index(&MultiprocState::Up { p: 3, m: 3 })
            .unwrap();
        assert_eq!(built.ctmc.generator().get(i, j), 1.0);
        // From (p=4, m=1) it repairs memory.
        let i = built
            .state_index(&MultiprocState::Up { p: 4, m: 1 })
            .unwrap();
        let j = built
            .state_index(&MultiprocState::Up { p: 4, m: 2 })
            .unwrap();
        assert_eq!(built.ctmc.generator().get(i, j), 1.0);
    }

    #[test]
    fn perfect_coverage_never_crashes() {
        let params = MultiprocParams {
            coverage: 1.0,
            ..Default::default()
        };
        let built = MultiprocModel::new(params).build().unwrap();
        assert!(
            built.state_index(&MultiprocState::Crashed).is_none(),
            "crash state must be unreachable at c = 1"
        );
    }

    #[test]
    fn mean_capacity_decreases_with_worse_coverage() {
        let mrr = |coverage: f64| {
            let built = MultiprocModel::new(MultiprocParams {
                coverage,
                ..Default::default()
            })
            .build()
            .unwrap();
            let sr = SrSolver::new(&built.ctmc, SrOptions::default());
            sr.solve(MeasureKind::Mrr, 1000.0).value
        };
        let good = mrr(0.999);
        let bad = mrr(0.9);
        assert!(
            good > bad,
            "better coverage must give more capacity: {good} vs {bad}"
        );
    }

    #[test]
    fn absorbing_variant_loses_capacity_permanently() {
        let params = MultiprocParams {
            absorbing_crash: true,
            ..Default::default()
        };
        let built = MultiprocModel::new(params).build().unwrap();
        let sr = SrSolver::new(&built.ctmc, SrOptions::default());
        // With an absorbing crash, long-run capacity tends to the attrition
        // equilibrium *conditioned on survival*, strictly below the
        // repairable variant's.
        let cap_abs = sr.solve(MeasureKind::Trr, 50_000.0).value;
        let rep = MultiprocModel::new(MultiprocParams::default())
            .build()
            .unwrap();
        let sr_rep = SrSolver::new(&rep.ctmc, SrOptions::default());
        let cap_rep = sr_rep.solve(MeasureKind::Trr, 50_000.0).value;
        assert!(cap_abs < cap_rep, "{cap_abs} vs {cap_rep}");
    }
}
