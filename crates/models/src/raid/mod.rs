//! The level-5 RAID dependability model of the paper's evaluation section.
//!
//! ## Architecture (paper Fig. 2)
//!
//! `G·N` disks organized in `G` parity groups of `N` disks; `N` controllers,
//! each controlling a *string* of `G` disks (one per group); `C_H` hot spare
//! controllers and `D_H` hot spare disks. The system is operational while
//! every parity group has at least `N−1` available disks — equivalently, no
//! parity group has two unavailable disks.
//!
//! ## Behaviour (paper Section 3, reconstructed)
//!
//! * Disks fail at `λ_D`; disks of a group under reconstruction are
//!   *overloaded* and fail at `λ_S`. Controllers fail at `λ_C`. A failed
//!   controller makes its whole string unavailable.
//! * A repairman replaces failed disks/controllers from the hot spares at
//!   `μ_DRP`/`μ_CRP` (controllers first). Units lacking spares — and the
//!   missing spares themselves — are replaced at `μ_SR` by unlimited
//!   repairmen.
//! * A replaced disk starts *reconstruction* (rate `μ_DRC`, success
//!   probability `P_R`) once every other disk of its group is available;
//!   after a controller replacement every disk of the string that was
//!   unavailable starts reconstruction. A failed reconstruction fails the
//!   system.
//! * A failed system is restored to pristine condition by a global repair at
//!   `μ_G`.
//!
//! ## Lumped state space
//!
//! The paper uses a "pessimistic approximated model" over the state variables
//! `(NFD, NDR, NWD, NSD, AL, NFC, NSC, F)`. Working back from the published
//! state counts — 3,841 states at `G=20` and 14,081 at `G=40`, which factor
//! exactly as `8·G·(G+4) + 1 = (D_H+1)(C_H+1)·[ (G²+3G−1) + (G+1) ] + 1` —
//! the reachable lumped space must be:
//!
//! * `NFC = 0`: `(NFD, NDR, AL)` with `NFD+NDR ≤ G`, `AL ≡ aligned` forced
//!   `YES` when fewer than two disks are unavailable (`G²+3G−1` combos), and
//!   `NWD = 0` (controller replacement restarts every pending reconstruction
//!   at once);
//! * `NFC = 1`: `(NWD)` with `NWD ≤ G` and `NFD = NDR = 0` (see below),
//!   `AL = YES` (`G+1` combos);
//! * times `(NSD, NSC) ∈ [0,D_H]×[0,C_H]`, plus the single lumped failed
//!   state `F`.
//!
//! The `NFD = 0` invariant under `NFC = 1` encodes the model's *pessimism*:
//! a controller failure is survivable only when every individually
//! unavailable disk sits on the failed controller's own string — which, since
//! a physically failed (dead) disk's data cannot be read through any
//! controller, the lumped model only grants to *reconstructing* disks
//! (`NFD = 0`, all reconstruction positions on the common string). All other
//! controller failures, and every disk failure while a controller is down,
//! are treated as system failures. The alignment approximation is taken
//! verbatim from the paper: when an unavailable disk becomes available and at
//! least two others remain, the remainder is still considered unaligned.
//!
//! With these rules the generated chains match the paper's sizes exactly:
//! 3,841 states / 24,785 transitions at `G=20` and 14,081 / 94,405 at `G=40`
//! are the published figures; `repro -- sizes` prints ours for comparison.
//!
//! The reconstruction success probability `P_R` is not given a numeric value
//! in the paper; DESIGN.md §4 documents its calibration against the reported
//! `UR(10⁵ h)` values.

mod spec;

pub use spec::{RaidModel, RaidParams, RaidState};

#[cfg(test)]
mod tests;
