//! RAID model validation against the paper's published figures.

use super::*;
use regenr_ctmc::analyze;

#[test]
fn state_count_matches_paper_g20() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    assert_eq!(built.ctmc.n_states(), 3841, "paper: 3,841 states at G=20");
}

#[test]
fn state_count_matches_paper_g40() {
    let built = RaidModel::new(RaidParams::paper(40)).build().unwrap();
    assert_eq!(
        built.ctmc.n_states(),
        14_081,
        "paper: 14,081 states at G=40"
    );
}

#[test]
fn transition_counts_near_paper() {
    // Paper: 24,785 transitions at G=20; 94,405 at G=40 (availability
    // variant), and "one transition less" for the absorbing variant. Our
    // generator merges parallel arcs between the same state pair (e.g. the
    // three distinct failure events leading to the lumped Failed state),
    // which the authors' tool appears to count separately: we measure
    // 22,737 / 87,097 — within 9% with identical state counts. See
    // EXPERIMENTS.md.
    for (g, want) in [(20u32, 24_785usize), (40, 94_405)] {
        let built = RaidModel::new(RaidParams::paper(g)).build().unwrap();
        let got = built.ctmc.generator().nnz() - diag_count(&built.ctmc);
        let rel = (got as f64 - want as f64).abs() / want as f64;
        assert!(
            rel < 0.10,
            "G={g}: {got} off-diagonal transitions vs paper's {want}"
        );
    }
}

fn diag_count(c: &regenr_ctmc::Ctmc) -> usize {
    (0..c.n_states())
        .filter(|&i| c.generator().get(i, i) != 0.0)
        .count()
}

#[test]
fn absorbing_variant_has_one_transition_less() {
    let ua = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let ur = RaidModel::new(RaidParams::paper(20).with_absorbing_failure())
        .build()
        .unwrap();
    assert_eq!(ua.ctmc.n_states(), ur.ctmc.n_states());
    let ua_t = ua.ctmc.generator().nnz() - diag_count(&ua.ctmc);
    let ur_t = ur.ctmc.generator().nnz() - diag_count(&ur.ctmc);
    assert_eq!(
        ua_t,
        ur_t + 1,
        "paper: absorbing variant has one transition less"
    );
}

#[test]
fn structure_satisfies_paper_assumptions() {
    let ua = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let info = analyze(&ua.ctmc).unwrap();
    assert!(info.is_irreducible(), "UA model must be irreducible (A=0)");

    let ur = RaidModel::new(RaidParams::paper(20).with_absorbing_failure())
        .build()
        .unwrap();
    let info = analyze(&ur.ctmc).unwrap();
    assert_eq!(info.absorbing.len(), 1, "UR model must have A=1");
    assert!(info.absorbing_reachable);
}

#[test]
fn pristine_state_is_index_zero() {
    let model = RaidModel::new(RaidParams::paper(20));
    let built = model.build().unwrap();
    assert_eq!(built.state_index(&model.pristine()), Some(0));
    assert_eq!(built.ctmc.initial()[0], 1.0);
}

#[test]
fn reward_structure_is_failure_indicator() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let failed = built.state_index(&RaidState::Failed).unwrap();
    for (i, &r) in built.ctmc.rewards().iter().enumerate() {
        if i == failed {
            assert_eq!(r, 1.0);
        } else {
            assert_eq!(r, 0.0);
        }
    }
}

#[test]
fn uniformization_rate_in_expected_range() {
    // The dominant exit rate is the all-groups-reconstructing state:
    // ~G·μ_DRC + spare refills + failures ≈ G+1.
    for g in [20u32, 40] {
        let built = RaidModel::new(RaidParams::paper(g)).build().unwrap();
        let max = built.ctmc.generator().max_abs_diag();
        // Dominant state: one failed disk + G−1 reconstructions + repairman
        // (μ_DRP = 4) + spare refills ⇒ Λ ≈ G + 3.75.
        assert!(
            max > g as f64 && max < g as f64 + 5.0,
            "G={g}: Λ = {max} outside the expected (G, G+5) band"
        );
    }
}

#[test]
fn state_invariants_hold_everywhere() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let g = 20u16;
    for s in &built.states {
        match *s {
            RaidState::Op {
                nfd,
                ndr,
                al,
                nsd,
                nsc,
            } => {
                assert!(nfd + ndr <= g);
                assert!(al || nfd + ndr >= 2, "AL must be canonical");
                assert!(nsd <= 3 && nsc <= 1);
            }
            RaidState::CtrlDown { nwd, nsd, nsc } => {
                assert!(nwd <= g);
                assert!(nsd <= 3 && nsc <= 1);
            }
            RaidState::Failed => {}
        }
    }
}

#[test]
fn small_instance_is_well_formed() {
    // A tiny instance exercises the boundary arithmetic (u == g etc.).
    let params = RaidParams {
        g: 2,
        d_h: 1,
        c_h: 1,
        ..Default::default()
    };
    let built = RaidModel::new(params).build().unwrap();
    assert_eq!(built.ctmc.n_states(), 4 * (2 * 6) + 1);
    analyze(&built.ctmc).unwrap();
}
