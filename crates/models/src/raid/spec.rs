//! Transition catalogue of the lumped RAID model.

use regenr_ctmc::{BuiltModel, CtmcBuilder, CtmcError, ModelSpec};

/// Parameters of the RAID level-5 model. Defaults are the paper's fixed
/// values (all rates in h⁻¹) with the paper's `G=20, C_H=1, D_H=3` instance.
#[derive(Clone, Copy, Debug)]
pub struct RaidParams {
    /// Number of parity groups (`G`); the paper evaluates 20 and 40.
    pub g: u32,
    /// Disks per parity group = number of controllers (`N = 5`).
    pub n: u32,
    /// Hot spare controllers (`C_H = 1`).
    pub c_h: u32,
    /// Hot spare disks (`D_H = 3`).
    pub d_h: u32,
    /// Disk failure rate (`λ_D = 10⁻⁵`).
    pub lambda_d: f64,
    /// Overloaded-disk failure rate (`λ_S = 2·10⁻⁵`).
    pub lambda_s: f64,
    /// Controller failure rate (`λ_C = 5·10⁻⁵`).
    pub lambda_c: f64,
    /// Reconstruction rate per group (`μ_DRC = 1`).
    pub mu_drc: f64,
    /// Disk replacement rate with spare (`μ_DRP = 4`).
    pub mu_drp: f64,
    /// Controller replacement rate with spare (`μ_CRP = 4`).
    pub mu_crp: f64,
    /// Spare-refill / no-spare replacement rate (`μ_SR = 0.25`).
    pub mu_sr: f64,
    /// Global repair rate (`μ_G = 0.25`).
    pub mu_g: f64,
    /// Reconstruction success probability (`P_R`; calibrated, see DESIGN.md).
    pub p_r: f64,
    /// `false`: availability model (global repair, irreducible, `A = 0`);
    /// `true`: reliability model (failed state absorbing, `A = 1`).
    pub absorbing_failure: bool,
}

impl Default for RaidParams {
    fn default() -> Self {
        RaidParams {
            g: 20,
            n: 5,
            c_h: 1,
            d_h: 3,
            lambda_d: 1e-5,
            lambda_s: 2e-5,
            lambda_c: 5e-5,
            mu_drc: 1.0,
            mu_drp: 4.0,
            mu_crp: 4.0,
            mu_sr: 0.25,
            mu_g: 0.25,
            p_r: 0.9989821,
            absorbing_failure: false,
        }
    }
}

impl RaidParams {
    /// The paper's instance with `G` parity groups (UA variant).
    pub fn paper(g: u32) -> Self {
        RaidParams {
            g,
            ..Default::default()
        }
    }

    /// Switches to the unreliability variant (absorbing failure, `A = 1`).
    pub fn with_absorbing_failure(mut self) -> Self {
        self.absorbing_failure = true;
        self
    }
}

/// Lumped RAID state (see the module docs for the invariants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaidState {
    /// All controllers up (`NFC = 0`, `NWD = 0`).
    Op {
        /// Failed disks awaiting replacement.
        nfd: u16,
        /// Disks under reconstruction.
        ndr: u16,
        /// All unavailable disks on one string (forced `true` when fewer than
        /// two disks are unavailable).
        al: bool,
        /// Hot spare disks on the shelf.
        nsd: u8,
        /// Hot spare controllers on the shelf.
        nsc: u8,
    },
    /// One controller down (`NFC = 1`, `NFD = NDR = 0`, `AL = YES`).
    CtrlDown {
        /// Replaced disks waiting for the string to come back.
        nwd: u16,
        /// Hot spare disks on the shelf.
        nsd: u8,
        /// Hot spare controllers on the shelf.
        nsc: u8,
    },
    /// The lumped system-failed state.
    Failed,
}

/// The RAID model as a compilable [`ModelSpec`].
#[derive(Clone, Copy, Debug)]
pub struct RaidModel {
    /// Model parameters.
    pub params: RaidParams,
}

impl RaidModel {
    /// New model from parameters.
    pub fn new(params: RaidParams) -> Self {
        RaidModel { params }
    }

    /// The pristine state (no failures, full spares) — the initial and
    /// regenerative state of the paper's experiments.
    pub fn pristine(&self) -> RaidState {
        RaidState::Op {
            nfd: 0,
            ndr: 0,
            al: true,
            nsd: self.params.d_h as u8,
            nsc: self.params.c_h as u8,
        }
    }

    /// Compiles the model into a CTMC (BFS over the reachable space). The
    /// pristine state always has index 0, so it can be used directly as the
    /// regenerative state.
    pub fn build(&self) -> Result<BuiltModel<RaidState>, CtmcError> {
        CtmcBuilder::default().explore(self)
    }
}

impl ModelSpec for RaidModel {
    type State = RaidState;

    fn initial(&self) -> Vec<(RaidState, f64)> {
        vec![(self.pristine(), 1.0)]
    }

    fn reward(&self, state: &RaidState) -> f64 {
        // Both paper measures (UA and UR) reward the failed state with 1.
        match state {
            RaidState::Failed => 1.0,
            _ => 0.0,
        }
    }

    fn transitions(&self, state: &RaidState) -> Vec<(RaidState, f64)> {
        let p = &self.params;
        let g = p.g as u16;
        let nf = p.n as f64;
        let gf = p.g as f64;
        let mut out: Vec<(RaidState, f64)> = Vec::with_capacity(10);

        match *state {
            RaidState::Failed => {
                if !p.absorbing_failure {
                    out.push((self.pristine(), p.mu_g));
                }
            }

            RaidState::Op {
                nfd,
                ndr,
                al,
                nsd,
                nsc,
            } => {
                let u = nfd + ndr;
                debug_assert!(u <= g);
                debug_assert!(al || u >= 2);
                let uf = u as f64;

                // --- Disk failures -------------------------------------
                // Collisions (same group as an unavailable disk) fail the
                // system: the N−1 overloaded partners of each reconstructing
                // group at λ_S, the N−1 partners of each failed disk at λ_D.
                let to_failed_rate =
                    ndr as f64 * (nf - 1.0) * p.lambda_s + nfd as f64 * (nf - 1.0) * p.lambda_d;
                if u == 0 {
                    // First failure is trivially aligned.
                    out.push((op(nfd + 1, ndr, true, nsd, nsc), gf * nf * p.lambda_d));
                } else if u < g {
                    if al {
                        // Remaining disks of the common string: stay aligned.
                        out.push((op(nfd + 1, ndr, true, nsd, nsc), (gf - uf) * p.lambda_d));
                        // Other strings, non-colliding groups: unaligned.
                        out.push((
                            op(nfd + 1, ndr, false, nsd, nsc),
                            (gf - uf) * (nf - 1.0) * p.lambda_d,
                        ));
                    } else {
                        // Already unaligned: every non-colliding landing
                        // keeps it so.
                        out.push((
                            op(nfd + 1, ndr, false, nsd, nsc),
                            (gf - uf) * nf * p.lambda_d,
                        ));
                    }
                }
                // (u == g: every group already hosts an unavailable disk, so
                // every further failure is a collision, counted above.)

                // --- Reconstruction completion --------------------------
                if ndr > 0 {
                    let u_after = u - 1;
                    let al_after = al || u_after <= 1;
                    out.push((
                        op(nfd, ndr - 1, al_after, nsd, nsc),
                        ndr as f64 * p.mu_drc * p.p_r,
                    ));
                }

                // --- Disk replacement -----------------------------------
                if nfd > 0 {
                    // Repairman with a spare (free: no controller is down).
                    if nsd > 0 {
                        out.push((op(nfd - 1, ndr + 1, al, nsd - 1, nsc), p.mu_drp));
                    }
                    // Disks beyond the spare supply: unlimited μ_SR crews.
                    let lacking = (nfd as i32 - nsd as i32).max(0) as f64;
                    if lacking > 0.0 {
                        out.push((op(nfd - 1, ndr + 1, al, nsd, nsc), lacking * p.mu_sr));
                    }
                }

                // --- Controller failure ---------------------------------
                if u == 0 {
                    out.push((ctrl_down(0, nsd, nsc), nf * p.lambda_c));
                } else if al && nfd == 0 {
                    // Only the common string's controller is survivable:
                    // its reconstructing positions become waiting disks.
                    out.push((ctrl_down(ndr, nsd, nsc), p.lambda_c));
                    out.push((RaidState::Failed, (nf - 1.0) * p.lambda_c));
                } else {
                    // Unaligned, or a dead disk's data is unreadable through
                    // any controller: pessimistically a system failure.
                    out.push((RaidState::Failed, nf * p.lambda_c));
                }

                // --- Reconstruction failure + collisions → Failed -------
                let fail_rate = to_failed_rate + ndr as f64 * p.mu_drc * (1.0 - p.p_r);
                if fail_rate > 0.0 {
                    out.push((RaidState::Failed, fail_rate));
                }

                // --- Spare refills --------------------------------------
                if (nsd as u32) < p.d_h {
                    out.push((
                        op(nfd, ndr, al, nsd + 1, nsc),
                        (p.d_h - nsd as u32) as f64 * p.mu_sr,
                    ));
                }
                if (nsc as u32) < p.c_h {
                    out.push((
                        op(nfd, ndr, al, nsd, nsc + 1),
                        (p.c_h - nsc as u32) as f64 * p.mu_sr,
                    ));
                }
            }

            RaidState::CtrlDown { nwd, nsd, nsc } => {
                // Any disk failure on an operational string collides with the
                // down string's unavailable disk in that group.
                out.push((RaidState::Failed, gf * (nf - 1.0) * p.lambda_d));
                // A second controller failure downs a second string.
                out.push((RaidState::Failed, (nf - 1.0) * p.lambda_c));

                // Controller replacement: the whole string returns and every
                // disk that was unavailable (the G−nwd stale ones and the nwd
                // replaced ones) starts reconstruction simultaneously.
                if nsc > 0 {
                    out.push((op(0, g, true, nsd, nsc - 1), p.mu_crp));
                } else {
                    out.push((op(0, g, true, nsd, nsc), p.mu_sr));
                }
                let _ = nwd; // dynamically inert; distinguishes lumped states

                // --- Spare refills --------------------------------------
                if (nsd as u32) < p.d_h {
                    out.push((
                        ctrl_down(nwd, nsd + 1, nsc),
                        (p.d_h - nsd as u32) as f64 * p.mu_sr,
                    ));
                }
                if (nsc as u32) < p.c_h {
                    out.push((
                        ctrl_down(nwd, nsd, nsc + 1),
                        (p.c_h - nsc as u32) as f64 * p.mu_sr,
                    ));
                }
            }
        }
        out
    }
}

/// Canonicalizing constructor: `al` is forced `true` below two unavailable
/// disks so lumped states are unique.
fn op(nfd: u16, ndr: u16, al: bool, nsd: u8, nsc: u8) -> RaidState {
    RaidState::Op {
        nfd,
        ndr,
        al: al || (nfd + ndr) <= 1,
        nsd,
        nsc,
    }
}

fn ctrl_down(nwd: u16, nsd: u8, nsc: u8) -> RaidState {
    RaidState::CtrlDown { nwd, nsd, nsc }
}
