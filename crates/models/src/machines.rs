//! Machines-repairman performability model.
//!
//! `m` identical machines fail at rate `λ` each; `r` repairmen fix them at
//! rate `μ` each. State = number of failed machines; reward = number of
//! *working* machines, so `TRR(t)` is the expected computational capacity and
//! `MRR(t)` the mean capacity over a mission — a classic performability
//! measure with a non-binary reward structure (unlike the RAID models, whose
//! rewards are failure indicators).

use regenr_ctmc::{BuiltModel, CtmcBuilder, CtmcError, ModelSpec};

/// The machines-repairman model.
#[derive(Clone, Copy, Debug)]
pub struct MachinesModel {
    /// Number of machines.
    pub machines: u32,
    /// Number of repairmen.
    pub repairmen: u32,
    /// Per-machine failure rate.
    pub lambda: f64,
    /// Per-repairman repair rate.
    pub mu: f64,
}

impl ModelSpec for MachinesModel {
    /// Number of failed machines.
    type State = u32;

    fn initial(&self) -> Vec<(u32, f64)> {
        vec![(0, 1.0)]
    }

    fn transitions(&self, &k: &u32) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(2);
        if k < self.machines {
            out.push((k + 1, (self.machines - k) as f64 * self.lambda));
        }
        if k > 0 {
            out.push((k - 1, k.min(self.repairmen) as f64 * self.mu));
        }
        out
    }

    fn reward(&self, &k: &u32) -> f64 {
        (self.machines - k) as f64
    }
}

impl MachinesModel {
    /// Compiles the model (state 0 = all machines up = index 0).
    pub fn build(&self) -> Result<BuiltModel<u32>, CtmcError> {
        CtmcBuilder::default().explore(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    #[test]
    fn state_space_is_machine_count_plus_one() {
        let m = MachinesModel {
            machines: 8,
            repairmen: 2,
            lambda: 0.1,
            mu: 1.0,
        };
        let built = m.build().unwrap();
        assert_eq!(built.ctmc.n_states(), 9);
        assert_eq!(built.ctmc.max_reward(), 8.0);
    }

    #[test]
    fn capacity_decreases_from_full() {
        let m = MachinesModel {
            machines: 4,
            repairmen: 1,
            lambda: 0.2,
            mu: 1.0,
        };
        let built = m.build().unwrap();
        let sr = SrSolver::new(&built.ctmc, SrOptions::default());
        let early = sr.solve(MeasureKind::Trr, 0.1).value;
        let late = sr.solve(MeasureKind::Trr, 100.0).value;
        assert!(early > late, "capacity must decay toward steady state");
        assert!(late > 0.0 && early < 4.0);
    }

    #[test]
    fn single_machine_reduces_to_two_state() {
        let m = MachinesModel {
            machines: 1,
            repairmen: 1,
            lambda: 0.3,
            mu: 1.1,
        };
        let built = m.build().unwrap();
        let sr = SrSolver::new(&built.ctmc, SrOptions::default());
        let t = 2.0;
        // Availability = 1 − UA of the two-state model.
        let ua = crate::two_state::unavailability(0.3, 1.1, t);
        assert!((sr.solve(MeasureKind::Trr, t).value - (1.0 - ua)).abs() < 1e-11);
    }
}
