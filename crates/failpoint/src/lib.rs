//! Deterministic fault-injection points for the regenr workspace.
//!
//! A *failpoint* is a named site in the code where a fault can be injected
//! for testing: a panic, an error return, a fixed delay, or a NaN
//! corruption. Sites are written with the [`failpoint!`] /
//! [`failpoint_return!`] macros and cost **nothing** unless the
//! `failpoints` cargo feature is enabled — without it the macros expand to
//! empty token trees, so the default build contains no registry, no atomic
//! loads, not even a branch.
//!
//! With the feature on, sites stay dormant until *armed* through
//! [`configure`] (or the `REGENR_FAILPOINTS` environment variable, read
//! once on first use). The spec grammar is fully deterministic — there is
//! no RNG anywhere:
//!
//! ```text
//! spec     := entry (';' entry)*
//! entry    := name '=' action (',' trigger)?
//! action   := 'panic' | 'error' | 'nan' | 'delay:' millis | 'off'
//! trigger  := 'count=' N     fire on the first N evaluations, then disarm
//!           | 'every=' N     fire on every N-th evaluation (N, 2N, ...)
//! ```
//!
//! Examples: `serve-leader=panic,count=1`, `sr-nan=nan,every=3`,
//! `serve-write=delay:25`.
//!
//! `panic` and `delay` are executed *inside* the registry (every site
//! honours them); `error` and `nan` are returned to the site, which
//! decides what an injected error or NaN means locally. Sites written
//! with the bare `failpoint!(name)` form silently ignore `error`/`nan`.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Action a failpoint evaluation resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Unwind at the site with a recognizable message.
    Panic,
    /// Ask the site to return its injected-fault error.
    Error,
    /// Sleep for the given number of milliseconds, then continue.
    Delay(u64),
    /// Ask the site to corrupt a value with NaN.
    Nan,
}

/// Actions that are handed back to the site (panic/delay are consumed by
/// the registry itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fired {
    /// The site should return its injected-fault error.
    Error,
    /// The site should corrupt a value with NaN.
    Nan,
}

struct Entry {
    action: Action,
    /// Remaining fires for `count=N`; `None` means unlimited.
    remaining: Option<u64>,
    /// Fire only when `hits % every == 0` (1-based), when set.
    every: Option<u64>,
    /// Evaluations of this point since it was armed.
    hits: u64,
    /// Evaluations that actually fired.
    fired: u64,
}

#[derive(Default)]
struct Registry {
    points: HashMap<String, Entry>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("REGENR_FAILPOINTS") {
            // A malformed env spec must not be silently ignored in test
            // builds, but panicking inside a OnceLock init would poison
            // every later call — report and skip the bad entry instead.
            if let Err(e) = apply(&mut reg, &spec) {
                eprintln!("REGENR_FAILPOINTS ignored entry: {e}");
            }
        }
        Mutex::new(reg)
    })
}

fn parse_entry(entry: &str) -> Result<(String, Entry), String> {
    let (name, rest) = entry
        .split_once('=')
        .ok_or_else(|| format!("missing '=' in failpoint entry {entry:?}"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("empty failpoint name in {entry:?}"));
    }
    let mut parts = rest.split(',');
    let action_str = parts.next().unwrap_or("").trim();
    let action = if let Some(ms) = action_str.strip_prefix("delay:") {
        Action::Delay(
            ms.parse::<u64>()
                .map_err(|_| format!("bad delay millis {ms:?} in {entry:?}"))?,
        )
    } else {
        match action_str {
            "panic" => Action::Panic,
            "error" => Action::Error,
            "nan" => Action::Nan,
            "off" => {
                return Ok((
                    name.to_string(),
                    Entry {
                        action: Action::Error,
                        remaining: Some(0),
                        every: None,
                        hits: 0,
                        fired: 0,
                    },
                ))
            }
            other => return Err(format!("unknown failpoint action {other:?} in {entry:?}")),
        }
    };
    let mut remaining = None;
    let mut every = None;
    for t in parts {
        let t = t.trim();
        if let Some(n) = t.strip_prefix("count=") {
            remaining = Some(
                n.parse::<u64>()
                    .map_err(|_| format!("bad count {n:?} in {entry:?}"))?,
            );
        } else if let Some(n) = t.strip_prefix("every=") {
            let n = n
                .parse::<u64>()
                .map_err(|_| format!("bad every {n:?} in {entry:?}"))?;
            if n == 0 {
                return Err(format!("every=0 in {entry:?}"));
            }
            every = Some(n);
        } else if !t.is_empty() {
            return Err(format!("unknown failpoint trigger {t:?} in {entry:?}"));
        }
    }
    Ok((
        name.to_string(),
        Entry {
            action,
            remaining,
            every,
            hits: 0,
            fired: 0,
        },
    ))
}

fn apply(reg: &mut Registry, spec: &str) -> Result<(), String> {
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, e) = parse_entry(entry)?;
        reg.points.insert(name, e);
    }
    Ok(())
}

/// Arm failpoints from a spec string (see module docs for the grammar).
/// Entries are merged into the current configuration; re-arming a name
/// resets its hit counters. Returns an error for malformed specs.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    apply(&mut reg, spec)
}

/// Disarm every failpoint and reset all counters.
pub fn clear() {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.points.clear();
}

/// Disarm a single failpoint.
pub fn disarm(name: &str) {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.points.remove(name);
}

/// How many times `name` has fired since it was armed (0 if not armed).
pub fn fired_count(name: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.points.get(name).map_or(0, |e| e.fired)
}

/// Evaluate a failpoint, deciding deterministically whether it fires.
/// Consumes `panic`/`delay` internally; hands `error`/`nan` to the site.
///
/// This is the backend of the site macros; call it directly only in tests.
pub fn eval(name: &str) -> Option<Fired> {
    let action = {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let entry = reg.points.get_mut(name)?;
        entry.hits += 1;
        if let Some(every) = entry.every {
            if entry.hits % every != 0 {
                return None;
            }
        }
        if let Some(rem) = &mut entry.remaining {
            if *rem == 0 {
                return None;
            }
            *rem -= 1;
        }
        entry.fired += 1;
        entry.action
    };
    match action {
        Action::Panic => panic!("failpoint {name} injected panic"),
        Action::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Action::Error => Some(Fired::Error),
        Action::Nan => Some(Fired::Nan),
    }
}

/// Unit-site backend: honours panic/delay, ignores error/nan.
pub fn eval_unit(name: &str) {
    let _ = eval(name);
}

/// A named fault-injection site.
///
/// `failpoint!("name")` — bare site: an armed `panic` unwinds here, a
/// `delay:ms` sleeps here; `error`/`nan` are ignored.
///
/// `failpoint!("name", |fired| ...)` — the closure runs (for side effects
/// such as corrupting a local with NaN) when the point fires with an
/// `error` or `nan` action; `fired` is a [`Fired`].
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::eval_unit($name)
    };
    ($name:expr, $closure:expr) => {
        if let Some(__fp_fired) = $crate::eval($name) {
            #[allow(clippy::redundant_closure_call)]
            ($closure)(__fp_fired);
        }
    };
}

/// See the `failpoints`-enabled definition; without the feature the macro
/// expands to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {};
    ($name:expr, $closure:expr) => {};
}

/// An error-returning fault-injection site: when the point fires with the
/// `error` action, evaluates `$ret` and `return`s it from the enclosing
/// function. `panic`/`delay` behave as in [`failpoint!`]; `nan` is ignored.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint_return {
    ($name:expr, $ret:expr) => {
        if let Some($crate::Fired::Error) = $crate::eval($name) {
            return $ret;
        }
    };
}

/// See the `failpoints`-enabled definition; without the feature the macro
/// expands to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint_return {
    ($name:expr, $ret:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run concurrently, so every
    // test uses its own point names.

    #[test]
    fn unarmed_points_do_nothing() {
        assert_eq!(eval("t-unarmed"), None);
        assert_eq!(fired_count("t-unarmed"), 0);
    }

    #[test]
    fn count_trigger_fires_then_disarms() {
        configure("t-count=error,count=2").unwrap();
        assert_eq!(eval("t-count"), Some(Fired::Error));
        assert_eq!(eval("t-count"), Some(Fired::Error));
        assert_eq!(eval("t-count"), None);
        assert_eq!(fired_count("t-count"), 2);
        disarm("t-count");
    }

    #[test]
    fn every_trigger_is_periodic() {
        configure("t-every=nan,every=3").unwrap();
        let fires: Vec<bool> = (0..9).map(|_| eval("t-every").is_some()).collect();
        assert_eq!(
            fires,
            [false, false, true, false, false, true, false, false, true]
        );
        disarm("t-every");
    }

    #[test]
    fn every_and_count_compose() {
        configure("t-both=error,every=2,count=1").unwrap();
        let fires: Vec<bool> = (0..6).map(|_| eval("t-both").is_some()).collect();
        assert_eq!(fires, [false, true, false, false, false, false]);
        disarm("t-both");
    }

    #[test]
    fn panic_action_unwinds() {
        configure("t-panic=panic,count=1").unwrap();
        let r = std::panic::catch_unwind(|| eval_unit("t-panic"));
        assert!(r.is_err());
        assert_eq!(eval("t-panic"), None); // count exhausted
        disarm("t-panic");
    }

    #[test]
    fn delay_action_sleeps_and_continues() {
        configure("t-delay=delay:10,count=1").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(eval("t-delay"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        disarm("t-delay");
    }

    #[test]
    fn off_disarms_without_removing() {
        configure("t-off=error").unwrap();
        assert_eq!(eval("t-off"), Some(Fired::Error));
        configure("t-off=off").unwrap();
        assert_eq!(eval("t-off"), None);
        disarm("t-off");
    }

    #[test]
    fn rearm_resets_counters() {
        configure("t-rearm=error,count=1").unwrap();
        assert_eq!(eval("t-rearm"), Some(Fired::Error));
        assert_eq!(eval("t-rearm"), None);
        configure("t-rearm=error,count=1").unwrap();
        assert_eq!(eval("t-rearm"), Some(Fired::Error));
        disarm("t-rearm");
    }

    #[test]
    fn malformed_specs_error() {
        assert!(configure("nonsense").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=delay:abc").is_err());
        assert!(configure("x=error,count=abc").is_err());
        assert!(configure("x=error,every=0").is_err());
        assert!(configure("=panic").is_err());
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn macro_closure_form_runs_on_fire() {
        configure("t-macro=nan,count=1").unwrap();
        let mut v = 1.0f64;
        failpoint!("t-macro", |f| {
            if matches!(f, Fired::Nan) {
                v = f64::NAN;
            }
        });
        assert!(v.is_nan());
        disarm("t-macro");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn macro_return_form_returns_on_error() {
        fn site() -> Result<u32, String> {
            failpoint_return!("t-ret", Err("injected".to_string()));
            Ok(7)
        }
        assert_eq!(site(), Ok(7));
        configure("t-ret=error,count=1").unwrap();
        assert_eq!(site(), Err("injected".to_string()));
        assert_eq!(site(), Ok(7));
        disarm("t-ret");
    }
}
