//! Computation of the regenerative-randomization parameters.
//!
//! For the randomized DTMC `X̂` (rate `Λ`, matrix `P`) started at the
//! regenerative state `r` and *killed* on return to `r` or absorption, define
//! the sub-distribution `π_k` over `S` of surviving paths (`π_0 = e_r`). The
//! transformed model of the paper is fully described by scalar sequences —
//! we store them **unnormalized** (products with `a(k)`), which is exactly the
//! form the closed-form transforms need and avoids divisions by vanishing
//! survival probabilities:
//!
//! * `a(k)   = ‖π_k‖₁`                         — survival probability,
//! * `c(k)   = r·π_k        (= a(k)·b(k))`      — reward mass,
//! * `u(k)   = (π_k P)_r    (= a(k)·q_k)`       — return-to-`r` mass,
//! * `y_i(k) = (π_k P)_{f_i}(= a(k)·v^i_k)`     — absorption mass into `f_i`,
//!
//! and the primed analogues for the chain started from the initial
//! distribution `α` restricted to `S∖{r}` (present when `α_r < 1`), killed on
//! *first visit* to `r` or absorption.
//!
//! ## Truncation control (DESIGN.md §3.1)
//!
//! The truncated model routes the mass surviving `K` steps into an absorbing
//! error state `a` with zero reward, so the model error on either measure is
//! at most `r_max · P[V(t) = a]`. Mass can only sit at depth `K` if it
//! survived `K` consecutive steps since a visit to `r`, so at any DTMC step
//! the flow into `a` is `≤ a(K)`, and is zero before step `K`; mixing over
//! the Poisson(Λt) step count,
//!
//! ```text
//! P[V(t)=a] ≤ min( P[N ≥ K],  a(K) · E[(N−K+1)⁺] ).
//! ```
//!
//! Stepping stops at the first `K` where `r_max` times this is within budget.
//! For small `t` the first term dominates (`K ≈` Poisson right tail ≈ SR's
//! step count); for large `t` the second does, giving the paper's
//! `K = O(log(Λt/ε) / log(1/γ))` growth with `γ` the decay rate of `a(k)`.
//! The primed chain is traversed at most once, so its truncation uses the
//! tighter `min(P[N ≥ L], a'(L))`.

use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use regenr_numeric::{KahanSum, PoissonWeights};
use regenr_sparse::{ParallelConfig, Workspace};

/// Options shared by RR and RRL.
#[derive(Clone, Copy, Debug)]
pub struct RegenOptions {
    /// Total absolute error budget `ε` (the paper uses `10⁻¹²`); half goes to
    /// model truncation, half to solving the truncated model.
    pub epsilon: f64,
    /// Uniformization safety factor (`0` matches the paper).
    pub theta: f64,
    /// Hard cap on `K`/`L` (guards against a poorly visited regenerative
    /// state, where the method degenerates; the paper assumes `r` is visited
    /// often).
    pub max_depth: usize,
    /// Parallel SpMV configuration for the construction stepping.
    pub parallel: ParallelConfig,
}

impl Default for RegenOptions {
    fn default() -> Self {
        RegenOptions {
            epsilon: 1e-12,
            theta: 0.0,
            max_depth: 2_000_000,
            parallel: ParallelConfig::default(),
        }
    }
}

/// One killed chain's unnormalized parameter sequences.
#[derive(Clone, Debug, Default)]
pub struct KilledChainParams {
    /// `a(0..=K)` — survival mass (length `K+1`).
    pub a: Vec<f64>,
    /// `c(0..=K)` — reward mass (length `K+1`).
    pub c: Vec<f64>,
    /// `u(0..K)` — return mass to `r` per step (length `K`).
    pub u: Vec<f64>,
    /// `y[i](0..K)` — absorption mass into absorbing state `i` (length `K`
    /// each, one vector per absorbing state, same order as
    /// [`RegenParams::absorbing`]).
    pub y: Vec<Vec<f64>>,
}

impl KilledChainParams {
    /// Truncation depth `K` (number of stepping products performed).
    pub fn depth(&self) -> usize {
        self.a.len() - 1
    }

    fn approx_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        // Capacities, not lengths: the sequences grow by pushes during the
        // stepping loop, so the allocator hands out up to 2× the final
        // length — counting lengths under-reported cached bytes by that
        // factor (caught by the engine's counting-allocator audit).
        (self.a.capacity() + self.c.capacity() + self.u.capacity()) * f
            + self.y.iter().map(|v| v.capacity() * f).sum::<usize>()
    }
}

/// Checks `r` against an already-computed absorbing-state list: in range and
/// not absorbing. The cheap half of the solvers' validation, shared by the
/// analyzing constructors and the facts-reusing ones.
pub(crate) fn check_regen_state(
    ctmc: &Ctmc,
    absorbing: &[usize],
    r: usize,
) -> Result<(), CtmcError> {
    if r >= ctmc.n_states() {
        return Err(CtmcError::BadRegenerativeState {
            state: r,
            reason: "index out of range",
        });
    }
    if absorbing.contains(&r) {
        return Err(CtmcError::BadRegenerativeState {
            state: r,
            reason: "state is absorbing",
        });
    }
    Ok(())
}

/// The complete parameter set describing the truncated transformed model
/// `V_{K,L}` for one `(chain, r, t, ε)` instance.
#[derive(Clone, Debug)]
pub struct RegenParams {
    /// Randomization rate `Λ`.
    pub lambda: f64,
    /// The regenerative state index.
    pub r_index: usize,
    /// Initial mass on `r` (`α_r`); the primed chain exists iff `< 1`.
    pub alpha_r: f64,
    /// Parameters of the chain started at `r` (the `K`-chain).
    pub main: KilledChainParams,
    /// Parameters of the chain started from `α` off `r` (the `L`-chain),
    /// present iff `α_r < 1`.
    pub primed: Option<KilledChainParams>,
    /// Absorbing state indices of the original chain (`f_1…f_A`).
    pub absorbing: Vec<usize>,
    /// Reward rates of the absorbing states, same order.
    pub absorbing_rewards: Vec<f64>,
    /// Largest reward rate of the original chain.
    pub r_max: f64,
    /// The certified model-truncation error actually achieved (≤ the budget).
    pub truncation_error: f64,
}

impl RegenParams {
    /// Total construction steps `K (+ L)` — the paper's step count for
    /// RR/RRL.
    pub fn construction_steps(&self) -> usize {
        self.main.depth() + self.primed.as_ref().map_or(0, |p| p.depth())
    }

    /// Approximate heap footprint in bytes (the stored scalar sequences, by
    /// vector capacity — what the allocator actually handed out). Used by
    /// bounded artifact caches for byte accounting; audited against a
    /// counting allocator by the engine's byte-accounting test.
    pub fn approx_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        self.main.approx_bytes()
            + self.primed.as_ref().map_or(0, |p| p.approx_bytes())
            + self.absorbing.capacity() * std::mem::size_of::<usize>()
            + self.absorbing_rewards.capacity() * f
    }

    /// Computes the parameters for horizon `t` under `opts`.
    ///
    /// Validates the paper's structural assumptions (via
    /// [`regenr_ctmc::analyze`]) and that `r` is a non-absorbing state.
    pub fn compute(
        ctmc: &Ctmc,
        r: usize,
        t: f64,
        opts: &RegenOptions,
    ) -> Result<RegenParams, CtmcError> {
        let info = analyze(ctmc)?;
        if r >= ctmc.n_states() {
            return Err(CtmcError::BadRegenerativeState {
                state: r,
                reason: "index out of range",
            });
        }
        if info.absorbing.contains(&r) {
            return Err(CtmcError::BadRegenerativeState {
                state: r,
                reason: "state is absorbing",
            });
        }
        assert!(t >= 0.0, "time must be non-negative");
        assert!(opts.epsilon > 0.0, "epsilon must be positive");

        let unif = Uniformized::new(ctmc, opts.theta);
        Self::compute_with(ctmc, &unif, &info.absorbing, r, t, opts)
    }

    /// Like [`RegenParams::compute`] with a pre-built uniformization (used by
    /// the solvers to share `P` across calls).
    pub fn compute_with(
        ctmc: &Ctmc,
        unif: &Uniformized,
        absorbing: &[usize],
        r: usize,
        t: f64,
        opts: &RegenOptions,
    ) -> Result<RegenParams, CtmcError> {
        Self::compute_with_ws(ctmc, unif, absorbing, r, t, opts, &mut Workspace::new())
    }

    /// Like [`RegenParams::compute_with`] with caller-owned scratch: the
    /// killed-chain stepping reuses `ws` buffers, so repeated computations
    /// (horizon widening, sweeps) allocate no steady-state scratch vectors.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with_ws(
        ctmc: &Ctmc,
        unif: &Uniformized,
        absorbing: &[usize],
        r: usize,
        t: f64,
        opts: &RegenOptions,
        ws: &mut Workspace,
    ) -> Result<RegenParams, CtmcError> {
        let n = ctmc.n_states();
        let r_max = ctmc.max_reward();
        let alpha_r = ctmc.initial()[r];
        let has_primed = alpha_r < 1.0 - 1e-15;

        // Poisson window for the truncation bound. The weights only enter a
        // *bound*, so a modest coverage suffices; the tail bounds are part of
        // survival()/expected_excess() and keep the bound one-sided.
        let lambda_t = unif.lambda * t;
        let w = PoissonWeights::new(lambda_t, (opts.epsilon * 1e-3).clamp(1e-300, 0.5));

        let budget = opts.epsilon / 2.0;
        let (budget_main, budget_primed) = if has_primed {
            (budget / 2.0, budget / 2.0)
        } else {
            (budget, 0.0)
        };

        // Main chain: starts at r with mass 1.
        let mut start = ws.take_zeroed(n);
        start[r] = 1.0;
        let (main, err_main) = step_killed_chain(
            ctmc,
            unif,
            absorbing,
            r,
            start,
            &w,
            budget_main,
            opts,
            CycleKind::Repeating,
            ws,
        );

        // Primed chain: starts from α restricted to S∖{r} (absorbing states
        // carry no initial mass by the analyze() check).
        let (primed, err_primed) = if has_primed {
            let mut start = ws.take_copied(ctmc.initial());
            start[r] = 0.0;
            for &f in absorbing {
                start[f] = 0.0;
            }
            let (p, e) = step_killed_chain(
                ctmc,
                unif,
                absorbing,
                r,
                start,
                &w,
                budget_primed,
                opts,
                CycleKind::OneShot,
                ws,
            );
            (Some(p), e)
        } else {
            (None, 0.0)
        };

        Ok(RegenParams {
            lambda: unif.lambda,
            r_index: r,
            alpha_r,
            main,
            primed,
            absorbing: absorbing.to_vec(),
            absorbing_rewards: absorbing.iter().map(|&f| ctmc.rewards()[f]).collect(),
            r_max,
            truncation_error: err_main + err_primed,
        })
    }
}

impl RegenParams {
    /// Smallest depths `(K, L)` whose truncation bound meets the `ε/2` budget
    /// at horizon `t`, using the *stored* sequences (no re-stepping).
    ///
    /// The truncation bound is monotone in `t`, so parameters computed at
    /// `t_max` serve every `t ≤ t_max` by prefix truncation — the basis of
    /// [`crate::RrlSolver::solve_many`], an extension over the paper's
    /// per-`t` recomputation. Returns `None` when the stored depth is
    /// insufficient (i.e. `t` exceeds the horizon the parameters were built
    /// for).
    pub fn depth_for_horizon(&self, t: f64, epsilon: f64) -> Option<(usize, Option<usize>)> {
        assert!(t >= 0.0 && epsilon > 0.0);
        let w = PoissonWeights::new(self.lambda * t, (epsilon * 1e-3).clamp(1e-300, 0.5));
        let budget = epsilon / 2.0;
        let (budget_main, budget_primed) = if self.primed.is_some() {
            (budget / 2.0, budget / 2.0)
        } else {
            (budget, 0.0)
        };
        let k = self.find_depth(&self.main, &w, budget_main, CycleKind::Repeating)?;
        let l = match &self.primed {
            Some(p) => Some(self.find_depth(p, &w, budget_primed, CycleKind::OneShot)?),
            None => None,
        };
        Some((k, l))
    }

    fn find_depth(
        &self,
        chain: &KilledChainParams,
        w: &PoissonWeights,
        budget: f64,
        kind: CycleKind,
    ) -> Option<usize> {
        for (k, &a_k) in chain.a.iter().enumerate() {
            let reach = w.survival(k as u64);
            let b = match kind {
                CycleKind::Repeating => (a_k * w.expected_excess(k as u64)).min(reach),
                CycleKind::OneShot => a_k.min(reach),
            };
            if self.r_max * b <= budget || a_k <= f64::MIN_POSITIVE {
                return Some(k);
            }
        }
        None
    }

    /// Prefix-truncated copy at depths `(k, l)` (both must not exceed the
    /// stored depths).
    pub fn truncated(&self, k: usize, l: Option<usize>) -> RegenParams {
        regenr_failpoint::failpoint!("rrl-truncate");
        assert!(k <= self.main.depth(), "k exceeds stored depth");
        let main = truncate_chain(&self.main, k);
        let primed = match (&self.primed, l) {
            (Some(p), Some(l)) => {
                assert!(l <= p.depth(), "l exceeds stored depth");
                Some(truncate_chain(p, l))
            }
            (None, None) => None,
            _ => panic!("primed-chain presence mismatch in truncation"),
        };
        RegenParams {
            lambda: self.lambda,
            r_index: self.r_index,
            alpha_r: self.alpha_r,
            main,
            primed,
            absorbing: self.absorbing.clone(),
            absorbing_rewards: self.absorbing_rewards.clone(),
            r_max: self.r_max,
            truncation_error: self.truncation_error,
        }
    }
}

/// Prefix of one killed chain's sequences at depth `k`.
fn truncate_chain(chain: &KilledChainParams, k: usize) -> KilledChainParams {
    KilledChainParams {
        a: chain.a[..=k].to_vec(),
        c: chain.c[..=k].to_vec(),
        u: chain.u[..k].to_vec(),
        y: chain.y.iter().map(|yi| yi[..k].to_vec()).collect(),
    }
}

/// Whether a killed chain restarts on every visit to `r` (the main chain) or
/// is traversed at most once (the primed chain) — this changes the sound
/// truncation bound (see module docs).
#[derive(Clone, Copy, PartialEq)]
enum CycleKind {
    Repeating,
    OneShot,
}

/// Steps one killed chain until its truncation bound meets `budget`.
/// Returns the parameters and the certified error bound achieved. `start`
/// is consumed as the iterate and returned to `ws` on exit.
#[allow(clippy::too_many_arguments)]
fn step_killed_chain(
    ctmc: &Ctmc,
    unif: &Uniformized,
    absorbing: &[usize],
    r: usize,
    start: Vec<f64>,
    w: &PoissonWeights,
    budget: f64,
    opts: &RegenOptions,
    kind: CycleKind,
    ws: &mut Workspace,
) -> (KilledChainParams, f64) {
    let r_max = ctmc.max_reward();
    let n_abs = absorbing.len();
    let mut pi = start;
    let mut next = ws.take_zeroed(pi.len());

    let a0 = KahanSum::sum_slice(&pi);
    let mut params = KilledChainParams {
        a: vec![a0],
        c: vec![ctmc.reward_dot(&pi)],
        u: Vec::new(),
        y: vec![Vec::new(); n_abs],
    };

    let bound = |k: usize, a_k: f64| -> f64 {
        let kk = k as u64;
        let reach = w.survival(kk); // P[N ≥ k]
        let b = match kind {
            CycleKind::Repeating => (a_k * w.expected_excess(kk)).min(reach),
            CycleKind::OneShot => a_k.min(reach),
        };
        r_max * b
    };

    // k = 0 check: with a(0) possibly < 1 (primed chain), the bound may
    // already hold — then the chain contributes nothing representable and
    // K = 0 (no stepping).
    if bound(0, a0) <= budget || a0 == 0.0 {
        let err = bound(0, a0);
        ws.give(pi);
        ws.give(next);
        return (params, err);
    }

    let stepper = unif.stepper(&opts.parallel);
    loop {
        let k = params.u.len(); // about to compute step k -> k+1
        stepper.step(&pi, &mut next);
        // Kill on return to r / absorption, recording the killed mass.
        params.u.push(next[r]);
        next[r] = 0.0;
        for (i, &f) in absorbing.iter().enumerate() {
            params.y[i].push(next[f]);
            next[f] = 0.0;
        }
        std::mem::swap(&mut pi, &mut next);
        let a_next = KahanSum::sum_slice(&pi);
        params.a.push(a_next);
        params.c.push(ctmc.reward_dot(&pi));

        let depth = k + 1;
        let err = bound(depth, a_next);
        if err <= budget || a_next <= f64::MIN_POSITIVE {
            ws.give(pi);
            ws.give(next);
            return (params, err.min(budget));
        }
        assert!(
            depth < opts.max_depth,
            "regenerative truncation exceeded max_depth={} — the regenerative \
             state {r} is visited too rarely for this method",
            opts.max_depth
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(l: f64, m: f64) -> Ctmc {
        Ctmc::from_rates(2, &[(0, 1, l), (1, 0, m)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn invariants_hold_on_two_state() {
        let c = two_state(0.1, 1.0);
        let p = RegenParams::compute(&c, 0, 100.0, &RegenOptions::default()).unwrap();
        assert_eq!(p.r_index, 0);
        assert_eq!(p.alpha_r, 1.0);
        assert!(p.primed.is_none());
        let m = &p.main;
        // a is non-increasing, starts at 1.
        assert_eq!(m.a[0], 1.0);
        for k in 1..m.a.len() {
            assert!(m.a[k] <= m.a[k - 1] + 1e-15);
        }
        // q + w + v = 1 in unnormalized form: u(k) + a(k+1) = a(k) (A = 0).
        for k in 0..m.u.len() {
            let lhs = m.u[k] + m.a[k + 1];
            assert!((lhs - m.a[k]).abs() < 1e-14, "k={k}: {lhs} vs {}", m.a[k]);
        }
        // c(k) ≤ r_max·a(k).
        for k in 0..m.c.len() {
            assert!(m.c[k] <= p.r_max * m.a[k] + 1e-15);
        }
        assert!(p.truncation_error <= 0.5e-12);
    }

    #[test]
    fn absorbing_mass_accounted() {
        // 0 <-> 1, 1 -> f at rate 0.2.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 0.2)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        let p = RegenParams::compute(&c, 0, 50.0, &RegenOptions::default()).unwrap();
        let m = &p.main;
        assert_eq!(p.absorbing, vec![2]);
        // Conservation with absorption: u(k) + y(k) + a(k+1) = a(k).
        for k in 0..m.u.len() {
            let lhs = m.u[k] + m.y[0][k] + m.a[k + 1];
            assert!((lhs - m.a[k]).abs() < 1e-14, "k={k}");
        }
        // Absorption mass must be strictly positive somewhere.
        assert!(m.y[0].iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn primed_chain_appears_when_initial_off_r() {
        let c = two_state(0.5, 1.0).with_initial(vec![0.25, 0.75]).unwrap();
        let p = RegenParams::compute(&c, 0, 10.0, &RegenOptions::default()).unwrap();
        assert!((p.alpha_r - 0.25).abs() < 1e-15);
        let pr = p.primed.as_ref().expect("primed chain expected");
        assert!((pr.a[0] - 0.75).abs() < 1e-15);
        // Primed chain conservation: u'(k) + a'(k+1) = a'(k).
        for k in 0..pr.u.len() {
            assert!((pr.u[k] + pr.a[k + 1] - pr.a[k]).abs() < 1e-14);
        }
    }

    #[test]
    fn k_grows_with_horizon_then_saturates_logarithmically() {
        // A 3-state cycle where the return to r takes a geometric number of
        // steps (state 2 keeps a self-loop under randomization), so a(k)
        // decays geometrically instead of dying out.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.01), (1, 2, 1.0), (2, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let opts = RegenOptions::default();
        let k = |t: f64| {
            RegenParams::compute(&c, 0, t, &opts)
                .unwrap()
                .construction_steps()
        };
        let (k1, k100, k10000) = (k(1.0), k(100.0), k(10_000.0));
        assert!(k1 < k100 && k100 <= k10000, "{k1} {k100} {k10000}");
        // Logarithmic regime: the jump per factor-100 in t must shrink.
        assert!(
            (k10000 - k100) < (k100 - k1) + k100,
            "K growth must taper: {k1} {k100} {k10000}"
        );
    }

    #[test]
    fn rejects_absorbing_regenerative_state() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let err = RegenParams::compute(&c, 1, 1.0, &RegenOptions::default());
        assert!(matches!(
            err,
            Err(CtmcError::BadRegenerativeState { state: 1, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_state() {
        let c = two_state(1.0, 1.0);
        let err = RegenParams::compute(&c, 7, 1.0, &RegenOptions::default());
        assert!(matches!(
            err,
            Err(CtmcError::BadRegenerativeState { state: 7, .. })
        ));
    }

    #[test]
    fn dying_chain_terminates_exactly() {
        // 0 -> 1 -> f, no way back except killing: a(k) hits 0 at k=3.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        // Λ = 1: P has no self-loops except f. Killed chain from 0: after
        // step 1 mass on 1 (a=1), after step 2 all mass returns to 0 or
        // absorbs => a(2) = 0.
        let p = RegenParams::compute(&c, 0, 1e6, &RegenOptions::default()).unwrap();
        assert!(p.main.a.last().copied().unwrap() <= f64::MIN_POSITIVE);
        assert!(p.main.depth() <= 3);
        assert!(p.truncation_error == 0.0 || p.truncation_error <= 1e-300);
    }
}
