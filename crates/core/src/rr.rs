//! The original regenerative randomization method (RR) — the paper's
//! predecessor baseline: build `V_{K,L}`, then solve it with standard
//! randomization.

use crate::params::{check_regen_state, RegenOptions, RegenParams};
use crate::vmodel::build_truncated_model;
use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use regenr_sparse::Workspace;
use regenr_transient::{MeasureKind, SrOptions, SrSolver};
use std::sync::Arc;

/// Options for [`RrSolver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RrOptions {
    /// Shared regenerative-randomization options (`ε`, `θ`, caps).
    pub regen: RegenOptions,
}

/// Result of an RR solve.
#[derive(Clone, Copy, Debug)]
pub struct RrSolution {
    /// The measure value.
    pub value: f64,
    /// Construction steps `K (+ L)` — the paper's reported step count.
    pub construction_steps: usize,
    /// Depth `K` of the main chain.
    pub k: usize,
    /// Depth `L` of the primed chain (0 when absent).
    pub l: usize,
    /// Steps of the *inner* standard-randomization solve of `V_{K,L}`
    /// (`≈ Λt` — the cost RRL eliminates).
    pub inner_steps: usize,
    /// Total error bound (`ε`).
    pub error_bound: f64,
}

/// Regenerative-randomization solver (truncated model solved by SR).
pub struct RrSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    absorbing: Vec<usize>,
    r: usize,
    opts: RrOptions,
}

impl<'a> RrSolver<'a> {
    /// Checks the chain structure and the regenerative state; returns the
    /// absorbing-state list on success. Runs *before* the `O(nnz)`
    /// uniformization so invalid inputs fail cheaply.
    fn validate(ctmc: &Ctmc, r: usize) -> Result<Vec<usize>, CtmcError> {
        let info = analyze(ctmc)?;
        check_regen_state(ctmc, &info.absorbing, r)?;
        Ok(info.absorbing)
    }

    /// Validates the chain structure and the regenerative state, and
    /// uniformizes once (shared across `solve` calls).
    pub fn new(ctmc: &'a Ctmc, r: usize, opts: RrOptions) -> Result<Self, CtmcError> {
        let absorbing = Self::validate(ctmc, r)?;
        let unif = Arc::new(Uniformized::new(ctmc, opts.regen.theta));
        Ok(RrSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.regen.theta`.
    pub fn with_uniformized(
        ctmc: &'a Ctmc,
        r: usize,
        unif: Arc<Uniformized>,
        opts: RrOptions,
    ) -> Result<Self, CtmcError> {
        let absorbing = Self::validate(ctmc, r)?;
        unif.assert_built_from(ctmc);
        Ok(RrSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// Reuses a prebuilt uniformization **and** a cached structure analysis:
    /// `absorbing` must be the chain's ascending absorbing-state list as
    /// produced by [`regenr_ctmc::analyze`] on this very chain (the engine
    /// passes its cached `ChainFacts`). This skips the `O(n + nnz)` Tarjan
    /// pass entirely — only the regenerative state is re-checked against the
    /// supplied list — so a caller handing over facts from a *different*
    /// chain gets whatever that list implies, not an error.
    pub fn with_uniformized_facts(
        ctmc: &'a Ctmc,
        r: usize,
        unif: Arc<Uniformized>,
        absorbing: Vec<usize>,
        opts: RrOptions,
    ) -> Result<Self, CtmcError> {
        check_regen_state(ctmc, &absorbing, r)?;
        unif.assert_built_from(ctmc);
        Ok(RrSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// The randomization rate.
    pub fn lambda(&self) -> f64 {
        self.unif.lambda
    }

    /// The regenerative state in use (callers deriving cache keys must use
    /// this, not re-run their own selection).
    pub fn regenerative_state(&self) -> usize {
        self.r
    }

    /// The options in effect.
    pub fn options(&self) -> &RrOptions {
        &self.opts
    }

    /// Computes the measure at horizon `t` with total error `≤ ε`
    /// (`ε/2` model truncation + `ε/2` inner SR).
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Result<RrSolution, CtmcError> {
        self.solve_with(measure, t, &mut Workspace::new())
    }

    /// Like [`RrSolver::solve`] with caller-owned scratch for the
    /// construction stepping and the inner SR propagation.
    pub fn solve_with(
        &self,
        measure: MeasureKind,
        t: f64,
        ws: &mut Workspace,
    ) -> Result<RrSolution, CtmcError> {
        assert!(t >= 0.0);
        if t == 0.0 {
            return Ok(RrSolution {
                value: self.ctmc.reward_dot(self.ctmc.initial()),
                construction_steps: 0,
                k: 0,
                l: 0,
                inner_steps: 0,
                error_bound: 0.0,
            });
        }
        let params = RegenParams::compute_with_ws(
            self.ctmc,
            &self.unif,
            &self.absorbing,
            self.r,
            t,
            &self.opts.regen,
            ws,
        )?;
        self.solve_from(&params, measure, t, ws)
    }

    /// Solves the truncated model described by already-computed (and, for
    /// `t` below their horizon, already-sliced) parameters — the stage
    /// shared by [`RrSolver::solve`], [`RrSolver::solve_many`] and the
    /// engine's cross-request parameter cache.
    pub fn solve_from(
        &self,
        params: &RegenParams,
        measure: MeasureKind,
        t: f64,
        ws: &mut Workspace,
    ) -> Result<RrSolution, CtmcError> {
        let (vmodel, _) = build_truncated_model(params)?;
        let inner = SrSolver::new(
            &vmodel,
            SrOptions {
                epsilon: self.opts.regen.epsilon / 2.0,
                theta: self.opts.regen.theta,
                parallel: self.opts.regen.parallel,
            },
        );
        let sol = inner.solve_with(measure, t, ws);
        Ok(RrSolution {
            value: sol.value,
            construction_steps: params.construction_steps(),
            k: params.main.depth(),
            l: params.primed.as_ref().map_or(0, |p| p.depth()),
            inner_steps: sol.steps,
            error_bound: self.opts.regen.epsilon,
        })
    }

    /// Solves the measure at *many* horizons, sharing a single parameter
    /// computation (mirrors [`crate::RrlSolver::solve_many`]): the sequences
    /// computed at `max(ts)` serve every smaller horizon by prefix
    /// truncation, so the `Θ(K·nnz)` construction stepping is paid once.
    /// The per-`t` inner standard-randomization solve is still `Θ(Λt)` —
    /// that is RR's defining cost, which RRL eliminates.
    pub fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<RrSolution>, CtmcError> {
        self.solve_many_with(measure, ts, &mut Workspace::new())
    }

    /// Like [`RrSolver::solve_many`] with caller-owned scratch.
    pub fn solve_many_with(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<RrSolution>, CtmcError> {
        let t_max = ts.iter().copied().fold(0.0f64, f64::max);
        if t_max == 0.0 {
            return ts
                .iter()
                .map(|&t| self.solve_with(measure, t, ws))
                .collect();
        }
        let params = self.parameters_with(t_max, ws)?;
        ts.iter()
            .map(|&t| {
                if t == 0.0 {
                    return self.solve_with(measure, t, ws);
                }
                let (k, l) = params
                    .depth_for_horizon(t, self.opts.regen.epsilon)
                    .expect("depth available: t <= t_max");
                let sliced = params.truncated(k, l);
                self.solve_from(&sliced, measure, t, ws)
            })
            .collect()
    }

    /// Exposes the computed parameters for a horizon (diagnostics, benches,
    /// the engine's parameter cache).
    pub fn parameters(&self, t: f64) -> Result<RegenParams, CtmcError> {
        self.parameters_with(t, &mut Workspace::new())
    }

    /// Like [`RrSolver::parameters`] with caller-owned scratch.
    pub fn parameters_with(&self, t: f64, ws: &mut Workspace) -> Result<RegenParams, CtmcError> {
        RegenParams::compute_with_ws(
            self.ctmc,
            &self.unif,
            &self.absorbing,
            self.r,
            t,
            &self.opts.regen,
            ws,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_many_matches_per_t_solves() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rr = RrSolver::new(&c, 0, opts(1e-11)).unwrap();
        let ts = [0.0, 0.5, 50.0, 5.0];
        for meas in [MeasureKind::Trr, MeasureKind::Mrr] {
            let many = rr.solve_many(meas, &ts).unwrap();
            for (sol, &t) in many.iter().zip(&ts) {
                let single = rr.solve(meas, t).unwrap();
                // Identical truncation criterion ⇒ identical depths & values.
                assert_eq!(sol.construction_steps, single.construction_steps, "t={t}");
                assert!(
                    (sol.value - single.value).abs() < 1e-13,
                    "t={t} {meas:?}: {} vs {}",
                    sol.value,
                    single.value
                );
            }
        }
    }

    fn opts(eps: f64) -> RrOptions {
        RrOptions {
            regen: RegenOptions {
                epsilon: eps,
                ..Default::default()
            },
        }
    }

    /// RR against the closed form of the 2-state repairable unit.
    #[test]
    fn matches_closed_form_availability() {
        let (l, m) = (1e-3, 1.0);
        let c =
            Ctmc::from_rates(2, &[(0, 1, l), (1, 0, m)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let rr = RrSolver::new(&c, 0, opts(1e-12)).unwrap();
        for &t in &[1.0, 100.0, 10_000.0] {
            let got = rr.solve(MeasureKind::Trr, t).unwrap();
            let want = l / (l + m) * (1.0 - (-(l + m) * t).exp());
            assert!(
                (got.value - want).abs() < 1e-11,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    /// RR against SR on a 4-state model with an absorbing failure state.
    #[test]
    fn matches_sr_with_absorbing() {
        let c = Ctmc::from_rates(
            4,
            &[
                (0, 1, 0.2),
                (1, 0, 2.0),
                (1, 2, 0.5),
                (2, 0, 1.0),
                (2, 3, 0.05),
            ],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        let rr = RrSolver::new(&c, 0, opts(1e-11)).unwrap();
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: 1e-12,
                ..Default::default()
            },
        );
        for &t in &[0.5, 10.0, 200.0] {
            for meas in [MeasureKind::Trr, MeasureKind::Mrr] {
                let got = rr.solve(meas, t).unwrap().value;
                let want = sr.solve(meas, t).value;
                assert!(
                    (got - want).abs() < 5e-11,
                    "t={t} {meas:?}: {got} vs {want}"
                );
            }
        }
    }

    /// Construction steps must be far below SR steps for large t (the whole
    /// point of the method).
    #[test]
    fn construction_steps_sublinear_in_t() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rr = RrSolver::new(&c, 0, opts(1e-12)).unwrap();
        let s1 = rr.solve(MeasureKind::Trr, 1e2).unwrap();
        let s2 = rr.solve(MeasureKind::Trr, 1e4).unwrap();
        assert!(s2.construction_steps < 2 * s1.construction_steps + 200);
        assert!(s2.inner_steps > 50 * s2.construction_steps);
    }

    #[test]
    fn zero_horizon() {
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 1.0), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.5, 1.0],
        )
        .unwrap();
        let rr = RrSolver::new(&c, 0, opts(1e-12)).unwrap();
        let s = rr.solve(MeasureKind::Trr, 0.0).unwrap();
        assert_eq!(s.value, 0.5);
        assert_eq!(s.construction_steps, 0);
    }

    #[test]
    fn bad_regenerative_state_rejected() {
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        assert!(RrSolver::new(&c, 1, opts(1e-12)).is_err());
        assert!(RrSolver::new(&c, 5, opts(1e-12)).is_err());
    }
}
