//! Regenerative randomization (RR) and its Laplace-transform-inversion
//! variant (RRL) — the contribution of the reproduced paper.
//!
//! ## Method overview
//!
//! Pick a *regenerative state* `r` in the strongly connected part `S` of the
//! chain. Randomize `X` at rate `Λ` into the DTMC `X̂`. Stepping `X̂` killed on
//! return to `r` / absorption yields scalar sequences (`a(k)`, `c(k)`, …, see
//! [`params::RegenParams`]) that characterize a *transformed* CTMC `V_{K,L}`
//! (Fig. 1 of the paper, [`vmodel`]) whose `TRR`/`MRR` match the original
//! chain's up to a controlled truncation error `ε/2`. The transformed model is
//! a chain of `K` states with returns to the head, so:
//!
//! * **RR** ([`RrSolver`]) solves `V_{K,L}` by standard randomization — cheap
//!   per step (≈3 transitions per state) but still `Θ(Λt)` steps;
//! * **RRL** ([`RrlSolver`]) — the paper's new variant — evaluates the
//!   *closed-form Laplace transform* of the truncated model's measures
//!   ([`transform`]) and inverts it numerically with `regenr-laplace`,
//!   replacing the `Θ(Λt)` inner stepping with a few hundred transform
//!   evaluations of cost `O(K)` each.
//!
//! The number of *construction* steps (`K`, plus `L` when the initial
//! distribution has mass off `r`) is identical for RR and RRL — this is the
//! "number of steps" the paper's Tables 1–2 report for the RR/RRL column.
//!
//! ```
//! use regenr_core::{RrlSolver, RrlOptions};
//! use regenr_ctmc::Ctmc;
//!
//! // Repairable unit; unavailability via the paper's RRL method.
//! let ctmc = Ctmc::from_rates(
//!     2,
//!     &[(0, 1, 1e-3), (1, 0, 1.0)],
//!     vec![1.0, 0.0],
//!     vec![0.0, 1.0],
//! ).unwrap();
//! let solver = RrlSolver::new(&ctmc, 0, RrlOptions::default()).unwrap();
//! let sol = solver.trr(1000.0).unwrap();
//! let exact = 1e-3 / 1.001 * (1.0 - (-1.001f64 * 1000.0).exp());
//! assert!((sol.value - exact).abs() < 1e-10);
//! assert!(sol.inversion_converged);
//! ```

pub mod params;
pub mod rr;
pub mod rrl;
pub mod select;
pub mod transform;
pub mod vmodel;

pub use params::{KilledChainParams, RegenOptions, RegenParams};
pub use rr::{RrOptions, RrSolution, RrSolver};
pub use rrl::{RrlOptions, RrlSolution, RrlSolver};
pub use select::{select_regenerative_state, select_regenerative_state_with, SelectOptions};
pub use transform::TransformEvaluator;
pub use vmodel::build_truncated_model;
