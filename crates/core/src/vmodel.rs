//! Explicit construction of the truncated transformed model `V_{K,L}`.
//!
//! This materializes Fig. 1 of the paper as a [`Ctmc`]: states
//! `s_0 … s_K` (the chain from `r`), optionally `s'_0 … s'_L` (the chain from
//! the off-`r` initial distribution), the original absorbing states
//! `f_1 … f_A`, and the truncation-absorbing state `a`. It is used by the RR
//! baseline (which solves it with standard randomization) and by tests that
//! cross-check the closed-form transform of [`crate::transform`] against a
//! time-domain solution of the very same model.

use crate::params::{KilledChainParams, RegenParams};
use regenr_ctmc::{Ctmc, CtmcError};

/// Index map for the states of the constructed `V_{K,L}`.
#[derive(Clone, Debug)]
pub struct VModelLayout {
    /// `s_k` has index `k` for `k = 0..=K`.
    pub k_depth: usize,
    /// `s'_l` has index `primed_base + l`, if the primed chain exists.
    pub primed_base: Option<usize>,
    /// Depth `L` of the primed chain (if present).
    pub l_depth: Option<usize>,
    /// `f_i` has index `absorbing_base + i`.
    pub absorbing_base: usize,
    /// Index of the truncation state `a`.
    pub trunc_state: usize,
    /// Total number of states.
    pub n_states: usize,
}

/// Builds the truncated transformed CTMC from computed parameters.
///
/// Rewards: `r_{s_k} = b(k) = c(k)/a(k)` (0 where `a(k) = 0`), the original
/// absorbing rewards on `f_i`, and 0 on `a`. The initial distribution puts
/// `α_r` on `s_0` and `1 − α_r` on `s'_0`.
pub fn build_truncated_model(params: &RegenParams) -> Result<(Ctmc, VModelLayout), CtmcError> {
    let k_depth = params.main.depth();
    let n_abs = params.absorbing.len();
    let l_depth = params.primed.as_ref().map(|p| p.depth());

    let primed_base = params.primed.as_ref().map(|_| k_depth + 1);
    let absorbing_base = k_depth + 1 + l_depth.map_or(0, |l| l + 1);
    let trunc_state = absorbing_base + n_abs;
    let n = trunc_state + 1;

    let lambda = params.lambda;
    let mut rates: Vec<(usize, usize, f64)> = Vec::new();
    let mut rewards = vec![0.0f64; n];
    let mut initial = vec![0.0f64; n];

    // The K-chain.
    push_chain(
        &mut rates,
        &mut rewards,
        &params.main,
        lambda,
        0,
        0, // returns go to s_0
        absorbing_base,
        trunc_state,
        true,
    );
    initial[0] = params.alpha_r;

    // The L-chain.
    if let (Some(primed), Some(base)) = (&params.primed, primed_base) {
        push_chain(
            &mut rates,
            &mut rewards,
            primed,
            lambda,
            base,
            0,
            absorbing_base,
            trunc_state,
            true,
        );
        initial[base] = 1.0 - params.alpha_r;
    }

    for (i, &rf) in params.absorbing_rewards.iter().enumerate() {
        rewards[absorbing_base + i] = rf;
    }

    let ctmc = Ctmc::from_rates(n, &rates, initial, rewards)?;
    Ok((
        ctmc,
        VModelLayout {
            k_depth,
            primed_base,
            l_depth,
            absorbing_base,
            trunc_state,
            n_states: n,
        },
    ))
}

/// Emits the transitions and rewards of one killed chain.
///
/// State `base + k` is depth `k`. Conditional probabilities are recovered
/// from the unnormalized masses: `w_k = a(k+1)/a(k)`, `q_k = u(k)/a(k)`,
/// `v^i_k = y_i(k)/a(k)`; depth `K` routes everything to the truncation state.
#[allow(clippy::too_many_arguments)]
fn push_chain(
    rates: &mut Vec<(usize, usize, f64)>,
    rewards: &mut [f64],
    chain: &KilledChainParams,
    lambda: f64,
    base: usize,
    return_target: usize,
    absorbing_base: usize,
    trunc_state: usize,
    route_tail_to_trunc: bool,
) {
    let depth = chain.depth();
    for k in 0..=depth {
        let ak = chain.a[k];
        if ak <= 0.0 {
            // Unreachable depth (chain died exactly); no transitions needed.
            continue;
        }
        rewards[base + k] = (chain.c[k] / ak).max(0.0);
        if k < depth {
            let w = (chain.a[k + 1] / ak).max(0.0);
            if w > 0.0 {
                rates.push((base + k, base + k + 1, w * lambda));
            }
            let q = (chain.u[k] / ak).max(0.0);
            if q > 0.0 && base + k != return_target {
                rates.push((base + k, return_target, q * lambda));
            }
            // A self-loop at s_0 (k = 0 of the main chain) is dropped —
            // `Ctmc::from_rates` ignores self-rates, which is the correct
            // CTMC semantics for the randomized self-transition.
            for (i, yi) in chain.y.iter().enumerate() {
                let v = (yi[k] / ak).max(0.0);
                if v > 0.0 {
                    rates.push((base + k, absorbing_base + i, v * lambda));
                }
            }
        } else if route_tail_to_trunc {
            // s_K -> a at full rate Λ.
            rates.push((base + k, trunc_state, lambda));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{RegenOptions, RegenParams};
    use regenr_ctmc::Ctmc;
    use regenr_transient::{MeasureKind, SrOptions, SrSolver};

    fn cyclic() -> Ctmc {
        Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.3)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn layout_is_consistent() {
        let c = cyclic();
        let p = RegenParams::compute(&c, 0, 10.0, &RegenOptions::default()).unwrap();
        let (v, layout) = build_truncated_model(&p).unwrap();
        assert_eq!(layout.n_states, v.n_states());
        assert_eq!(layout.k_depth, p.main.depth());
        assert!(layout.primed_base.is_none());
        // a must be absorbing; s_K must route to a at rate Λ.
        assert_eq!(v.exit_rate(layout.trunc_state), 0.0);
        let last_reachable = (0..=layout.k_depth)
            .rev()
            .find(|&k| p.main.a[k] > 0.0)
            .unwrap();
        if last_reachable == layout.k_depth {
            assert!(
                (v.generator().get(layout.k_depth, layout.trunc_state) - p.lambda).abs() < 1e-9
            );
        }
    }

    #[test]
    fn v_model_reproduces_original_trr() {
        // The key theorem: TRR of V matches TRR of X within ε.
        let c = cyclic();
        let eps = 1e-10;
        let opts = RegenOptions {
            epsilon: eps,
            ..Default::default()
        };
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: eps,
                ..Default::default()
            },
        );
        for &t in &[0.5, 5.0, 50.0] {
            let p = RegenParams::compute(&c, 0, t, &opts).unwrap();
            let (v, _) = build_truncated_model(&p).unwrap();
            let sr_v = SrSolver::new(
                &v,
                SrOptions {
                    epsilon: eps,
                    ..Default::default()
                },
            );
            let want = sr.solve(MeasureKind::Trr, t).value;
            let got = sr_v.solve(MeasureKind::Trr, t).value;
            assert!(
                (got - want).abs() < 5.0 * eps,
                "t={t}: V gives {got}, X gives {want}"
            );
        }
    }

    #[test]
    fn v_model_reproduces_original_mrr() {
        let c = cyclic();
        let eps = 1e-10;
        let opts = RegenOptions {
            epsilon: eps,
            ..Default::default()
        };
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: eps,
                ..Default::default()
            },
        );
        for &t in &[1.0, 20.0] {
            let p = RegenParams::compute(&c, 0, t, &opts).unwrap();
            let (v, _) = build_truncated_model(&p).unwrap();
            let sr_v = SrSolver::new(
                &v,
                SrOptions {
                    epsilon: eps,
                    ..Default::default()
                },
            );
            let want = sr.solve(MeasureKind::Mrr, t).value;
            let got = sr_v.solve(MeasureKind::Mrr, t).value;
            assert!(
                (got - want).abs() < 5.0 * eps,
                "t={t}: V gives {got}, X gives {want}"
            );
        }
    }

    #[test]
    fn v_model_with_absorbing_states() {
        // 0 <-> 1, 1 -> f: unreliability through the transformed model.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.4), (1, 0, 1.0), (1, 2, 0.1)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        let eps = 1e-10;
        let opts = RegenOptions {
            epsilon: eps,
            ..Default::default()
        };
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: eps,
                ..Default::default()
            },
        );
        for &t in &[1.0, 10.0, 100.0] {
            let p = RegenParams::compute(&c, 0, t, &opts).unwrap();
            let (v, layout) = build_truncated_model(&p).unwrap();
            assert_eq!(v.rewards()[layout.absorbing_base], 1.0);
            let sr_v = SrSolver::new(
                &v,
                SrOptions {
                    epsilon: eps,
                    ..Default::default()
                },
            );
            let want = sr.solve(MeasureKind::Trr, t).value;
            let got = sr_v.solve(MeasureKind::Trr, t).value;
            assert!((got - want).abs() < 5.0 * eps, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn v_model_with_primed_chain() {
        let c = cyclic().with_initial(vec![0.3, 0.5, 0.2]).unwrap();
        let eps = 1e-10;
        let opts = RegenOptions {
            epsilon: eps,
            ..Default::default()
        };
        let p = RegenParams::compute(&c, 0, 5.0, &opts).unwrap();
        let (v, layout) = build_truncated_model(&p).unwrap();
        let base = layout.primed_base.expect("primed chain");
        assert!((v.initial()[0] - 0.3).abs() < 1e-15);
        assert!((v.initial()[base] - 0.7).abs() < 1e-15);
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: eps,
                ..Default::default()
            },
        );
        let sr_v = SrSolver::new(
            &v,
            SrOptions {
                epsilon: eps,
                ..Default::default()
            },
        );
        let want = sr.solve(MeasureKind::Trr, 5.0).value;
        let got = sr_v.solve(MeasureKind::Trr, 5.0).value;
        assert!((got - want).abs() < 5.0 * eps, "{got} vs {want}");
    }
}
