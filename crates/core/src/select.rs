//! Automatic selection of the regenerative state.
//!
//! The paper assumes the modeller supplies `r` ("its performance will be good
//! when `r` is visited often in the DTMC `X̂`") and uses the fully operational
//! state in all experiments. This module provides a heuristic for when no
//! natural choice is known: pick the non-absorbing state with the largest
//! *cumulative expected occupancy* of the randomized DTMC over a bounded
//! number of steps,
//!
//! `score(i) = Σ_{n≤N} (α P^n)_i ,`
//!
//! which approximates (up to normalization) the expected number of visits —
//! exactly the quantity the method wants maximized. For irreducible chains
//! this converges to the stationary ranking; for absorbing chains it ranks by
//! pre-absorption occupancy, where stationary mass would be useless (it all
//! sits on the `f_i`).

use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use regenr_sparse::{ParallelConfig, Workspace};

/// Options for [`select_regenerative_state`].
#[derive(Clone, Copy, Debug)]
pub struct SelectOptions {
    /// Number of DTMC steps to accumulate occupancy over.
    pub steps: usize,
    /// Uniformization safety factor.
    pub theta: f64,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            steps: 2_000,
            theta: 0.0,
        }
    }
}

/// Picks a regenerative state by cumulative-occupancy ranking.
///
/// Returns the index of the highest-scoring non-absorbing state. Fails with
/// the structural errors of [`regenr_ctmc::analyze`] when the chain violates
/// the paper's assumptions.
pub fn select_regenerative_state(ctmc: &Ctmc, opts: SelectOptions) -> Result<usize, CtmcError> {
    select_regenerative_state_with(ctmc, opts, &mut Workspace::new())
}

/// Like [`select_regenerative_state`] with caller-owned scratch for the
/// occupancy iteration.
pub fn select_regenerative_state_with(
    ctmc: &Ctmc,
    opts: SelectOptions,
    ws: &mut Workspace,
) -> Result<usize, CtmcError> {
    let info = analyze(ctmc)?;
    let is_absorbing = {
        let mut v = vec![false; ctmc.n_states()];
        for &a in &info.absorbing {
            v[a] = true;
        }
        v
    };
    let unif = Uniformized::new(ctmc, opts.theta);
    let stepper = unif.stepper(&ParallelConfig::default());
    let mut pi = ws.take_copied(ctmc.initial());
    let mut next = ws.take_zeroed(pi.len());
    let mut score = ws.take_copied(&pi);
    for _ in 0..opts.steps {
        stepper.step(&pi, &mut next);
        std::mem::swap(&mut pi, &mut next);
        for (s, p) in score.iter_mut().zip(&pi) {
            *s += p;
        }
    }
    let best = score
        .iter()
        .enumerate()
        .filter(|&(i, _)| !is_absorbing[i])
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("at least one non-absorbing state exists");
    ws.give(pi);
    ws.give(next);
    ws.give(score);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_dominant_state_of_a_repairable_unit() {
        // Up state dominates occupancy by 1000:1.
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 1e-3), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap();
        assert_eq!(
            select_regenerative_state(&c, SelectOptions::default()).unwrap(),
            0
        );
    }

    #[test]
    fn never_picks_an_absorbing_state() {
        // Strong drift into the absorbing state: occupancy mass ends there,
        // but the selection must stay within S.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 0, 0.1), (1, 2, 5.0)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        let r = select_regenerative_state(&c, SelectOptions::default()).unwrap();
        assert!(r < 2, "picked absorbing state {r}");
    }

    #[test]
    fn raid_heuristic_agrees_with_papers_choice() {
        use regenr_models::{RaidModel, RaidParams};
        let built = RaidModel::new(RaidParams {
            g: 4,
            ..Default::default()
        })
        .build()
        .unwrap();
        // The paper's choice is the pristine state (index 0).
        let r = select_regenerative_state(&built.ctmc, SelectOptions::default()).unwrap();
        assert_eq!(r, 0);
    }

    #[test]
    fn propagates_structural_errors() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 2, 1.0), (1, 2, 1.0)],
            vec![0.5, 0.5, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        assert!(select_regenerative_state(&c, SelectOptions::default()).is_err());
    }
}
