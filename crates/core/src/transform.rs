//! Closed-form Laplace transforms of the truncated transformed model
//! (Section 2.1 of the paper).
//!
//! ## Derivation (re-derived and verified; see also DESIGN.md §3.2)
//!
//! Write `z = Λ/(s+Λ)`. The Kolmogorov equations of `V_{K,L}` in the Laplace
//! domain give, for the `K`-chain states (`p_k = P[V(t)=s_k]`):
//!
//! ```text
//! (s+Λ)·p~_k = Λ w_{k-1} p~_{k-1}            (1 ≤ k ≤ K)
//!   ⇒ p~_k = a(k)·z^k·p~_0            (Π w_j telescopes to a(k))
//! ```
//!
//! and the balance at `s_0` (initial mass `α_r`, inflows `q_k` from `s_k` and
//! `q'_k` from `s'_k`):
//!
//! ```text
//! s·p~_0 − α_r = −Λ p~_0 + Λ Σ_{k<K} q_k p~_k + Λ Σ_{k<L} q'_k p~'_k .
//! ```
//!
//! Substituting `q_k = 1 − w_k − v_k`, telescoping `Σ (a(k)−a(k+1)) z^k`, and
//! using `Λ/z = s+Λ` yields `p~_0 = A(s)/B(s)` with
//!
//! ```text
//! B(s) = s·Σ_{k≤K} a(k) z^k + Λ·Σ_{k<K} v_k a(k) z^k + Λ·a(K)·z^K ,
//! A(s) = 1 − s/(s+Λ)·Σ_{k≤L} a'(k) z^k − Λ/(s+Λ)·Σ_{k<L} v'_k a'(k) z^k
//!          − a'(L)·z^{L+1}        (A ≡ 1 when α_r = 1) ,
//! ```
//!
//! the primed chain solving to `p~'_k = a'(k)·z^k/(s+Λ)` directly. The
//! absorbing states integrate their inflows (`p~_{f_i} = inflow/s`), giving
//!
//! ```text
//! TRR~(s) = [ Σ_{k≤K} c(k) z^k + (Λ/s)·Σ_{k<K} d(k) z^k ] · A(s)/B(s)
//!         + 1/(s+Λ)·Σ_{k≤L} c'(k) z^k + (1/s)·Σ_{k<L} d'(k) z^{k+1} ,
//! ```
//!
//! with `c(k) = a(k) b(k)` the unnormalized reward masses and
//! `d(k) = Σ_i r_{f_i}·v^i_k·a(k)` the reward-weighted absorption masses —
//! precisely the quantities [`crate::params`] records. Finally
//! `C~(s) = TRR~(s)/s` for `C(t) = t·MRR(t)`.
//!
//! These expressions match the paper's after accounting for OCR artifacts
//! (the printed formulas drop some `Λ` factors); every identity above is
//! regression-tested against exact analytic transforms of small models and
//! against time-domain solutions of the same `V_{K,L}`.

use crate::params::{KilledChainParams, RegenParams};
use regenr_numeric::Complex64;

/// Evaluator of `TRR~(s)` and `C~(s)` for one computed parameter set.
///
/// Construction precomputes the real coefficient arrays; each evaluation is
/// `O(K + L)` complex operations (Horner's rule).
#[derive(Clone, Debug)]
pub struct TransformEvaluator {
    lambda: f64,
    alpha_r: f64,
    /// `a(0..=K)`.
    a: Vec<f64>,
    /// `c(0..=K)`.
    c: Vec<f64>,
    /// `d(0..K)` — reward-weighted absorption masses.
    d: Vec<f64>,
    /// `v(0..K)` — total absorption masses (`Σ_i y_i(k)`).
    v: Vec<f64>,
    /// Primed analogues (empty when `α_r = 1`).
    a_p: Vec<f64>,
    c_p: Vec<f64>,
    d_p: Vec<f64>,
    v_p: Vec<f64>,
}

/// Combines per-absorbing-state masses into the total and reward-weighted
/// coefficient arrays.
fn combine(chain: &KilledChainParams, rewards: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let depth = chain.depth();
    let mut v = vec![0.0; depth];
    let mut d = vec![0.0; depth];
    for (yi, &rf) in chain.y.iter().zip(rewards) {
        for k in 0..depth {
            v[k] += yi[k];
            d[k] += rf * yi[k];
        }
    }
    (v, d)
}

/// Complex Horner evaluation of `Σ coef[k]·z^k`.
fn horner(coef: &[f64], z: Complex64) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for &c in coef.iter().rev() {
        acc = acc * z + c;
    }
    acc
}

impl TransformEvaluator {
    /// Precomputes the coefficient arrays from a parameter set.
    pub fn new(params: &RegenParams) -> Self {
        let (v, d) = combine(&params.main, &params.absorbing_rewards);
        let (a_p, c_p, v_p, d_p) = match &params.primed {
            Some(p) => {
                let (vp, dp) = combine(p, &params.absorbing_rewards);
                (p.a.clone(), p.c.clone(), vp, dp)
            }
            None => (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        };
        TransformEvaluator {
            lambda: params.lambda,
            alpha_r: params.alpha_r,
            a: params.main.a.clone(),
            c: params.main.c.clone(),
            d,
            v,
            a_p,
            c_p,
            d_p,
            v_p,
        }
    }

    /// `TRR~(s)` — Laplace transform of the truncated transient reward rate.
    pub fn trr(&self, s: Complex64) -> Complex64 {
        let lambda = self.lambda;
        let s_lam = s + lambda;
        let z = Complex64::from_real(lambda) / s_lam;
        let k_depth = self.a.len() - 1;

        // B(s) = s·Σ a z^k + Λ·Σ v a z^k + Λ·a(K)·z^K.
        let b = s * horner(&self.a, z)
            + lambda * horner(&self.v, z)
            + Complex64::from_real(lambda * self.a[k_depth]) * z.powi(k_depth as u32);

        // A(s); 1 when there is no primed chain.
        let a_of_s = if self.a_p.is_empty() {
            Complex64::ONE
        } else {
            let l_depth = self.a_p.len() - 1;
            Complex64::ONE
                - (s / s_lam) * horner(&self.a_p, z)
                - (Complex64::from_real(lambda) / s_lam) * horner(&self.v_p, z)
                - Complex64::from_real(self.a_p[l_depth]) * z.powi(l_depth as u32 + 1)
        };

        let p0 = a_of_s / b;
        let mut out =
            (horner(&self.c, z) + (Complex64::from_real(lambda) / s) * horner(&self.d, z)) * p0;
        if !self.a_p.is_empty() {
            out += horner(&self.c_p, z) / s_lam;
            out += (z / s) * horner(&self.d_p, z);
        }
        out
    }

    /// `C~(s) = TRR~(s)/s` — transform of `C(t) = t·MRR(t)`.
    pub fn c_integral(&self, s: Complex64) -> Complex64 {
        self.trr(s) / s
    }

    /// Laplace transform of `P[V(t) = a]`, the occupancy of the truncation
    /// state.
    ///
    /// The truncation state integrates the inflows `Λ·p_K(t)` (and
    /// `Λ·p'_L(t)` when the primed chain exists):
    /// `p~_a(s) = (Λ/s)·a(K)·z^K·p~_0(s) + (1/s)·a'(L)·z^{L+1}`.
    ///
    /// Used by the *bounding* variant of RRL (an extension following the
    /// paper's companion report ref.\[2\]): rewarding `a` with `0` vs `r_max`
    /// yields certified lower/upper bounds whose gap is exactly the model
    /// truncation error.
    pub fn trunc_occupancy(&self, s: Complex64) -> Complex64 {
        let lambda = self.lambda;
        let s_lam = s + lambda;
        let z = Complex64::from_real(lambda) / s_lam;
        let k_depth = self.a.len() - 1;
        let b = s * horner(&self.a, z)
            + lambda * horner(&self.v, z)
            + Complex64::from_real(lambda * self.a[k_depth]) * z.powi(k_depth as u32);
        let a_of_s = if self.a_p.is_empty() {
            Complex64::ONE
        } else {
            let l_depth = self.a_p.len() - 1;
            Complex64::ONE
                - (s / s_lam) * horner(&self.a_p, z)
                - (Complex64::from_real(lambda) / s_lam) * horner(&self.v_p, z)
                - Complex64::from_real(self.a_p[l_depth]) * z.powi(l_depth as u32 + 1)
        };
        let p0 = a_of_s / b;
        let mut out = (Complex64::from_real(lambda) / s)
            * Complex64::from_real(self.a[k_depth])
            * z.powi(k_depth as u32)
            * p0;
        if !self.a_p.is_empty() {
            let l_depth = self.a_p.len() - 1;
            out += Complex64::from_real(self.a_p[l_depth]) * z.powi(l_depth as u32 + 1) / s;
        }
        out
    }

    /// `α_r` of the underlying parameter set.
    pub fn alpha_r(&self) -> f64 {
        self.alpha_r
    }

    /// The randomization rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{RegenOptions, RegenParams};
    use regenr_ctmc::Ctmc;

    fn eval_points() -> Vec<Complex64> {
        vec![
            Complex64::new(0.31, 0.0),
            Complex64::new(1.7, 2.3),
            Complex64::new(0.05, -14.0),
            Complex64::new(3.0, 100.0),
            Complex64::new(1e-4, 0.4),
        ]
    }

    /// Two-state repairable unit is represented *exactly* by V_K (the killed
    /// chain dies at depth 2 when μ = Λ), so the evaluator must reproduce the
    /// analytic transform `UA~(s) = λ / (s (s+λ+μ))` to machine precision.
    #[test]
    fn exact_two_state_availability_transform() {
        let (l, m) = (0.1, 1.0);
        let c =
            Ctmc::from_rates(2, &[(0, 1, l), (1, 0, m)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let p = RegenParams::compute(&c, 0, 100.0, &RegenOptions::default()).unwrap();
        assert!(
            p.main.a.last().copied().unwrap() <= f64::MIN_POSITIVE,
            "model must be exact"
        );
        let ev = TransformEvaluator::new(&p);
        for s in eval_points() {
            let got = ev.trr(s);
            let want = Complex64::from_real(l) / (s * (s + (l + m)));
            assert!(
                (got - want).abs() < 1e-13 * want.abs().max(1e-3),
                "s={s:?}: {got:?} vs {want:?}"
            );
        }
    }

    /// Pure-death chain: `UR~(s) = λ/(s(s+λ))`.
    #[test]
    fn exact_pure_death_unreliability_transform() {
        let l = 0.7;
        let c = Ctmc::from_rates(2, &[(0, 1, l)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let p = RegenParams::compute(&c, 0, 10.0, &RegenOptions::default()).unwrap();
        let ev = TransformEvaluator::new(&p);
        for s in eval_points() {
            let got = ev.trr(s);
            let want = Complex64::from_real(l) / (s * (s + l));
            assert!(
                (got - want).abs() < 1e-13 * want.abs().max(1e-3),
                "s={s:?}: {got:?} vs {want:?}"
            );
        }
    }

    /// Primed-chain case: initial distribution off `r`. Analytic transform of
    /// `π_1(t) = λ/(λ+μ) + (π_1(0) − λ/(λ+μ))e^{−(λ+μ)t}`.
    #[test]
    fn exact_two_state_with_primed_chain() {
        let (l, m) = (0.1, 1.0);
        let pi1_0 = 0.75;
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, l), (1, 0, m)],
            vec![1.0 - pi1_0, pi1_0],
            vec![0.0, 1.0],
        )
        .unwrap();
        let p = RegenParams::compute(&c, 0, 100.0, &RegenOptions::default()).unwrap();
        assert!(p.primed.is_some());
        let ev = TransformEvaluator::new(&p);
        let ss = l / (l + m);
        for s in eval_points() {
            let got = ev.trr(s);
            let want =
                Complex64::from_real(ss) / s + Complex64::from_real(pi1_0 - ss) / (s + (l + m));
            assert!(
                (got - want).abs() < 1e-12 * want.abs().max(1e-3),
                "s={s:?}: {got:?} vs {want:?}"
            );
        }
    }

    /// `C~ = TRR~/s` by construction.
    #[test]
    fn c_integral_is_trr_over_s() {
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 0.2), (1, 0, 0.9)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap();
        let p = RegenParams::compute(&c, 0, 10.0, &RegenOptions::default()).unwrap();
        let ev = TransformEvaluator::new(&p);
        let s = Complex64::new(0.8, 1.1);
        assert!((ev.c_integral(s) * s - ev.trr(s)).abs() < 1e-15);
    }

    /// Initial-value theorem: `s·TRR~(s) → TRR(0) = r·α` as `s → ∞`.
    #[test]
    fn initial_value_theorem() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.3), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.2)],
            vec![1.0, 0.0, 0.0],
            vec![0.7, 1.0, 0.2],
        )
        .unwrap();
        let p = RegenParams::compute(&c, 0, 10.0, &RegenOptions::default()).unwrap();
        let ev = TransformEvaluator::new(&p);
        let s = Complex64::from_real(1e9);
        let v = (s * ev.trr(s)).re;
        assert!((v - 0.7).abs() < 1e-6, "s·TRR~(s) = {v}, want 0.7");
    }
}
