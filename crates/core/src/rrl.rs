//! RRL — regenerative randomization with Laplace transform inversion.
//!
//! **The paper's new variant.** The truncated transformed model is *not*
//! solved by stepping; instead its closed-form transform
//! ([`crate::transform`]) is evaluated at the Durbin abscissae and inverted
//! numerically ([`regenr_laplace`]). The `Θ(Λt)` inner stepping of RR becomes
//! a few hundred `O(K)` transform evaluations, which is why the paper finds
//! RRL "significantly faster than the original regenerative randomization for
//! large `t` and models of moderate size".
//!
//! Error budget (paper §2.2): `ε/2` to model truncation (construction), then
//! `ε/4` to the inversion's approximation error via the damping parameter and
//! `ε/4` to its series-truncation error via the `ε/100` convergence tolerance
//! (a factor-25 reserve).

use crate::params::{check_regen_state, RegenOptions, RegenParams};
use crate::transform::TransformEvaluator;
use regenr_ctmc::{analyze, Ctmc, CtmcError, Uniformized};
use regenr_laplace::{
    damping_for_bounded, damping_for_linear_growth, DurbinInverter, InverterOptions,
};
use regenr_sparse::Workspace;
use regenr_transient::MeasureKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`RrlSolver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RrlOptions {
    /// Shared regenerative-randomization options (`ε`, `θ`, caps).
    pub regen: RegenOptions,
    /// Laplace-inversion tuning (`T = 8t`, ε-acceleration by default).
    pub inverter: InverterOptions,
}

/// Result of an RRL solve.
#[derive(Clone, Copy, Debug)]
pub struct RrlSolution {
    /// The measure value.
    pub value: f64,
    /// Construction steps `K (+ L)` — identical to RR's; the paper's Tables
    /// 1–2 report this number for the RR/RRL column.
    pub construction_steps: usize,
    /// Depth `K` of the main chain.
    pub k: usize,
    /// Depth `L` of the primed chain (0 when absent).
    pub l: usize,
    /// Transform evaluations performed by the inversion (the paper observed
    /// 105–329).
    pub abscissae: usize,
    /// Whether the inversion's convergence criterion was met.
    pub inversion_converged: bool,
    /// Wall time spent building the parameters (stepping the DTMC).
    pub construction_time: Duration,
    /// Wall time spent in transform evaluation + inversion (the paper reports
    /// this at ~1–2% of the total).
    pub inversion_time: Duration,
    /// Total error bound (`ε`).
    pub error_bound: f64,
}

/// The RRL solver.
pub struct RrlSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    absorbing: Vec<usize>,
    r: usize,
    opts: RrlOptions,
}

impl<'a> RrlSolver<'a> {
    /// Checks the chain structure and the regenerative state; returns the
    /// absorbing-state list on success. Runs *before* the `O(nnz)`
    /// uniformization so invalid inputs fail cheaply.
    fn validate(ctmc: &Ctmc, r: usize) -> Result<Vec<usize>, CtmcError> {
        let info = analyze(ctmc)?;
        check_regen_state(ctmc, &info.absorbing, r)?;
        Ok(info.absorbing)
    }

    /// Validates the chain structure and the regenerative state, and
    /// uniformizes once (shared across `solve` calls).
    pub fn new(ctmc: &'a Ctmc, r: usize, opts: RrlOptions) -> Result<Self, CtmcError> {
        let absorbing = Self::validate(ctmc, r)?;
        let unif = Arc::new(Uniformized::new(ctmc, opts.regen.theta));
        Ok(RrlSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.regen.theta`.
    pub fn with_uniformized(
        ctmc: &'a Ctmc,
        r: usize,
        unif: Arc<Uniformized>,
        opts: RrlOptions,
    ) -> Result<Self, CtmcError> {
        let absorbing = Self::validate(ctmc, r)?;
        unif.assert_built_from(ctmc);
        Ok(RrlSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// Reuses a prebuilt uniformization **and** a cached structure analysis:
    /// `absorbing` must be the chain's ascending absorbing-state list as
    /// produced by [`regenr_ctmc::analyze`] on this very chain (the engine
    /// passes its cached `ChainFacts`). This skips the `O(n + nnz)` Tarjan
    /// pass entirely — only the regenerative state is re-checked against the
    /// supplied list — so a caller handing over facts from a *different*
    /// chain gets whatever that list implies, not an error.
    pub fn with_uniformized_facts(
        ctmc: &'a Ctmc,
        r: usize,
        unif: Arc<Uniformized>,
        absorbing: Vec<usize>,
        opts: RrlOptions,
    ) -> Result<Self, CtmcError> {
        check_regen_state(ctmc, &absorbing, r)?;
        unif.assert_built_from(ctmc);
        Ok(RrlSolver {
            ctmc,
            unif,
            absorbing,
            r,
            opts,
        })
    }

    /// The randomization rate.
    pub fn lambda(&self) -> f64 {
        self.unif.lambda
    }

    /// The regenerative state in use (callers deriving cache keys must use
    /// this, not re-run their own selection).
    pub fn regenerative_state(&self) -> usize {
        self.r
    }

    /// The options in effect.
    pub fn options(&self) -> &RrlOptions {
        &self.opts
    }

    /// `TRR(t)` with total error `≤ ε`.
    pub fn trr(&self, t: f64) -> Result<RrlSolution, CtmcError> {
        self.solve(MeasureKind::Trr, t)
    }

    /// `MRR(t)` with total error `≤ ε`.
    pub fn mrr(&self, t: f64) -> Result<RrlSolution, CtmcError> {
        self.solve(MeasureKind::Mrr, t)
    }

    /// Computes the measure at horizon `t`.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Result<RrlSolution, CtmcError> {
        self.solve_with(measure, t, &mut Workspace::new())
    }

    /// Like [`RrlSolver::solve`] with caller-owned scratch for the
    /// construction stepping (the inversion itself works on `O(K)` scalars).
    pub fn solve_with(
        &self,
        measure: MeasureKind,
        t: f64,
        ws: &mut Workspace,
    ) -> Result<RrlSolution, CtmcError> {
        assert!(t >= 0.0);
        if t == 0.0 {
            return Ok(RrlSolution {
                value: self.ctmc.reward_dot(self.ctmc.initial()),
                construction_steps: 0,
                k: 0,
                l: 0,
                abscissae: 0,
                inversion_converged: true,
                construction_time: Duration::ZERO,
                inversion_time: Duration::ZERO,
                error_bound: 0.0,
            });
        }
        let t0 = Instant::now();
        let params = self.parameters_with(t, ws)?;
        let construction_time = t0.elapsed();
        let sol = self.invert_params(&params, measure, t);
        Ok(RrlSolution {
            construction_time,
            ..sol
        })
    }

    /// Inversion stage on precomputed parameters (shared by `solve` and the
    /// benches that want the two stages timed separately).
    pub fn invert_params(&self, params: &RegenParams, measure: MeasureKind, t: f64) -> RrlSolution {
        let eps = self.opts.regen.epsilon;
        let r_max = params.r_max;
        let t_period = self.opts.inverter.t_multiplier * t;
        let evaluator = TransformEvaluator::new(params);
        let inverter = DurbinInverter::new(self.opts.inverter);

        let t1 = Instant::now();
        let (value, abscissae, converged) = match measure {
            MeasureKind::Trr => {
                let a = damping_for_bounded(eps, r_max, t_period);
                let res = inverter.invert(|s| evaluator.trr(s), t, a, eps / 100.0);
                // TRR is a probability-weighted reward: clamp the tiny
                // inversion overshoot outside [0, r_max].
                (res.value.clamp(0.0, r_max), res.abscissae, res.converged)
            }
            MeasureKind::Mrr => {
                let a = damping_for_linear_growth(eps, r_max, t, t_period);
                let res = inverter.invert(|s| evaluator.c_integral(s), t, a, eps * t / 100.0);
                (
                    (res.value / t).clamp(0.0, r_max),
                    res.abscissae,
                    res.converged,
                )
            }
        };
        let inversion_time = t1.elapsed();

        // `mut` is used only when failpoint sites are compiled in.
        #[allow(unused_mut)]
        let mut value = value;
        #[allow(unused_mut)]
        let mut converged = converged;
        regenr_failpoint::failpoint!("rrl-nan", |_fired| value = f64::NAN);
        regenr_failpoint::failpoint!("rrl-nonconverged", |_fired| converged = false);

        RrlSolution {
            value,
            construction_steps: params.construction_steps(),
            k: params.main.depth(),
            l: params.primed.as_ref().map_or(0, |p| p.depth()),
            abscissae,
            inversion_converged: converged,
            construction_time: Duration::ZERO,
            inversion_time,
            error_bound: eps,
        }
    }

    /// Computes **certified two-sided bounds** on `TRR(t)` — an extension
    /// following the paper's companion report on bounding performability
    /// measures (ref.\[2\] in its bibliography).
    ///
    /// The truncated model under-counts exactly the probability mass parked
    /// in the truncation state `a`; rewarding `a` with `0` (the default)
    /// gives a lower bound and with `r_max` an upper bound, so
    /// `upper − lower = r_max·P[V(t)=a] ≤ ε/2` by the truncation criterion.
    /// Each side additionally carries the `ε/2` inversion budget, so the
    /// returned interval, widened by `ε`, contains the true value.
    pub fn trr_bounds(&self, t: f64) -> Result<(f64, f64), CtmcError> {
        assert!(t >= 0.0);
        if t == 0.0 {
            let v = self.ctmc.reward_dot(self.ctmc.initial());
            return Ok((v, v));
        }
        let eps = self.opts.regen.epsilon;
        let params = RegenParams::compute_with(
            self.ctmc,
            &self.unif,
            &self.absorbing,
            self.r,
            t,
            &self.opts.regen,
        )?;
        let r_max = params.r_max;
        let t_period = self.opts.inverter.t_multiplier * t;
        let evaluator = TransformEvaluator::new(&params);
        let inverter = DurbinInverter::new(self.opts.inverter);
        let a = damping_for_bounded(eps, r_max, t_period);
        let lower = inverter
            .invert(|s| evaluator.trr(s), t, a, eps / 100.0)
            .value
            .clamp(0.0, r_max);
        let upper = inverter
            .invert(
                |s| evaluator.trr(s) + r_max * evaluator.trunc_occupancy(s),
                t,
                a,
                eps / 100.0,
            )
            .value
            .clamp(0.0, r_max);
        // Inversion noise can make the sides cross by O(ε); never return an
        // inverted interval.
        Ok((lower.min(upper), upper.max(lower)))
    }

    /// Solves the measure at *many* horizons, sharing a single parameter
    /// computation — an extension over the paper, which recomputes the
    /// killed-chain sequences for each `t`.
    ///
    /// The truncation bound of DESIGN.md §3.1 is monotone in `t`, so the
    /// sequences computed at `max(ts)` serve every smaller horizon by prefix
    /// truncation; the per-`t` depths (and therefore the values) are
    /// *identical* to what per-`t` construction would produce, but the
    /// `Θ(K·nnz)` stepping cost is paid once instead of `|ts|` times.
    pub fn solve_many(
        &self,
        measure: MeasureKind,
        ts: &[f64],
    ) -> Result<Vec<RrlSolution>, CtmcError> {
        self.solve_many_with(measure, ts, &mut Workspace::new())
    }

    /// Like [`RrlSolver::solve_many`] with caller-owned scratch.
    pub fn solve_many_with(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Result<Vec<RrlSolution>, CtmcError> {
        let t_max = ts.iter().copied().fold(0.0f64, f64::max);
        if t_max == 0.0 {
            return ts
                .iter()
                .map(|&t| self.solve_with(measure, t, ws))
                .collect();
        }
        let t0 = Instant::now();
        let params = self.parameters_with(t_max, ws)?;
        let construction_time = t0.elapsed();
        ts.iter()
            .map(|&t| {
                if t == 0.0 {
                    return self.solve_with(measure, t, ws);
                }
                let (k, l) = params
                    .depth_for_horizon(t, self.opts.regen.epsilon)
                    .expect("depth available: t <= t_max");
                let sliced = params.truncated(k, l);
                let mut sol = self.invert_params(&sliced, measure, t);
                sol.construction_time = construction_time;
                Ok(sol)
            })
            .collect()
    }

    /// Exposes the computed parameters for a horizon (diagnostics, benches).
    pub fn parameters(&self, t: f64) -> Result<RegenParams, CtmcError> {
        self.parameters_with(t, &mut Workspace::new())
    }

    /// Like [`RrlSolver::parameters`] with caller-owned scratch.
    pub fn parameters_with(&self, t: f64, ws: &mut Workspace) -> Result<RegenParams, CtmcError> {
        RegenParams::compute_with_ws(
            self.ctmc,
            &self.unif,
            &self.absorbing,
            self.r,
            t,
            &self.opts.regen,
            ws,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regenr_transient::{SrOptions, SrSolver};

    fn opts(eps: f64) -> RrlOptions {
        RrlOptions {
            regen: RegenOptions {
                epsilon: eps,
                ..Default::default()
            },
            inverter: InverterOptions::default(),
        }
    }

    #[test]
    fn matches_closed_form_availability() {
        let (l, m) = (1e-3, 1.0);
        let c =
            Ctmc::from_rates(2, &[(0, 1, l), (1, 0, m)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-12)).unwrap();
        for &t in &[1.0, 100.0, 10_000.0, 1_000_000.0] {
            let got = rrl.trr(t).unwrap();
            let want = l / (l + m) * (1.0 - (-(l + m) * t).exp());
            assert!(got.inversion_converged, "t={t}: inversion did not converge");
            assert!(
                (got.value - want).abs() < 1e-10,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn matches_sr_on_cyclic_model_both_measures() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-11)).unwrap();
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: 1e-13,
                ..Default::default()
            },
        );
        for &t in &[0.5, 5.0, 50.0, 500.0] {
            for meas in [MeasureKind::Trr, MeasureKind::Mrr] {
                let got = rrl.solve(meas, t).unwrap();
                let want = sr.solve(meas, t).value;
                assert!(got.inversion_converged);
                assert!(
                    (got.value - want).abs() < 1e-9,
                    "t={t} {meas:?}: {} vs {want}",
                    got.value
                );
            }
        }
    }

    #[test]
    fn unreliability_with_absorbing_state() {
        let c = Ctmc::from_rates(
            4,
            &[
                (0, 1, 0.2),
                (1, 0, 2.0),
                (1, 2, 0.5),
                (2, 0, 1.0),
                (2, 3, 0.05),
            ],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-11)).unwrap();
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: 1e-13,
                ..Default::default()
            },
        );
        for &t in &[1.0, 30.0, 300.0] {
            for meas in [MeasureKind::Trr, MeasureKind::Mrr] {
                let got = rrl.solve(meas, t).unwrap().value;
                let want = sr.solve(meas, t).value;
                assert!((got - want).abs() < 1e-9, "t={t} {meas:?}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn primed_chain_initial_distribution() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![0.2, 0.5, 0.3],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-11)).unwrap();
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: 1e-13,
                ..Default::default()
            },
        );
        for &t in &[1.0, 25.0] {
            let got = rrl.trr(t).unwrap();
            assert!(got.l > 0, "primed chain must be present");
            let want = sr.solve(MeasureKind::Trr, t).value;
            assert!(
                (got.value - want).abs() < 1e-9,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn abscissae_in_papers_ballpark() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-12)).unwrap();
        let got = rrl.trr(1000.0).unwrap();
        assert!(
            got.abscissae >= 20 && got.abscissae <= 3000,
            "abscissae {} far outside the paper's 105–329 ballpark",
            got.abscissae
        );
    }

    #[test]
    fn bounds_bracket_the_true_value() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let eps = 1e-10;
        let rrl = RrlSolver::new(&c, 0, opts(eps)).unwrap();
        let sr = SrSolver::new(
            &c,
            SrOptions {
                epsilon: 1e-13,
                ..Default::default()
            },
        );
        for &t in &[0.5, 5.0, 50.0, 500.0] {
            let (lo, hi) = rrl.trr_bounds(t).unwrap();
            let truth = sr.solve(MeasureKind::Trr, t).value;
            assert!(lo <= hi);
            assert!(
                truth >= lo - eps && truth <= hi + eps,
                "t={t}: truth {truth} outside [{lo}, {hi}]"
            );
            assert!(hi - lo <= eps, "t={t}: gap {} exceeds ε", hi - lo);
        }
    }

    #[test]
    fn bounds_coincide_when_model_is_exact() {
        // Two-state unit: the killed chain dies at depth 2, no truncation
        // mass, so the bounds collapse to inversion noise.
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 0.1), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-12)).unwrap();
        let (lo, hi) = rrl.trr_bounds(10.0).unwrap();
        assert!(
            hi - lo < 1e-12,
            "gap {} should be pure inversion noise",
            hi - lo
        );
    }

    #[test]
    fn solve_many_matches_per_t_solves() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-11)).unwrap();
        let ts = [0.5, 5.0, 500.0, 50.0];
        for meas in [MeasureKind::Trr, MeasureKind::Mrr] {
            let many = rrl.solve_many(meas, &ts).unwrap();
            for (sol, &t) in many.iter().zip(&ts) {
                let single = rrl.solve(meas, t).unwrap();
                // Identical truncation criterion ⇒ identical depths & values.
                assert_eq!(sol.construction_steps, single.construction_steps, "t={t}");
                assert!(
                    (sol.value - single.value).abs() < 1e-13,
                    "t={t} {meas:?}: {} vs {}",
                    sol.value,
                    single.value
                );
            }
        }
    }

    #[test]
    fn solve_many_with_primed_chain_and_zero() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 0.05), (1, 2, 1.0), (2, 0, 0.5), (1, 0, 0.5)],
            vec![0.4, 0.6, 0.0],
            vec![0.3, 1.0, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-11)).unwrap();
        let ts = [0.0, 1.0, 30.0];
        let many = rrl.solve_many(MeasureKind::Trr, &ts).unwrap();
        assert!((many[0].value - (0.4 * 0.3 + 0.6 * 1.0)).abs() < 1e-14);
        for (sol, &t) in many.iter().zip(&ts).skip(1) {
            let single = rrl.trr(t).unwrap();
            assert!((sol.value - single.value).abs() < 1e-13, "t={t}");
        }
    }

    #[test]
    fn zero_horizon() {
        let c = Ctmc::from_rates(
            2,
            &[(0, 1, 1.0), (1, 0, 1.0)],
            vec![1.0, 0.0],
            vec![0.25, 1.0],
        )
        .unwrap();
        let rrl = RrlSolver::new(&c, 0, opts(1e-12)).unwrap();
        assert_eq!(rrl.trr(0.0).unwrap().value, 0.25);
    }
}
