//! Deterministic pseudo-random source for the proptest shim.

/// splitmix64 generator, seeded from the test's fully qualified name so each
/// property gets an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Seeds from a raw value (used by shim-internal tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer from `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::from_name("x::z").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
