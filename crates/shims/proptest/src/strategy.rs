//! Strategy combinators for the proptest shim: generation only, no
//! shrinking. A [`Strategy`] draws one value per call from a [`TestRng`].

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical `bool` strategy: a fair coin.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Length specification for [`vec()`]: a fixed size or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.hi > self.lo + 1 {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            } else {
                self.lo
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Mirrors `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty size range for vec strategy");
        VecStrategy { elem, lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..500 {
            let x = (1.5f64..9.25).generate(&mut rng);
            assert!((1.5..9.25).contains(&x));
            let n = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&n));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed(7);
        let strat = (1usize..4, 0.0f64..1.0)
            .prop_flat_map(|(n, x)| (collection::vec(0.0f64..2.0, n), Just(x)))
            .prop_map(|(v, x)| (v.len(), x));
        for _ in 0..100 {
            let (len, x) = strat.generate(&mut rng);
            assert!((1..4).contains(&len));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(crate::ProptestConfig { cases: 8, ..Default::default() })]

        #[test]
        fn macro_roundtrip(x in 0.0f64..1.0, (a, b) in (0usize..5, Just(2))) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 5);
            prop_assert_eq!(b, 2);
        }
    }
}
