//! Offline stand-in for `proptest` (see `crates/shims/README.md`).
//!
//! Implements the strategy-combinator slice this workspace's property tests
//! use — numeric ranges, tuples, [`Just`], `prop::collection::vec`,
//! `prop_map`/`prop_flat_map`, `any::<bool>()` — plus the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros and a deterministic
//! splitmix64 generator. Differences from upstream: failures are plain
//! panics with the generating case index, and there is **no shrinking** —
//! the failing inputs are printed by the assertion message instead.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::TestRng;

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The `proptest::prelude` equivalent: everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirrors `proptest::prelude::prop` (module-path combinators).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::strategy::collection::vec;
        }
    }
}

/// Top-level `prop` module, mirroring `proptest::prop` paths.
pub mod prop {
    pub use crate::prelude::prop::collection;
}

/// Defines property tests. Each function runs `config.cases` random cases;
/// a failing case panics with the case index (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest shim: property {} failed at case {}/{} \
                             (deterministic seed; re-run reproduces it)",
                            stringify!($name), __case + 1, config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a property-test condition (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality in a property test (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}
