//! Offline stand-in for `parking_lot` (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free `lock()`
//! signature (poisoned locks are recovered, matching `parking_lot`'s
//! poisoning-free semantics closely enough for this workspace).

use std::sync;

/// A mutex with `parking_lot`'s `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type re-exported under `parking_lot`'s name.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Read guard re-exported under `parking_lot`'s name.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard re-exported under `parking_lot`'s name.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
