//! Offline stand-in for `criterion` (see `crates/shims/README.md`).
//!
//! Implements the group/bench API slice the workspace's benches use, with
//! wall-clock measurement: each benchmark warms up, then runs batches until
//! the measurement budget elapses, and reports the mean iteration time.
//! There is no statistical analysis, plotting, or HTML output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>`: ignore flags, keep the first free arg.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter_pass = self
            .filter
            .as_deref()
            .is_none_or(|needle| name.contains(needle));
        if filter_pass {
            run_one(name, Duration::from_millis(500), Duration::from_secs(3), f);
        }
        self
    }
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (kept for API compatibility; the
    /// shim's loop is time-budgeted, not sample-counted).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.pass(&label) {
            run_one(&label, self.warm_up_time, self.measurement_time, |b| {
                f(b, input)
            });
        }
        self
    }

    /// Benchmarks `f`, labelled by `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        if self.pass(&label) {
            run_one(&label, self.warm_up_time, self.measurement_time, |b| f(b));
        }
        self
    }

    /// Closes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}

    fn pass(&self, label: &str) -> bool {
        self.criterion
            .filter
            .as_deref()
            .is_none_or(|needle| label.contains(needle))
    }
}

/// A benchmark label `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the `name/parameter` label.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    mean: Option<Duration>,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `f`: warm-up phase, then batches until the budget elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        let mut one = Duration::from_secs(0);
        let mut warm_iters = 0u64;
        while Instant::now() < warm_end || warm_iters == 0 {
            let t0 = Instant::now();
            std::hint::black_box(f());
            one = t0.elapsed();
            warm_iters += 1;
        }
        let mut iters = 0u64;
        let mut total = Duration::from_secs(0);
        // At least one measured iteration, even for very slow benchmarks.
        while total < self.measurement || iters == 0 {
            let t0 = Instant::now();
            std::hint::black_box(f());
            total += t0.elapsed();
            iters += 1;
            if one > self.measurement && iters >= 1 {
                break;
            }
        }
        self.mean = Some(total / iters.max(1) as u32);
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, warm_up: Duration, measurement: Duration, f: F) {
    let mut b = Bencher {
        mean: None,
        warm_up,
        measurement,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<48} time: {mean:>12.3?}/iter"),
        None => println!("{label:<48} (no measurement: Bencher::iter not called)"),
    }
}

/// Declares the benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, mirroring criterion's macro. Exits immediately when the
/// binary is invoked by `cargo test` (via `--test`), so benches stay fast
/// under the test runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_label() {
        let id = BenchmarkId::new("solve", 100.0);
        assert_eq!(id.label, "solve/100");
    }

    #[test]
    fn bencher_measures_mean() {
        let mut b = Bencher {
            mean: None,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.mean.is_some());
    }
}
