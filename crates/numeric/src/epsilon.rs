//! Wynn's ε-algorithm for convergence acceleration.
//!
//! The Durbin/Crump Laplace-inversion series converges slowly (terms decay like
//! `1/k` for discontinuous integrands); Wynn's ε-algorithm applied to the
//! partial sums produces the same limit with dramatically fewer terms — this is
//! exactly the acceleration the paper's Section 2.2 uses ("accelerates the
//! convergence of the series of (1) using the epsilon algorithm").
//!
//! The implementation is the streaming "moving lozenge": after feeding partial
//! sum `S_n` only the previous anti-diagonal of the ε-table is kept, so memory
//! is `O(n)` and each new term costs `O(n)` arithmetic. The best current
//! estimate is the highest even-order entry of the newest anti-diagonal.

use crate::Complex64;

/// Streaming ε-algorithm over complex partial sums.
#[derive(Clone, Debug, Default)]
pub struct EpsilonAcceleratorC {
    /// Previous anti-diagonal of the ε table (ε_k for k = 0..len-1).
    diag: Vec<Complex64>,
    /// Number of partial sums fed so far.
    count: usize,
    /// Most recent accelerated estimate.
    best: Complex64,
    /// Set once two adjacent table entries coincide to roundoff: the limit has
    /// been reached at some finite order and deeper columns would only amplify
    /// noise (QUADPACK's `qelg` applies the same cutoff).
    converged: bool,
}

/// Relative coincidence threshold for declaring numerical convergence of a
/// table column (a few ulps).
const EPS_REL: f64 = 1e-15;

impl EpsilonAcceleratorC {
    /// New empty accelerator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next partial sum `S_n`; returns the current accelerated
    /// estimate of the limit.
    pub fn push(&mut self, s: Complex64) -> Complex64 {
        self.count += 1;
        if self.converged {
            // The table already produced the limit to roundoff; keep it.
            return self.best;
        }
        // Compute the new anti-diagonal. The recursion is
        //   ε_{k+1}^{(m)} = ε_{k-1}^{(m+1)} + 1 / (ε_k^{(m+1)} − ε_k^{(m)})
        // with ε_k^{(m+1)} on the NEW anti-diagonal (index k) and both
        // ε_{k-1}^{(m+1)} and ε_k^{(m)} on the OLD one (indices k-1, k).
        let m = self.diag.len();
        let mut new_diag = Vec::with_capacity(m + 1);
        new_diag.push(s); // ε_0^{(n)} = S_n
        let mut prev_prev = Complex64::ZERO; // ε_{-1} ≡ 0
        for k in 0..m {
            let cur_new = new_diag[k];
            let cur_old = self.diag[k];
            let delta = cur_new - cur_old;
            let scale = cur_new.abs().max(cur_old.abs());
            if delta.abs() <= EPS_REL * scale || delta.abs() < 1e-300 {
                // Column k has numerically converged. Even-order entries are
                // genuine extrapolants; odd-order ones are auxiliary.
                self.best = if k % 2 == 0 { cur_new } else { new_diag[k - 1] };
                self.converged = true;
                self.diag = new_diag;
                return self.best;
            }
            let val = prev_prev + Complex64::ONE / delta;
            prev_prev = cur_old;
            new_diag.push(val);
        }
        self.diag = new_diag;
        // Best estimate: highest even-index entry of the anti-diagonal.
        let last_even = (self.diag.len() - 1) & !1usize;
        self.best = self.diag[last_even];
        self.best
    }

    /// `true` once the table has numerically converged (further input ignored).
    pub fn has_converged(&self) -> bool {
        self.converged
    }

    /// Number of partial sums consumed.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` before any partial sum has been fed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Most recent accelerated estimate ([`Complex64::ZERO`] before any input).
    pub fn estimate(&self) -> Complex64 {
        self.best
    }
}

/// Streaming ε-algorithm over real partial sums (thin wrapper over the complex
/// implementation; the recursion is identical).
#[derive(Clone, Debug, Default)]
pub struct EpsilonAccelerator {
    inner: EpsilonAcceleratorC,
}

impl EpsilonAccelerator {
    /// New empty accelerator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next partial sum; returns the accelerated estimate.
    pub fn push(&mut self, s: f64) -> f64 {
        self.inner.push(Complex64::from_real(s)).re
    }

    /// Number of partial sums consumed.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` before any partial sum has been fed.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Most recent accelerated estimate.
    pub fn estimate(&self) -> f64 {
        self.inner.estimate().re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ε-algorithm is exact for geometric series after a handful of terms.
    #[test]
    fn geometric_series_is_summed_exactly() {
        for &r in &[0.5f64, -0.7, 0.95, -0.99] {
            let limit = 1.0 / (1.0 - r);
            let mut acc = EpsilonAccelerator::new();
            let mut partial = 0.0;
            let mut term = 1.0;
            let mut est = 0.0;
            for _ in 0..8 {
                partial += term;
                term *= r;
                est = acc.push(partial);
            }
            assert!(
                (est - limit).abs() < 1e-10 * limit.abs(),
                "r={r}: est {est} vs {limit}"
            );
        }
    }

    /// ln 2 = Σ (-1)^{k+1}/k converges painfully slowly; acceleration should
    /// reach ~1e-12 with a few dozen terms (direct summation needs ~10^12).
    #[test]
    fn alternating_harmonic_series() {
        let mut acc = EpsilonAccelerator::new();
        let mut partial = 0.0;
        let mut est = 0.0;
        for k in 1..=40 {
            partial += if k % 2 == 1 { 1.0 } else { -1.0 } / k as f64;
            est = acc.push(partial);
        }
        assert!(
            (est - std::f64::consts::LN_2).abs() < 1e-12,
            "est {est} vs ln2"
        );
    }

    /// π/4 = Σ (-1)^k/(2k+1) (Leibniz) — another classical stress test.
    #[test]
    fn leibniz_series() {
        let mut acc = EpsilonAccelerator::new();
        let mut partial = 0.0;
        let mut est = 0.0;
        for k in 0..40 {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            partial += sign / (2 * k + 1) as f64;
            est = acc.push(partial);
        }
        assert!((est - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    /// Complex geometric series with complex ratio.
    #[test]
    fn complex_geometric() {
        let r = Complex64::new(0.4, 0.5);
        let limit = Complex64::ONE / (Complex64::ONE - r);
        let mut acc = EpsilonAcceleratorC::new();
        let mut partial = Complex64::ZERO;
        let mut term = Complex64::ONE;
        let mut est = Complex64::ZERO;
        for _ in 0..10 {
            partial += term;
            term *= r;
            est = acc.push(partial);
        }
        assert!((est - limit).abs() < 1e-10);
    }

    /// A constant sequence must be returned unchanged (and not divide by zero).
    #[test]
    fn constant_sequence_is_stable() {
        let mut acc = EpsilonAccelerator::new();
        let mut est = 0.0;
        for _ in 0..10 {
            est = acc.push(42.0);
        }
        assert!((est - 42.0).abs() < 1e-9);
    }

    /// Convergent but non-alternating: Σ 1/k² = π²/6. The ε-algorithm is less
    /// spectacular on monotone series but must still beat direct partial sums.
    #[test]
    fn basel_series_improved() {
        let truth = std::f64::consts::PI * std::f64::consts::PI / 6.0;
        let mut acc = EpsilonAccelerator::new();
        let mut partial = 0.0;
        let mut est = 0.0;
        for k in 1..=60 {
            partial += 1.0 / ((k * k) as f64);
            est = acc.push(partial);
        }
        let direct_err = (partial - truth).abs();
        let accel_err = (est - truth).abs();
        assert!(
            accel_err < direct_err / 3.0,
            "acceleration too weak: {accel_err} vs direct {direct_err}"
        );
    }
}
