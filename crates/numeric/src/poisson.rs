//! Poisson probability weights in the style of Fox & Glynn.
//!
//! Every randomization (uniformization) solver needs the weights
//! `Po_λ(n) = e^{-λ} λ^n / n!` over a window `[L, R]` that captures at least
//! `1 − δ` of the probability mass, for `λ = Λt` that can reach `~10⁷`. Naive
//! evaluation overflows/underflows; the classic remedy (Fox & Glynn, CACM 1988)
//! anchors the recursion at the mode and truncates both tails with certified
//! geometric bounds, which is what [`PoissonWeights`] implements.
//!
//! Beyond the weights themselves the solvers need two derived quantities:
//!
//! * `P[N ≥ n]` (survival), used by the `MRR` accumulation in standard
//!   randomization, and
//! * `E[(N − k + 1)⁺]` (expected excess), used by the regenerative
//!   randomization truncation bound (see `regenr-core`).
//!
//! Both are precomputed as compensated suffix sums.

use crate::kahan::KahanSum;
use crate::special::ln_factorial;

/// Stable point evaluation of the Poisson pmf via logarithms.
///
/// Accuracy is limited (~1e-13 relative) by `ln Γ`; use [`PoissonWeights`] when
/// a consistent family of weights is needed.
pub fn poisson_pmf(lambda: f64, n: u64) -> f64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return if n == 0 { 1.0 } else { 0.0 };
    }
    (-lambda + n as f64 * lambda.ln() - ln_factorial(n)).exp()
}

/// `P[N ≥ k]` for `N ~ Poisson(λ)` by direct summation of the dominant side.
///
/// Intended for tests and small-to-moderate `λ`; solvers use the precomputed
/// suffix sums in [`PoissonWeights`].
pub fn poisson_cdf_complement(lambda: f64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    // Sum the smaller side for accuracy.
    if (k as f64) <= lambda {
        // Left side P[N < k] is the smaller... not necessarily; just sum left side.
        let mut acc = KahanSum::new();
        let mut p = poisson_pmf(lambda, 0);
        for n in 0..k {
            if n > 0 {
                p *= lambda / n as f64;
            }
            acc.add(p);
        }
        (1.0 - acc.value()).max(0.0)
    } else {
        let mut acc = KahanSum::new();
        let mut p = poisson_pmf(lambda, k);
        let mut n = k;
        loop {
            acc.add(p);
            n += 1;
            p *= lambda / n as f64;
            if p < 1e-30 * acc.value().max(1e-300) && n > (lambda as u64) + k {
                break;
            }
        }
        acc.value().min(1.0)
    }
}

/// Poisson weights over a certified window `[left, right]`.
///
/// Guarantees `Σ_{n∉[left,right]} Po_λ(n) ≤ δ`, split between the two tails.
/// Weights are stored *unnormalized* (true pmf values up to roundoff); the
/// captured mass is available as [`PoissonWeights::total`].
#[derive(Clone, Debug)]
pub struct PoissonWeights {
    /// The Poisson parameter `λ = Λt`.
    pub lambda: f64,
    /// First retained index `L`.
    pub left: u64,
    /// Last retained index `R`.
    pub right: u64,
    /// `weights[i] = Po_λ(left + i)`.
    pub weights: Vec<f64>,
    /// Raw captured mass `Σ_{n=L}^{R} Po_λ(n)` before normalization
    /// (diagnostic; the stored `weights` are normalized to sum to 1).
    pub total: f64,
    /// Certified bound on the discarded left-tail mass.
    pub left_tail_bound: f64,
    /// Certified bound on the discarded right-tail mass.
    pub right_tail_bound: f64,
    /// `suffix[i] = Σ_{j≥i} weights[j]` (within the window).
    suffix: Vec<f64>,
    /// `excess[i] = Σ_{j≥i} suffix[j]` (within the window), i.e. the window part
    /// of `E[(N − (left+i) + 1)⁺]`.
    excess: Vec<f64>,
}

impl PoissonWeights {
    /// Computes weights covering at least `1 − δ` of the mass of `Poisson(λ)`.
    ///
    /// # Panics
    /// If `λ < 0`, `δ ≤ 0`, or `δ ≥ 1`.
    pub fn new(lambda: f64, delta: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
        if lambda == 0.0 {
            return PoissonWeights {
                lambda,
                left: 0,
                right: 0,
                weights: vec![1.0],
                total: 1.0,
                left_tail_bound: 0.0,
                right_tail_bound: 0.0,
                suffix: vec![1.0],
                excess: vec![1.0],
            };
        }
        let mode = lambda.floor() as u64;
        let p_mode = poisson_pmf(lambda, mode);
        debug_assert!(p_mode > 0.0, "mode weight underflowed; λ={lambda}");
        let half = 0.5 * delta;

        // Walk down from the mode. Ratio p(n-1)/p(n) = n/λ < 1 below the mode,
        // so once the cumulative remainder bound p(n)·ρ/(1−ρ) with ρ = n/λ drops
        // under δ/2 we may stop.
        let mut down: Vec<f64> = Vec::new();
        let mut left = mode;
        let mut left_bound = 0.0;
        {
            let mut p = p_mode;
            while left > 0 {
                let rho = left as f64 / lambda; // ratio for the next step down
                let remainder = p * rho / (1.0 - rho).max(f64::MIN_POSITIVE);
                if rho < 1.0 && remainder <= half {
                    left_bound = remainder;
                    break;
                }
                p *= rho;
                left -= 1;
                down.push(p);
            }
        }

        // Walk up from the mode. Ratio p(n+1)/p(n) = λ/(n+1) < 1 above the mode.
        let mut up: Vec<f64> = Vec::new();
        let mut right = mode;
        let right_bound;
        {
            let mut p = p_mode;
            loop {
                let r = lambda / (right as f64 + 1.0);
                if r < 1.0 {
                    let remainder = p * r / (1.0 - r);
                    if remainder <= half {
                        right_bound = remainder;
                        break;
                    }
                }
                p *= r;
                right += 1;
                up.push(p);
            }
        }

        let n = down.len() + 1 + up.len();
        let mut weights: Vec<f64> = Vec::with_capacity(n);
        weights.extend(down.iter().rev());
        weights.push(p_mode);
        weights.extend(up.iter());

        // Normalize: the anchor p(mode) inherits the (small) relative error of
        // ln Γ at huge arguments, which is a *common factor* of every weight;
        // dividing by the captured sum removes it. `total` keeps the raw
        // captured-mass estimate for diagnostics.
        let total = KahanSum::sum_slice(&weights);
        let inv = 1.0 / total;
        for w in &mut weights {
            *w *= inv;
        }

        // Compensated suffix sums for survival and excess queries.
        let mut suffix = vec![0.0; n];
        let mut acc = KahanSum::new();
        for i in (0..n).rev() {
            acc.add(weights[i]);
            suffix[i] = acc.value();
        }
        let mut excess = vec![0.0; n];
        let mut acc2 = KahanSum::new();
        for i in (0..n).rev() {
            acc2.add(suffix[i]);
            excess[i] = acc2.value();
        }

        PoissonWeights {
            lambda,
            left,
            right,
            weights,
            total,
            left_tail_bound: left_bound,
            right_tail_bound: right_bound,
            suffix,
            excess,
        }
    }

    /// Number of retained weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the window is empty (never happens for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// `Po_λ(n)`, zero outside the window.
    pub fn pmf(&self, n: u64) -> f64 {
        if n < self.left || n > self.right {
            0.0
        } else {
            self.weights[(n - self.left) as usize]
        }
    }

    /// `P[N ≥ n]`, within the certified tail bounds.
    ///
    /// Below the window this is 1 (up to the discarded left tail); above the
    /// window it is bounded by the right-tail remainder.
    pub fn survival(&self, n: u64) -> f64 {
        if n <= self.left {
            1.0
        } else if n > self.right {
            self.right_tail_bound
        } else {
            self.suffix[(n - self.left) as usize] + self.right_tail_bound
        }
    }

    /// Upper bound on `E[(N − k + 1)⁺] = Σ_{j≥k} P[N ≥ j]`.
    ///
    /// Used by the regenerative-randomization truncation criterion. Below the
    /// window the exact value is `λ − k + 1 + E[(k−1−N)⁺] ≤ λ − k + 1 + 1`
    /// (the last term bounded crudely but safely by `1` via the tiny discarded
    /// left tail plus in-window contribution); above the window it falls back
    /// to a geometric bound on the discarded tail.
    pub fn expected_excess(&self, k: u64) -> f64 {
        if k > self.right {
            // Σ_{j≥k} P[N≥j] ≤ Σ_{j≥k} right_tail_bound decays geometrically;
            // bound by remainder/(1-r) with r the ratio at the window edge.
            let r = self.lambda / (self.right as f64 + 1.0);
            return self.right_tail_bound / (1.0 - r).max(1e-3);
        }
        if k < self.left {
            // Σ_{j≥k} P[N≥j] = (left - k)·~1 + Σ_{j≥left} P[N≥j].
            return (self.left - k) as f64 + self.excess[0] + self.right_excess_bound();
        }
        self.excess[(k - self.left) as usize] + self.right_excess_bound()
    }

    fn right_excess_bound(&self) -> f64 {
        let r = self.lambda / (self.right as f64 + 1.0);
        self.right_tail_bound / (1.0 - r).max(1e-3)
    }

    /// Iterator over `(n, Po_λ(n))` pairs in the window.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .map(move |(i, &w)| (self.left + i as u64, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regenr_numeric_test_sum(xs: &[f64]) -> f64 {
        KahanSum::sum_slice(xs)
    }

    #[test]
    fn pmf_small_lambda_exact() {
        // λ=2: p(0)=e^-2, p(1)=2e^-2, p(2)=2e^-2, p(3)=4/3 e^-2.
        let e2 = (-2.0f64).exp();
        assert!((poisson_pmf(2.0, 0) - e2).abs() < 1e-16);
        assert!((poisson_pmf(2.0, 1) - 2.0 * e2).abs() < 1e-15);
        assert!((poisson_pmf(2.0, 3) - 4.0 / 3.0 * e2).abs() < 1e-15);
    }

    #[test]
    fn weights_cover_mass() {
        for &lambda in &[0.5, 1.0, 22.0, 500.0, 1e4, 2.2e6] {
            let w = PoissonWeights::new(lambda, 1e-12);
            assert!(
                (w.total - 1.0).abs() <= 1e-6,
                "λ={lambda}: captured {}",
                w.total
            );
            let s = regenr_numeric_test_sum(&w.weights);
            assert!((s - 1.0).abs() < 1e-12, "normalized sum {s}");
            assert!(w.left_tail_bound <= 5e-13);
            assert!(w.right_tail_bound <= 5e-13);
        }
    }

    #[test]
    fn weights_match_pointwise_pmf() {
        let lambda = 345.0;
        let w = PoissonWeights::new(lambda, 1e-13);
        for n in (w.left..=w.right).step_by(17) {
            let direct = poisson_pmf(lambda, n);
            let rel = (w.pmf(n) - direct).abs() / direct.max(1e-300);
            assert!(rel < 1e-7, "n={n}: {} vs {direct}", w.pmf(n));
        }
    }

    #[test]
    fn survival_is_monotone_and_correct() {
        let lambda = 40.0;
        let w = PoissonWeights::new(lambda, 1e-13);
        let mut prev = 1.0;
        for n in 0..(w.right + 5) {
            let s = w.survival(n);
            assert!(s <= prev + 1e-15, "survival must be non-increasing");
            prev = s;
        }
        // Compare against direct computation at a few points.
        for &n in &[10u64, 30, 40, 50, 70] {
            let direct = poisson_cdf_complement(lambda, n);
            assert!(
                (w.survival(n) - direct).abs() < 1e-10,
                "n={n}: {} vs {direct}",
                w.survival(n)
            );
        }
    }

    #[test]
    fn excess_identity() {
        // E[(N-k+1)^+] = Σ_{j>=k} P[N>=j]; check against brute force at λ=15.
        let lambda = 15.0;
        let w = PoissonWeights::new(lambda, 1e-14);
        for &k in &[0u64, 5, 14, 15, 16, 30, 50] {
            let mut brute = 0.0;
            for n in k..200 {
                brute += (n - k + 1) as f64 * poisson_pmf(lambda, n);
            }
            let est = w.expected_excess(k);
            assert!(
                est + 1e-9 >= brute && est <= brute + (lambda - k as f64).abs().max(2.0) + 1e-6,
                "k={k}: est {est} brute {brute}"
            );
        }
    }

    #[test]
    fn zero_lambda_degenerate() {
        let w = PoissonWeights::new(0.0, 1e-12);
        assert_eq!(w.pmf(0), 1.0);
        assert_eq!(w.survival(1), 0.0);
        assert_eq!(w.total, 1.0);
    }

    #[test]
    fn huge_lambda_window_is_sane() {
        let lambda = 4.4e6;
        let w = PoissonWeights::new(lambda, 1e-12);
        // Window should be O(√λ · √log(1/δ)) wide, i.e. tens of thousands.
        assert!(w.len() < 200_000, "window unexpectedly wide: {}", w.len());
        assert!((w.left as f64) < lambda && (w.right as f64) > lambda);
        assert!(w.total > 1.0 - 1e-11);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_delta() {
        PoissonWeights::new(1.0, 0.0);
    }
}
