//! Numerical substrate for the `regenr` workspace.
//!
//! Everything here is implemented from scratch (no external numerics crates):
//!
//! * [`Complex64`] — double-precision complex arithmetic used by the Laplace
//!   transform evaluation and inversion machinery,
//! * [`kahan`] — compensated (Neumaier) summation for long, cancellation-prone sums,
//! * [`poisson`] — Fox–Glynn-style computation of Poisson probability weights with
//!   guaranteed tail coverage, used by every randomization-based solver,
//! * [`epsilon`] — Wynn's ε-algorithm for convergence acceleration of (complex)
//!   series, used by Durbin/Crump Laplace inversion,
//! * [`special`] — `ln Γ` and related special functions.

pub mod complex;
pub mod epsilon;
pub mod kahan;
pub mod poisson;
pub mod special;

pub use complex::Complex64;
pub use epsilon::{EpsilonAccelerator, EpsilonAcceleratorC};
pub use kahan::{KahanSum, KahanSumC};
pub use poisson::{poisson_cdf_complement, poisson_pmf, PoissonWeights};
pub use special::ln_gamma;

/// Relative difference `|a-b| / max(|a|, |b|, floor)` with an absolute floor to
/// avoid blow-ups near zero. Used pervasively by tests.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale
}

/// `true` when `a` and `b` agree to absolute tolerance `atol` *or* relative
/// tolerance `rtol` (whichever is looser), the standard mixed criterion.
pub fn approx_eq(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    let d = (a - b).abs();
    d <= atol || d <= rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!((rel_diff(1.0, 1.1) - 0.1 / 1.1).abs() < 1e-15);
        assert!(rel_diff(0.0, 0.0) == 0.0);
    }

    #[test]
    fn approx_eq_mixed() {
        assert!(approx_eq(1e-30, 0.0, 1e-20, 1e-12));
        assert!(approx_eq(1e10, 1e10 * (1.0 + 1e-13), 0.0, 1e-12));
        assert!(!approx_eq(1.0, 2.0, 1e-3, 1e-3));
    }
}
