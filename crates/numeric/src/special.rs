//! Special functions: `ln Γ` via the Lanczos approximation and exact small
//! factorials. Accuracy ~1e-14 relative over the positive reals, which is ample
//! for Poisson weight computation (the weights themselves are normalized).

/// `ln(n!)` for integer `n`, exact for `n < 2` and via [`ln_gamma`] otherwise.
pub fn ln_factorial(n: u64) -> f64 {
    // Table of exact values for small n keeps Poisson recursions bit-stable.
    // (The entries are maximally precise decimal literals; the rounding to
    // f64 is intentional, and TABLE[2] really is ln 2.)
    #[allow(clippy::excessive_precision, clippy::approx_constant)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693147180559945309417232121458,
        1.791759469228055000812477358381,
        3.178053830347945619646941601297,
        4.787491742782045994247700934523,
        6.579251212010100995060178292904,
        8.525161361065414300165531036347,
        10.60460290274525022841722740072,
        12.80182748008146961120771787457,
        15.10441257307551529522570932925,
        17.50230784587388583928765290722,
        19.98721449566188614951736238706,
        22.55216385312342288557084982862,
        25.19122118273868150009343469352,
        27.89927138384089156608943926367,
        30.67186010608067280375836774950,
        33.50507345013688888400790236738,
        36.39544520803305357621562496268,
        39.33988418719949403622465239457,
        42.33561646075348502965987597071,
    ];
    if n <= 20 {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7), quoted at published precision.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    let t = x + G + 0.5;
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_small_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - f.ln()).abs() < 1e-12,
                "Γ({}) mismatch: {lg} vs {}",
                n + 1,
                f.ln()
            );
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = √π.
        let lg = ln_gamma(0.5);
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-13);
    }

    #[test]
    fn ln_factorial_consistency() {
        for n in 0..200u64 {
            let direct = ln_factorial(n);
            let via_gamma = ln_gamma(n as f64 + 1.0);
            assert!(
                (direct - via_gamma).abs() <= 1e-11 * direct.abs().max(1.0),
                "n={n}: {direct} vs {via_gamma}"
            );
        }
    }

    #[test]
    fn stirling_regime() {
        // Compare with Stirling series at large argument.
        let x: f64 = 1.0e6;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() / stirling.abs() < 1e-14);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
