//! Minimal double-precision complex arithmetic.
//!
//! Only the operations needed by Laplace-transform evaluation and inversion are
//! provided: field operations, conjugation, modulus, exponential, and a
//! numerically robust division (Smith's algorithm) that avoids overflow for
//! well-scaled operands.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` in double precision.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Embeds a real number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z = e^re (cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Multiplicative inverse `1/z` (Smith's algorithm).
    #[inline]
    pub fn inv(self) -> Self {
        Complex64::ONE / self
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Division via Smith's algorithm: scale by the dominant component of the
/// denominator to avoid intermediate overflow/underflow.
impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, o: Complex64) -> Complex64 {
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: f64) -> Complex64 {
        Complex64::new(self.re + o, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: f64) -> Complex64 {
        Complex64::new(self.re - o, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: f64) -> Complex64 {
        self.scale(o)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, o: f64) -> Complex64 {
        Complex64::new(self.re / o, self.im / o)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, o: Complex64) -> Complex64 {
        o + self
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self - o.re, -o.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, o: Complex64) -> Complex64 {
        o.scale(self)
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn div(self, o: Complex64) -> Complex64 {
        Complex64::from_real(self) / o
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Complex64) {
        *self = *self + o;
    }
}
impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Complex64) {
        *self = *self - o;
    }
}
impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Complex64) {
        *self = *self * o;
    }
}
impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, o: Complex64) {
        *self = *self / o;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * b, Complex64::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(close((a / b) * b, a, 1e-15));
        assert!(close(a * a.inv(), Complex64::ONE, 1e-15));
    }

    #[test]
    fn division_is_robust_to_scale() {
        let a = Complex64::new(1e300, 1e300);
        let b = Complex64::new(1e300, -1e300);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q, Complex64::new(0.0, 1.0), 1e-14));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), Complex64::new(-1.0, 0.0), 1e-14));
        let z = Complex64::new(1.0, 1.0);
        let e = z.exp();
        assert!((e.abs() - std::f64::consts::E).abs() < 1e-12);
        assert!((e.arg() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let z = Complex64::new(0.9, 0.21);
        let mut acc = Complex64::ONE;
        for n in 0..20u32 {
            assert!(close(z.powi(n), acc, 1e-12 * acc.abs().max(1.0)));
            acc *= z;
        }
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert!(close(z * z.conj(), Complex64::from_real(25.0), 1e-14));
    }
}
