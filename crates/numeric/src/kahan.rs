//! Compensated summation.
//!
//! Randomization-based solvers accumulate hundreds of thousands to millions of
//! non-negative terms spanning many orders of magnitude; the Laplace transform
//! evaluation adds signed complex terms with cancellation. Both benefit from
//! Neumaier's improved Kahan–Babuška summation, which carries a running
//! compensation for the low-order bits lost at each addition.

use crate::Complex64;

/// Neumaier compensated accumulator for `f64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// A fresh accumulator holding 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Sums a slice with compensation.
    pub fn sum_slice(xs: &[f64]) -> f64 {
        let mut k = KahanSum::new();
        for &x in xs {
            k.add(x);
        }
        k.value()
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Neumaier compensated accumulator for [`Complex64`] (component-wise).
#[derive(Clone, Copy, Debug, Default)]
pub struct KahanSumC {
    re: KahanSum,
    im: KahanSum,
}

impl KahanSumC {
    /// A fresh accumulator holding 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one complex term.
    #[inline]
    pub fn add(&mut self, z: Complex64) {
        self.re.add(z.re);
        self.im.add(z.im);
    }

    /// Current compensated value.
    #[inline]
    pub fn value(&self) -> Complex64 {
        Complex64::new(self.re.value(), self.im.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancellation() {
        // Classic Neumaier stress case: naive summation returns 0, true sum is 2.
        let xs = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(KahanSum::sum_slice(&xs), 2.0);
    }

    #[test]
    fn many_small_terms() {
        let n = 10_000_000usize;
        let mut k = KahanSum::new();
        for _ in 0..n {
            k.add(0.1);
        }
        let exact = 0.1 * n as f64;
        assert!((k.value() - exact).abs() / exact < 1e-15);
    }

    #[test]
    fn complex_accumulator() {
        let mut k = KahanSumC::new();
        for j in 0..1000 {
            let ang = j as f64 * 0.01;
            k.add(Complex64::new(ang.cos(), ang.sin()));
        }
        // Geometric check: sum of unit vectors has modulus <= 1000.
        let v = k.value();
        assert!(v.abs() <= 1000.0);
        // Compare against naive in higher precision is unavailable; instead check
        // determinism and closure.
        assert!(v.is_finite());
    }

    #[test]
    fn extend_trait() {
        let mut k = KahanSum::new();
        k.extend((0..100).map(|i| i as f64));
        assert_eq!(k.value(), 4950.0);
    }
}
