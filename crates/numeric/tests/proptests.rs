//! Property-based tests for the numerical substrate.

use proptest::prelude::*;
use regenr_numeric::{
    poisson_cdf_complement, poisson_pmf, Complex64, EpsilonAccelerator, KahanSum, PoissonWeights,
};

proptest! {
    /// Complex field axioms on random operands (up to roundoff).
    #[test]
    fn complex_field_axioms(
        ar in -1e3f64..1e3, ai in -1e3f64..1e3,
        br in -1e3f64..1e3, bi in -1e3f64..1e3,
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        // Commutativity.
        prop_assert!(((a + b) - (b + a)).abs() == 0.0);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9 * (a.abs() * b.abs()).max(1.0));
        // Multiplicative inverse.
        if b.abs() > 1e-6 {
            let q = (a / b) * b;
            prop_assert!((q - a).abs() < 1e-9 * a.abs().max(1.0), "{q:?} vs {a:?}");
        }
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8 * (a.abs()*b.abs()).max(1.0));
    }

    /// Kahan summation beats (or ties) naive summation against a shuffled
    /// pairing of large and tiny terms whose exact sum is known.
    #[test]
    fn kahan_is_exact_on_cancelling_pairs(xs in prop::collection::vec(1e-8f64..1e8, 1..200)) {
        // Σ (x + 1) − Σ x = len exactly.
        let mut k = KahanSum::new();
        for &x in &xs {
            k.add(x + 1.0);
        }
        for &x in &xs {
            k.add(-x);
        }
        let exact = xs.len() as f64;
        prop_assert!((k.value() - exact).abs() < 1e-6, "{} vs {exact}", k.value());
    }

    /// Poisson weights agree with the log-space pmf and capture ≥ 1−δ mass.
    #[test]
    fn poisson_weights_consistent(lambda in 0.01f64..5e4) {
        let w = PoissonWeights::new(lambda, 1e-10);
        prop_assert!((w.total - 1.0).abs() < 1e-6);
        // Spot-check the mode region against the direct pmf.
        let mode = lambda.floor() as u64;
        let direct = poisson_pmf(lambda, mode);
        let rel = (w.pmf(mode) - direct).abs() / direct;
        prop_assert!(rel < 1e-6, "mode pmf rel err {rel}");
        // Survival at the mode is between the two tail halves.
        let s = w.survival(mode);
        prop_assert!(s > 0.2 && s < 0.8, "survival at mode = {s}");
    }

    /// survival(k) is the complement of the cdf (checked at moderate λ).
    #[test]
    fn poisson_survival_matches_direct(lambda in 0.5f64..200.0, frac in 0.0f64..2.0) {
        let w = PoissonWeights::new(lambda, 1e-13);
        let k = (lambda * frac) as u64;
        let direct = poisson_cdf_complement(lambda, k);
        prop_assert!((w.survival(k) - direct).abs() < 1e-9,
            "k={k}: {} vs {direct}", w.survival(k));
    }

    /// The ε-algorithm sums random geometric series essentially exactly from
    /// ~8 partial sums.
    #[test]
    fn epsilon_sums_random_geometric(ratio in -0.95f64..0.95, scale in 0.1f64..10.0) {
        let limit = scale / (1.0 - ratio);
        let mut acc = EpsilonAccelerator::new();
        let mut partial = 0.0;
        let mut term = scale;
        let mut est = 0.0;
        for _ in 0..10 {
            partial += term;
            term *= ratio;
            est = acc.push(partial);
        }
        prop_assert!((est - limit).abs() < 1e-8 * limit.abs().max(1.0),
            "ratio={ratio}: {est} vs {limit}");
    }

    /// Mixtures of two geometric modes are summed exactly by order-4 ε
    /// (rational extrapolation is exact for rank-2 sequences).
    #[test]
    fn epsilon_sums_two_mode_mixtures(
        r1 in -0.9f64..0.9, r2 in -0.9f64..0.9, c1 in 0.1f64..5.0, c2 in 0.1f64..5.0,
    ) {
        let limit = c1 / (1.0 - r1) + c2 / (1.0 - r2);
        let mut acc = EpsilonAccelerator::new();
        let (mut t1, mut t2) = (c1, c2);
        let mut partial = 0.0;
        let mut est = 0.0;
        for _ in 0..16 {
            partial += t1 + t2;
            t1 *= r1;
            t2 *= r2;
            est = acc.push(partial);
        }
        prop_assert!((est - limit).abs() < 1e-6 * limit.abs().max(1.0),
            "{est} vs {limit}");
    }
}
