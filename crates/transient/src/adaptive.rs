//! Adaptive (active-set) randomization — related-work extension.
//!
//! Van Moorsel & Sanders' adaptive uniformization lowers the randomization
//! *rate* while the process can only occupy a subset of states. Adapting the
//! rate changes the jump-count distribution to a general birth process, whose
//! weights are expensive to control rigorously; as documented in DESIGN.md we
//! implement the closely related **active-set** optimization instead: the
//! rate stays `Λ`, but each step's product only touches rows that are
//! reachable from the current support — the result is *exactly* SR's (states
//! outside the frontier carry zero probability), while early steps cost
//! `O(active nnz)` instead of `O(total nnz)`. For small `t` (where the
//! Poisson window ends before the frontier saturates) this captures the same
//! effect the paper attributes to adaptive uniformization: cheaper small-`t`
//! transients.

use crate::{MeasureKind, Solution};
use regenr_ctmc::{Ctmc, Uniformized};
use regenr_numeric::{KahanSum, PoissonWeights};
use regenr_sparse::Workspace;
use std::sync::Arc;

/// Options for [`AdaptiveSolver`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveOptions {
    /// Total absolute error budget `ε`.
    pub epsilon: f64,
    /// Uniformization safety factor.
    pub theta: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            epsilon: 1e-12,
            theta: 0.0,
        }
    }
}

/// Active-set randomization solver.
pub struct AdaptiveSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    opts: AdaptiveOptions,
}

/// Diagnostics from an adaptive run.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveReport {
    /// The solution proper.
    pub solution: Solution,
    /// Number of states active at the final step.
    pub final_active: usize,
    /// Sum over steps of active-row nnz actually touched (work proxy;
    /// SR's equivalent is `steps × nnz`).
    pub touched_nnz: usize,
}

impl<'a> AdaptiveSolver<'a> {
    /// Uniformizes the chain and prepares the solver.
    pub fn new(ctmc: &'a Ctmc, opts: AdaptiveOptions) -> Self {
        let unif = Arc::new(Uniformized::new(ctmc, opts.theta));
        Self::with_uniformized(ctmc, unif, opts)
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.theta`.
    pub fn with_uniformized(ctmc: &'a Ctmc, unif: Arc<Uniformized>, opts: AdaptiveOptions) -> Self {
        unif.assert_built_from(ctmc);
        AdaptiveSolver { ctmc, unif, opts }
    }

    /// Computes the measure; numerically identical to SR.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Solution {
        self.solve_report(measure, t).solution
    }

    /// Like [`AdaptiveSolver::solve`] with work accounting.
    pub fn solve_report(&self, measure: MeasureKind, t: f64) -> AdaptiveReport {
        self.solve_report_with(measure, t, &mut Workspace::new())
    }

    /// Like [`AdaptiveSolver::solve_report`] with caller-owned scratch for
    /// the distribution vectors (the frontier bookkeeping is per-solve).
    pub fn solve_report_with(
        &self,
        measure: MeasureKind,
        t: f64,
        ws: &mut Workspace,
    ) -> AdaptiveReport {
        assert!(t >= 0.0);
        let r_max = self.ctmc.max_reward();
        let n = self.ctmc.n_states();
        if t == 0.0 || r_max == 0.0 {
            return AdaptiveReport {
                solution: Solution {
                    value: self.ctmc.reward_dot(self.ctmc.initial()),
                    steps: 0,
                    error_bound: 0.0,
                },
                final_active: 0,
                touched_nnz: 0,
            };
        }
        let lambda_t = self.unif.lambda * t;
        let delta = (self.opts.epsilon / r_max).min(0.5);
        let w = PoissonWeights::new(lambda_t, delta);

        // Frontier bookkeeping: `active` lists states that can carry mass at
        // the current step; each step extends it with successors of newly
        // activated states. Uses the transposed matrix rows = predecessor
        // lists, so we instead track activation via the forward matrix.
        let p = &self.unif.p;
        let p_t = &self.unif.p_t;
        let mut is_active = vec![false; n];
        let mut active: Vec<u32> = Vec::new();
        for (i, &a) in self.ctmc.initial().iter().enumerate() {
            if a > 0.0 {
                is_active[i] = true;
                active.push(i as u32);
            }
        }

        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(n);
        let mut acc = KahanSum::new();
        let mut touched = 0usize;
        for step in 0..=w.right {
            let rr: f64 = active
                .iter()
                .map(|&i| pi[i as usize] * self.ctmc.rewards()[i as usize])
                .sum();
            match measure {
                MeasureKind::Trr => {
                    let wn = w.pmf(step);
                    if wn > 0.0 {
                        acc.add(wn * rr);
                    }
                }
                MeasureKind::Mrr => acc.add(w.survival(step + 1) * rr),
            }
            if step == w.right {
                break;
            }
            // Expand the frontier: successors of active states become active.
            let mut newly: Vec<u32> = Vec::new();
            for &i in &active {
                for (j, _) in p.row(i as usize) {
                    if !is_active[j] {
                        is_active[j] = true;
                        newly.push(j as u32);
                    }
                }
            }
            active.extend(newly);
            // Gather-product restricted to active rows of Pᵀ.
            for &i in &active {
                let i = i as usize;
                let mut s = 0.0;
                let row = p_t.row_ptr();
                for k in row[i]..row[i + 1] {
                    s += p_t.values()[k] * pi[p_t.col_idx()[k] as usize];
                }
                touched += row[i + 1] - row[i];
                next[i] = s;
            }
            for &i in &active {
                pi[i as usize] = next[i as usize];
            }
        }
        ws.give(pi);
        ws.give(next);
        let value = match measure {
            MeasureKind::Trr => acc.value(),
            MeasureKind::Mrr => acc.value() / lambda_t,
        };
        AdaptiveReport {
            solution: Solution {
                value,
                steps: w.right as usize,
                error_bound: self.opts.epsilon,
            },
            final_active: active.len(),
            touched_nnz: touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sr::{SrOptions, SrSolver};

    /// A long birth chain where small t keeps the frontier small.
    fn birth_chain(n: usize) -> Ctmc {
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0));
            rates.push((i + 1, i, 0.5));
        }
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let rewards: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        Ctmc::from_rates(n, &rates, init, rewards).unwrap()
    }

    #[test]
    fn matches_sr_exactly() {
        let c = birth_chain(200);
        let ad = AdaptiveSolver::new(&c, AdaptiveOptions::default());
        let sr = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.5, 3.0, 30.0] {
            for m in [MeasureKind::Trr, MeasureKind::Mrr] {
                let a = ad.solve(m, t).value;
                let b = sr.solve(m, t).value;
                assert!((a - b).abs() < 1e-12, "t={t} {m:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn frontier_stays_small_for_small_t() {
        let c = birth_chain(2000);
        let ad = AdaptiveSolver::new(&c, AdaptiveOptions::default());
        let rep = ad.solve_report(MeasureKind::Trr, 1.0);
        // With Λ=1.5 and t=1, the Poisson window ends around n≈20, so at most
        // ~21 chain positions can be active.
        assert!(
            rep.final_active < 60,
            "frontier should stay local: {}",
            rep.final_active
        );
        // Work proxy far below SR's steps × nnz.
        let nnz = c.generator().nnz();
        assert!(rep.touched_nnz < rep.solution.steps * nnz / 10);
    }

    #[test]
    fn frontier_saturates_for_large_t() {
        let c = birth_chain(50);
        let ad = AdaptiveSolver::new(&c, AdaptiveOptions::default());
        let rep = ad.solve_report(MeasureKind::Trr, 1000.0);
        assert_eq!(rep.final_active, 50);
    }
}
