//! Dense adaptive Runge–Kutta oracle for the Kolmogorov forward equations.
//!
//! `π'(τ) = π(τ)·Q`, integrated with the Cash–Karp embedded RK4(5) pair and
//! PI step-size control. This is deliberately a *different numerical family*
//! from randomization, so agreement between the two is strong evidence of
//! correctness — it is used as a cross-validation oracle in tests and is only
//! suitable for small, non-stiff-to-moderately-stiff models (dense `O(n²)`
//! per stage).
//!
//! `MRR` is computed by augmenting the system with the running reward integral
//! `I'(τ) = r·π(τ)`.

use crate::{MeasureKind, Solution};
use regenr_ctmc::Ctmc;
use regenr_sparse::Workspace;

/// Options for [`OdeSolver`].
#[derive(Clone, Copy, Debug)]
pub struct OdeOptions {
    /// Local error tolerance per step (absolute, per component).
    pub tol: f64,
    /// Hard cap on accepted+rejected steps.
    pub max_steps: usize,
}

impl Default for OdeOptions {
    fn default() -> Self {
        OdeOptions {
            tol: 1e-12,
            max_steps: 50_000_000,
        }
    }
}

/// Dense RK4(5) transient solver (test oracle).
pub struct OdeSolver<'a> {
    ctmc: &'a Ctmc,
    q_dense: Vec<Vec<f64>>,
    opts: OdeOptions,
}

impl<'a> OdeSolver<'a> {
    /// Densifies the generator; intended for models with ≲ 1000 states.
    pub fn new(ctmc: &'a Ctmc, opts: OdeOptions) -> Self {
        OdeSolver {
            ctmc,
            q_dense: ctmc.generator().to_dense(),
            opts,
        }
    }

    /// Computes `TRR(t)` or `MRR(t)`.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Solution {
        self.solve_with(measure, t, &mut Workspace::new())
    }

    /// Like [`OdeSolver::solve`] with caller-owned scratch: the stage
    /// vectors are reused across repeated solves.
    pub fn solve_with(&self, measure: MeasureKind, t: f64, ws: &mut Workspace) -> Solution {
        assert!(t >= 0.0);
        let pi = self.integrate(t, ws);
        let n = self.ctmc.n_states();
        let value = match measure {
            MeasureKind::Trr => self.ctmc.reward_dot(&pi[..n]),
            MeasureKind::Mrr => {
                if t == 0.0 {
                    self.ctmc.reward_dot(&pi[..n])
                } else {
                    pi[n] / t
                }
            }
        };
        ws.give(pi);
        Solution {
            value,
            steps: 0,
            error_bound: f64::NAN,
        }
    }

    /// The transient distribution `π(t)`.
    pub fn transient_distribution(&self, t: f64) -> Vec<f64> {
        let mut y = self.integrate(t, &mut Workspace::new());
        y.truncate(self.ctmc.n_states());
        y
    }

    /// Integrates the augmented system `[π, ∫ r·π]` from 0 to `t`. The
    /// returned vector comes from `ws`; callers should give it back when
    /// done with it.
    fn integrate(&self, t: f64, ws: &mut Workspace) -> Vec<f64> {
        let n = self.ctmc.n_states();
        let mut y = ws.take_copied(self.ctmc.initial());
        y.push(0.0); // reward integral
        if t == 0.0 {
            return y;
        }

        // Cash–Karp tableau.
        const A: [[f64; 5]; 5] = [
            [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
            [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
            [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
            [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
            [
                1631.0 / 55296.0,
                175.0 / 512.0,
                575.0 / 13824.0,
                44275.0 / 110592.0,
                253.0 / 4096.0,
            ],
        ];
        const B5: [f64; 6] = [
            37.0 / 378.0,
            0.0,
            250.0 / 621.0,
            125.0 / 594.0,
            0.0,
            512.0 / 1771.0,
        ];
        const B4: [f64; 6] = [
            2825.0 / 27648.0,
            0.0,
            18575.0 / 48384.0,
            13525.0 / 55296.0,
            277.0 / 14336.0,
            1.0 / 4.0,
        ];

        let deriv = |y: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.resize(n + 1, 0.0);
            // π' = πQ  (row vector times matrix).
            for (i, &yi) in y.iter().enumerate().take(n) {
                if yi == 0.0 {
                    continue;
                }
                for (j, qij) in self.q_dense[i].iter().enumerate() {
                    if *qij != 0.0 {
                        out[j] += yi * qij;
                    }
                }
            }
            out[n] = self.ctmc.reward_dot(&y[..n]);
        };

        // Initial step heuristic: a fraction of the fastest time constant.
        let max_rate = (0..n).map(|i| self.ctmc.exit_rate(i)).fold(0.0, f64::max);
        let mut h = if max_rate > 0.0 { 0.1 / max_rate } else { t };
        h = h.min(t);
        let mut tau = 0.0f64;
        let mut k: Vec<Vec<f64>> = (0..6).map(|_| ws.take_zeroed(n + 1)).collect();
        let mut ytmp = ws.take_zeroed(n + 1);
        let mut steps = 0usize;

        while tau < t {
            if tau + h > t {
                h = t - tau;
            }
            deriv(&y, &mut k[0]);
            for stage in 1..6 {
                for (i, v) in ytmp.iter_mut().enumerate() {
                    let mut acc = y[i];
                    for (s, ks) in k.iter().enumerate().take(stage) {
                        let a = A[stage - 1][s];
                        if a != 0.0 {
                            acc += h * a * ks[i];
                        }
                    }
                    *v = acc;
                }
                let (head, tail) = k.split_at_mut(stage);
                let _ = head;
                deriv(&ytmp, &mut tail[0]);
            }
            // 5th-order solution and 4th-order error estimate.
            let mut err: f64 = 0.0;
            for (i, slot) in ytmp.iter_mut().enumerate() {
                let mut y5 = y[i];
                let mut y4 = y[i];
                for (s, ks) in k.iter().enumerate() {
                    y5 += h * B5[s] * ks[i];
                    y4 += h * B4[s] * ks[i];
                }
                err = err.max((y5 - y4).abs());
                *slot = y5;
            }
            steps += 1;
            assert!(
                steps <= self.opts.max_steps,
                "ODE oracle exceeded {} steps (model too stiff for the oracle)",
                self.opts.max_steps
            );
            if err <= self.opts.tol || h <= 1e-15 * t.max(1.0) {
                y.copy_from_slice(&ytmp);
                tau += h;
            }
            // PI controller (classic safety factor 0.9, order-5 exponent).
            let scale = if err > 0.0 {
                0.9 * (self.opts.tol / err).powf(0.2)
            } else {
                5.0
            };
            h *= scale.clamp(0.2, 5.0);
        }
        for stage in k {
            ws.give(stage);
        }
        ws.give(ytmp);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sr::{SrOptions, SrSolver};

    fn three_state() -> Ctmc {
        Ctmc::from_rates(
            3,
            &[
                (0, 1, 0.8),
                (1, 0, 0.4),
                (1, 2, 0.6),
                (2, 0, 1.5),
                (2, 1, 0.2),
            ],
            vec![0.6, 0.4, 0.0],
            vec![2.0, 1.0, 0.0],
        )
        .unwrap()
    }

    #[test]
    fn agrees_with_sr_trr() {
        let c = three_state();
        let ode = OdeSolver::new(&c, OdeOptions::default());
        let sr = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.1, 1.0, 4.0, 20.0] {
            let a = ode.solve(MeasureKind::Trr, t).value;
            let b = sr.solve(MeasureKind::Trr, t).value;
            assert!((a - b).abs() < 1e-9, "t={t}: ode {a} vs sr {b}");
        }
    }

    #[test]
    fn agrees_with_sr_mrr() {
        let c = three_state();
        let ode = OdeSolver::new(&c, OdeOptions::default());
        let sr = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.5, 2.0, 10.0] {
            let a = ode.solve(MeasureKind::Mrr, t).value;
            let b = sr.solve(MeasureKind::Mrr, t).value;
            assert!((a - b).abs() < 1e-8, "t={t}: ode {a} vs sr {b}");
        }
    }

    #[test]
    fn distribution_stays_a_distribution() {
        let c = three_state();
        let ode = OdeSolver::new(&c, OdeOptions::default());
        let d = ode.transient_distribution(7.3);
        let mass: f64 = d.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn exponential_decay_exact() {
        // Pure death 0 -> 1: π_0(t) = e^{-t}.
        let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![1.0, 0.0], vec![1.0, 0.0]).unwrap();
        let ode = OdeSolver::new(&c, OdeOptions::default());
        for &t in &[0.5f64, 2.0, 8.0] {
            let v = ode.solve(MeasureKind::Trr, t).value;
            assert!((v - (-t).exp()).abs() < 1e-10, "t={t}");
        }
    }
}
