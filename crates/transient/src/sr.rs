//! Standard randomization (SR / uniformization), the paper's baseline.
//!
//! With `P = I + Q/Λ` and `π_n = α P^n`,
//!
//! * `TRR(t) = Σ_n Po_{Λt}(n) · r·π_n`,
//! * `MRR(t) = (1/(Λt)) Σ_n P[N(t) ≥ n+1] · r·π_n`
//!   (from `∫₀ᵗ Po_{Λτ}(n) dτ = P[N(t) ≥ n+1]/Λ`),
//!
//! truncated at the Fox–Glynn window `[L, R]` of `Poisson(Λt)` with discarded
//! mass `≤ ε/r_max`, so the absolute error is `≤ ε`. The step count — `R`, the
//! right truncation point — is what Table 2 of the paper reports for SR.
//!
//! Numerical safety: all terms are non-negative (this is randomization's
//! selling point), sums are compensated, and distributions are propagated by
//! gather-style products on `Pᵀ` (parallelized above a size threshold).

use crate::{MeasureKind, Solution};
use regenr_ctmc::{Ctmc, Uniformized};
use regenr_numeric::{KahanSum, PoissonWeights};
use regenr_sparse::{ParallelConfig, Workspace};
use std::sync::Arc;

/// Options for [`SrSolver`].
#[derive(Clone, Copy, Debug)]
pub struct SrOptions {
    /// Total absolute error budget `ε` (the paper uses `10⁻¹²`).
    pub epsilon: f64,
    /// Uniformization safety factor `θ` (`Λ = (1+θ)·max rate`); `0` matches
    /// the paper.
    pub theta: f64,
    /// Parallel SpMV configuration.
    pub parallel: ParallelConfig,
}

impl Default for SrOptions {
    fn default() -> Self {
        SrOptions {
            epsilon: 1e-12,
            theta: 0.0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Standard-randomization solver bound to one chain.
#[derive(Clone, Debug)]
pub struct SrSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    opts: SrOptions,
}

impl<'a> SrSolver<'a> {
    /// Uniformizes the chain and prepares the solver.
    pub fn new(ctmc: &'a Ctmc, opts: SrOptions) -> Self {
        let unif = Arc::new(Uniformized::new(ctmc, opts.theta));
        Self::with_uniformized(ctmc, unif, opts)
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.theta`.
    pub fn with_uniformized(ctmc: &'a Ctmc, unif: Arc<Uniformized>, opts: SrOptions) -> Self {
        assert!(opts.epsilon > 0.0, "epsilon must be positive");
        unif.assert_built_from(ctmc);
        SrSolver { ctmc, unif, opts }
    }

    /// The randomization rate in use.
    pub fn lambda(&self) -> f64 {
        self.unif.lambda
    }

    /// Computes `TRR(t)` or `MRR(t)` with absolute error `≤ ε`.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Solution {
        self.solve_with(measure, t, &mut Workspace::new())
    }

    /// Like [`SrSolver::solve`] with caller-owned scratch: repeated solves
    /// through one [`Workspace`] perform no steady-state vector allocations.
    pub fn solve_with(&self, measure: MeasureKind, t: f64, ws: &mut Workspace) -> Solution {
        assert!(t >= 0.0, "time must be non-negative");
        let r_max = self.ctmc.max_reward();
        if t == 0.0 || r_max == 0.0 {
            return Solution {
                value: self.ctmc.reward_dot(self.ctmc.initial()),
                steps: 0,
                error_bound: 0.0,
            };
        }
        let lambda_t = self.unif.lambda * t;
        // Discarded Poisson mass δ contributes ≤ δ·r_max to either measure.
        let delta = (self.opts.epsilon / r_max).min(0.5);
        let w = PoissonWeights::new(lambda_t, delta);

        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(pi.len());
        let mut acc = KahanSum::new();
        for n in 0..=w.right {
            let rr = self.ctmc.reward_dot(&pi);
            match measure {
                MeasureKind::Trr => {
                    let wn = w.pmf(n);
                    if wn > 0.0 {
                        acc.add(wn * rr);
                    }
                }
                MeasureKind::Mrr => {
                    acc.add(w.survival(n + 1) * rr);
                }
            }
            if n < w.right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        let value = match measure {
            MeasureKind::Trr => acc.value(),
            MeasureKind::Mrr => acc.value() / lambda_t,
        };
        Solution {
            value,
            steps: w.right as usize,
            error_bound: self.opts.epsilon,
        }
    }

    /// Computes the measure at *many* horizons in a single propagation sweep.
    ///
    /// SR propagates the same DTMC sequence `π_0, π_1, …` regardless of `t`;
    /// only the Poisson weights differ. This method steps once up to the
    /// largest right truncation point and accumulates every horizon's
    /// weighted sum on the way — `max(Λtᵢ)` products instead of `Σ Λtᵢ`.
    /// Values are identical to per-`t` [`SrSolver::solve`] up to roundoff.
    pub fn solve_many(&self, measure: MeasureKind, ts: &[f64]) -> Vec<Solution> {
        self.solve_many_with(measure, ts, &mut Workspace::new())
    }

    /// Like [`SrSolver::solve_many`] with caller-owned scratch: the
    /// propagation loop performs zero steady-state heap allocations.
    pub fn solve_many_with(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Vec<Solution> {
        let r_max = self.ctmc.max_reward();
        if ts.is_empty() {
            return Vec::new();
        }
        if r_max == 0.0 || ts.iter().all(|&t| t == 0.0) {
            return ts
                .iter()
                .map(|&t| self.solve_with(measure, t, ws))
                .collect();
        }
        let delta = (self.opts.epsilon / r_max).min(0.5);
        let weights: Vec<Option<PoissonWeights>> = ts
            .iter()
            .map(|&t| {
                assert!(t >= 0.0, "time must be non-negative");
                (t > 0.0).then(|| PoissonWeights::new(self.unif.lambda * t, delta))
            })
            .collect();
        let max_right = weights
            .iter()
            .flatten()
            .map(|w| w.right)
            .max()
            .expect("at least one positive horizon");

        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(pi.len());
        let mut accs = vec![KahanSum::new(); ts.len()];
        for n in 0..=max_right {
            let rr = self.ctmc.reward_dot(&pi);
            for (acc, w) in accs.iter_mut().zip(&weights) {
                let Some(w) = w else { continue };
                if n > w.right {
                    continue;
                }
                match measure {
                    MeasureKind::Trr => {
                        let wn = w.pmf(n);
                        if wn > 0.0 {
                            acc.add(wn * rr);
                        }
                    }
                    MeasureKind::Mrr => acc.add(w.survival(n + 1) * rr),
                }
            }
            if n < max_right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        accs.iter()
            .zip(&weights)
            .zip(ts)
            .map(|((acc, w), &t)| match w {
                None => Solution {
                    value: self.ctmc.reward_dot(self.ctmc.initial()),
                    steps: 0,
                    error_bound: 0.0,
                },
                Some(w) => Solution {
                    value: match measure {
                        MeasureKind::Trr => acc.value(),
                        MeasureKind::Mrr => acc.value() / (self.unif.lambda * t),
                    },
                    steps: w.right as usize,
                    error_bound: self.opts.epsilon,
                },
            })
            .collect()
    }

    /// The transient state distribution `π(t)` (used by tests and examples).
    pub fn transient_distribution(&self, t: f64) -> Vec<f64> {
        self.transient_distribution_with(t, &mut Workspace::new())
    }

    /// Like [`SrSolver::transient_distribution`] with caller-owned scratch.
    pub fn transient_distribution_with(&self, t: f64, ws: &mut Workspace) -> Vec<f64> {
        assert!(t >= 0.0);
        let n_states = self.ctmc.n_states();
        if t == 0.0 {
            return self.ctmc.initial().to_vec();
        }
        let lambda_t = self.unif.lambda * t;
        let w = PoissonWeights::new(lambda_t, self.opts.epsilon.min(1e-10));
        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(n_states);
        let mut out = vec![KahanSum::new(); n_states];
        for n in 0..=w.right {
            let wn = w.pmf(n);
            if wn > 0.0 {
                for (o, p) in out.iter_mut().zip(&pi) {
                    o.add(wn * p);
                }
            }
            if n < w.right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        out.into_iter().map(|k| k.value()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-state repairable unit with closed-form unavailability
    /// `UA(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})`.
    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, mu)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    fn ua_exact(lambda: f64, mu: f64, t: f64) -> f64 {
        lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp())
    }

    #[test]
    fn trr_matches_closed_form() {
        let (l, m) = (1e-3, 1.0);
        let c = two_state(l, m);
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let got = s.solve(MeasureKind::Trr, t);
            let want = ua_exact(l, m, t);
            assert!(
                (got.value - want).abs() < 1e-11,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn mrr_matches_closed_form_integral() {
        // ∫₀ᵗ UA = λ/(λ+μ)·(t − (1−e^{−(λ+μ)t})/(λ+μ)); MRR = that / t.
        let (l, m) = (0.5, 2.0);
        let c = two_state(l, m);
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.1, 1.0, 5.0, 50.0] {
            let got = s.solve(MeasureKind::Mrr, t);
            let lm = l + m;
            let want = l / lm * (t - (1.0 - (-lm * t).exp()) / lm) / t;
            assert!(
                (got.value - want).abs() < 1e-11,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn t_zero_returns_initial_reward() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        let got = s.solve(MeasureKind::Trr, 0.0);
        assert_eq!(got.value, 0.0);
        assert_eq!(got.steps, 0);
    }

    #[test]
    fn absorbing_chain_unreliability() {
        // 0 -> 1 (absorbing) at rate λ: UR(t) = 1 − e^{−λt}.
        let l = 0.37;
        let c = Ctmc::from_rates(2, &[(0, 1, l)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            let got = s.solve(MeasureKind::Trr, t).value;
            let want = 1.0 - (-l * t).exp();
            assert!((got - want).abs() < 1e-12, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn steps_grow_linearly_with_t() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        let s10 = s.solve(MeasureKind::Trr, 10.0).steps;
        let s1000 = s.solve(MeasureKind::Trr, 1000.0).steps;
        assert!(s1000 > 50 * s10 / 10, "SR steps must scale ~linearly in t");
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let c = two_state(0.3, 1.1);
        let s = SrSolver::new(&c, SrOptions::default());
        let ts = [5.0, 0.0, 0.5, 50.0];
        for m in [MeasureKind::Trr, MeasureKind::Mrr] {
            let many = s.solve_many(m, &ts);
            assert_eq!(many.len(), ts.len());
            for (sol, &t) in many.iter().zip(&ts) {
                let single = s.solve(m, t);
                assert!(
                    (sol.value - single.value).abs() < 1e-12,
                    "t={t} {m:?}: {} vs {}",
                    sol.value,
                    single.value
                );
                assert_eq!(sol.steps, single.steps);
            }
        }
    }

    #[test]
    fn solve_many_empty_and_degenerate() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        assert!(s.solve_many(MeasureKind::Trr, &[]).is_empty());
        let zeros = s.solve_many(MeasureKind::Trr, &[0.0, 0.0]);
        assert_eq!(zeros[0].value, 0.0);
        assert_eq!(zeros[1].steps, 0);
    }

    #[test]
    fn workspace_reuse_is_allocation_free() {
        let c = two_state(0.3, 1.1);
        let s = SrSolver::new(&c, SrOptions::default());
        let mut ws = Workspace::new();
        let ts = [5.0, 0.5, 50.0];
        let warm = s.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
        let after_warmup = ws.stats().fresh_allocs;
        for _ in 0..5 {
            let again = s.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
            for (a, b) in warm.iter().zip(&again) {
                assert_eq!(a.value, b.value, "reuse must not change values");
            }
        }
        assert_eq!(
            ws.stats().fresh_allocs,
            after_warmup,
            "warmed-up solve_many must not allocate scratch vectors"
        );
    }

    #[test]
    fn distribution_sums_to_one_and_matches_trr() {
        let c = two_state(0.2, 0.9);
        let s = SrSolver::new(&c, SrOptions::default());
        let t = 3.5;
        let d = s.transient_distribution(t);
        let mass: f64 = d.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
        let trr = s.solve(MeasureKind::Trr, t).value;
        assert!((c.reward_dot(&d) - trr).abs() < 1e-10);
    }
}
