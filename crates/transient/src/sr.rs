//! Standard randomization (SR / uniformization), the paper's baseline.
//!
//! With `P = I + Q/Λ` and `π_n = α P^n`,
//!
//! * `TRR(t) = Σ_n Po_{Λt}(n) · r·π_n`,
//! * `MRR(t) = (1/(Λt)) Σ_n P[N(t) ≥ n+1] · r·π_n`
//!   (from `∫₀ᵗ Po_{Λτ}(n) dτ = P[N(t) ≥ n+1]/Λ`),
//!
//! truncated at the Fox–Glynn window `[L, R]` of `Poisson(Λt)` with discarded
//! mass `≤ ε/r_max`, so the absolute error is `≤ ε`. The step count — `R`, the
//! right truncation point — is what Table 2 of the paper reports for SR.
//!
//! Numerical safety: all terms are non-negative (this is randomization's
//! selling point), sums are compensated, and distributions are propagated by
//! gather-style products on `Pᵀ` (parallelized above a size threshold).

use crate::{MeasureKind, Solution};
use regenr_ctmc::{Ctmc, Uniformized};
use regenr_numeric::{KahanSum, PoissonWeights};
use regenr_sparse::{ParallelConfig, Workspace, MAX_RHS_BLOCK};
use std::sync::Arc;

/// Options for [`SrSolver`].
#[derive(Clone, Copy, Debug)]
pub struct SrOptions {
    /// Total absolute error budget `ε` (the paper uses `10⁻¹²`).
    pub epsilon: f64,
    /// Uniformization safety factor `θ` (`Λ = (1+θ)·max rate`); `0` matches
    /// the paper.
    pub theta: f64,
    /// Parallel SpMV configuration.
    pub parallel: ParallelConfig,
}

impl Default for SrOptions {
    fn default() -> Self {
        SrOptions {
            epsilon: 1e-12,
            theta: 0.0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Standard-randomization solver bound to one chain.
#[derive(Clone, Debug)]
pub struct SrSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    opts: SrOptions,
}

impl<'a> SrSolver<'a> {
    /// Uniformizes the chain and prepares the solver.
    pub fn new(ctmc: &'a Ctmc, opts: SrOptions) -> Self {
        let unif = Arc::new(Uniformized::new(ctmc, opts.theta));
        Self::with_uniformized(ctmc, unif, opts)
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.theta`.
    pub fn with_uniformized(ctmc: &'a Ctmc, unif: Arc<Uniformized>, opts: SrOptions) -> Self {
        assert!(opts.epsilon > 0.0, "epsilon must be positive");
        unif.assert_built_from(ctmc);
        SrSolver { ctmc, unif, opts }
    }

    /// The randomization rate in use.
    pub fn lambda(&self) -> f64 {
        self.unif.lambda
    }

    /// Computes `TRR(t)` or `MRR(t)` with absolute error `≤ ε`.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Solution {
        self.solve_with(measure, t, &mut Workspace::new())
    }

    /// Like [`SrSolver::solve`] with caller-owned scratch: repeated solves
    /// through one [`Workspace`] perform no steady-state vector allocations.
    pub fn solve_with(&self, measure: MeasureKind, t: f64, ws: &mut Workspace) -> Solution {
        assert!(t >= 0.0, "time must be non-negative");
        let r_max = self.ctmc.max_reward();
        if t == 0.0 || r_max == 0.0 {
            return Solution {
                value: self.ctmc.reward_dot(self.ctmc.initial()),
                steps: 0,
                error_bound: 0.0,
            };
        }
        let lambda_t = self.unif.lambda * t;
        // Discarded Poisson mass δ contributes ≤ δ·r_max to either measure.
        let delta = (self.opts.epsilon / r_max).min(0.5);
        let w = PoissonWeights::new(lambda_t, delta);

        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(pi.len());
        let mut acc = KahanSum::new();
        for n in 0..=w.right {
            let rr = self.ctmc.reward_dot(&pi);
            match measure {
                MeasureKind::Trr => {
                    let wn = w.pmf(n);
                    if wn > 0.0 {
                        acc.add(wn * rr);
                    }
                }
                MeasureKind::Mrr => {
                    acc.add(w.survival(n + 1) * rr);
                }
            }
            if n < w.right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        let value = match measure {
            MeasureKind::Trr => acc.value(),
            MeasureKind::Mrr => acc.value() / lambda_t,
        };
        Solution {
            value,
            steps: w.right as usize,
            error_bound: self.opts.epsilon,
        }
    }

    /// Computes the measure at *many* horizons in a single propagation sweep.
    ///
    /// SR propagates the same DTMC sequence `π_0, π_1, …` regardless of `t`;
    /// only the Poisson weights differ. This method steps once up to the
    /// largest right truncation point and accumulates every horizon's
    /// weighted sum on the way — `max(Λtᵢ)` products instead of `Σ Λtᵢ`.
    /// Values are identical to per-`t` [`SrSolver::solve`] up to roundoff.
    pub fn solve_many(&self, measure: MeasureKind, ts: &[f64]) -> Vec<Solution> {
        self.solve_many_with(measure, ts, &mut Workspace::new())
    }

    /// Like [`SrSolver::solve_many`] with caller-owned scratch: the
    /// propagation loop performs zero steady-state heap allocations.
    pub fn solve_many_with(
        &self,
        measure: MeasureKind,
        ts: &[f64],
        ws: &mut Workspace,
    ) -> Vec<Solution> {
        let r_max = self.ctmc.max_reward();
        if ts.is_empty() {
            return Vec::new();
        }
        if r_max == 0.0 || ts.iter().all(|&t| t == 0.0) {
            return ts
                .iter()
                .map(|&t| self.solve_with(measure, t, ws))
                .collect();
        }
        let delta = (self.opts.epsilon / r_max).min(0.5);
        let weights: Vec<Option<PoissonWeights>> = ts
            .iter()
            .map(|&t| {
                assert!(t >= 0.0, "time must be non-negative");
                (t > 0.0).then(|| PoissonWeights::new(self.unif.lambda * t, delta))
            })
            .collect();
        let max_right = weights
            .iter()
            .flatten()
            .map(|w| w.right)
            .max()
            .expect("at least one positive horizon");

        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        regenr_failpoint::failpoint!("sr-nan", |_fired| {
            if let Some(slot) = pi.first_mut() {
                *slot = f64::NAN;
            }
        });
        let mut next = ws.take_zeroed(pi.len());
        let mut accs = vec![KahanSum::new(); ts.len()];
        for n in 0..=max_right {
            regenr_failpoint::failpoint!("sr-step");
            let rr = self.ctmc.reward_dot(&pi);
            for (acc, w) in accs.iter_mut().zip(&weights) {
                let Some(w) = w else { continue };
                if n > w.right {
                    continue;
                }
                match measure {
                    MeasureKind::Trr => {
                        let wn = w.pmf(n);
                        if wn > 0.0 {
                            acc.add(wn * rr);
                        }
                    }
                    MeasureKind::Mrr => acc.add(w.survival(n + 1) * rr),
                }
            }
            if n < max_right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        accs.iter()
            .zip(&weights)
            .zip(ts)
            .map(|((acc, w), &t)| match w {
                None => Solution {
                    value: self.ctmc.reward_dot(self.ctmc.initial()),
                    steps: 0,
                    error_bound: 0.0,
                },
                Some(w) => Solution {
                    value: match measure {
                        MeasureKind::Trr => acc.value(),
                        MeasureKind::Mrr => acc.value() / (self.unif.lambda * t),
                    },
                    steps: w.right as usize,
                    error_bound: self.opts.epsilon,
                },
            })
            .collect()
    }

    /// The transient state distribution `π(t)` (used by tests and examples).
    pub fn transient_distribution(&self, t: f64) -> Vec<f64> {
        self.transient_distribution_with(t, &mut Workspace::new())
    }

    /// Like [`SrSolver::transient_distribution`] with caller-owned scratch.
    pub fn transient_distribution_with(&self, t: f64, ws: &mut Workspace) -> Vec<f64> {
        assert!(t >= 0.0);
        let n_states = self.ctmc.n_states();
        if t == 0.0 {
            return self.ctmc.initial().to_vec();
        }
        let lambda_t = self.unif.lambda * t;
        let w = PoissonWeights::new(lambda_t, self.opts.epsilon.min(1e-10));
        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(n_states);
        let mut out = vec![KahanSum::new(); n_states];
        for n in 0..=w.right {
            let wn = w.pmf(n);
            if wn > 0.0 {
                for (o, p) in out.iter_mut().zip(&pi) {
                    o.add(wn * p);
                }
            }
            if n < w.right {
                stepper.step(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        out.into_iter().map(|k| k.value()).collect()
    }
}

/// One member of a blocked standard-randomization solve (see
/// [`solve_block_with`]): a chain built over the *same generator* as the
/// group's shared uniformization — initial distribution, rewards, measure,
/// and horizon grid are the cell's own.
#[derive(Clone, Copy, Debug)]
pub struct SrBlockCell<'a> {
    /// The cell's chain. Its generator must match the shared
    /// uniformization (checked via [`Uniformized::assert_built_from`]).
    pub ctmc: &'a Ctmc,
    /// Which reward measure this cell computes.
    pub measure: MeasureKind,
    /// The cell's horizon grid (what [`SrSolver::solve_many_with`] would
    /// receive).
    pub ts: &'a [f64],
}

/// Per-cell propagation state for [`solve_block_with`].
struct BlockCellRun {
    weights: Vec<Option<PoissonWeights>>,
    accs: Vec<KahanSum>,
    /// The cell's own largest right truncation point — accumulation stops
    /// here even though the shared propagation may continue for other
    /// cells (exactly the per-horizon skip `solve_many_with` applies).
    right: u64,
}

/// One strided reward dot, replicating [`Ctmc::reward_dot`]'s exact
/// operation order on column `j` of a `k`-interleaved blocked state:
/// `Σ_s pi[s*k + j] · r_s`, accumulated left to right from `0.0` like the
/// serial `sum()`. Same adds in the same order ⇒ bitwise identical to
/// `reward_dot` on the extracted column.
fn reward_dot_strided(rewards: &[f64], pi: &[f64], k: usize, j: usize) -> f64 {
    let mut acc = 0.0;
    for (s, r) in rewards.iter().enumerate() {
        acc += pi[s * k + j] * r;
    }
    acc
}

/// Solves every cell's horizon grid in **one blocked propagation**: the
/// cells' state distributions are interleaved into a `k`-column block and
/// every DTMC step is a single streaming pass of `Pᵀ` moving all `k`
/// (see [`regenr_ctmc::Stepper::step_block`]) — this is what breaks the
/// memory-bandwidth wall when an engine sweep holds many cells over one
/// uniformization (different initial distributions, rewards, measures, or
/// horizon grids).
///
/// Every cell's solutions are **bitwise identical** to what
/// [`SrSolver::solve_many_with`] would produce for that cell alone: blocked
/// stepping is bitwise per column, the strided reward dot replicates the
/// serial operation order, and each cell's accumulators see exactly the
/// same terms in the same order (cells stop accumulating at their own
/// right truncation point while the shared propagation continues).
///
/// Degenerate cells (no horizons, zero rewards, all-zero horizons) take
/// the serial path, as does a single-cell group.
///
/// # Panics
/// If `cells` is empty or longer than [`MAX_RHS_BLOCK`], a cell's chain
/// does not match `unif`, or a horizon is negative.
pub fn solve_block_with(
    unif: &Arc<Uniformized>,
    opts: &SrOptions,
    cells: &[SrBlockCell<'_>],
    ws: &mut Workspace,
) -> Vec<Vec<Solution>> {
    assert!(
        (1..=MAX_RHS_BLOCK).contains(&cells.len()),
        "block of {} cells out of range",
        cells.len()
    );
    let n = unif.n_states();
    let mut out: Vec<Option<Vec<Solution>>> = vec![None; cells.len()];
    // Split serial-path cells (the degenerate predicates of
    // `solve_many_with`) from cells that propagate.
    let mut active: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let solver = SrSolver::with_uniformized(cell.ctmc, unif.clone(), *opts);
        let degenerate = cell.ts.is_empty()
            || cell.ctmc.max_reward() == 0.0
            || cell.ts.iter().all(|&t| t == 0.0);
        if degenerate {
            out[i] = Some(solver.solve_many_with(cell.measure, cell.ts, ws));
        } else {
            active.push(i);
        }
    }
    if active.len() == 1 {
        let i = active[0];
        let solver = SrSolver::with_uniformized(cells[i].ctmc, unif.clone(), *opts);
        out[i] = Some(solver.solve_many_with(cells[i].measure, cells[i].ts, ws));
    } else if !active.is_empty() {
        let k = active.len();
        // Per-cell weights and accumulators, mirroring `solve_many_with`.
        let mut runs: Vec<BlockCellRun> = active
            .iter()
            .map(|&i| {
                let cell = &cells[i];
                let r_max = cell.ctmc.max_reward();
                let delta = (opts.epsilon / r_max).min(0.5);
                let weights: Vec<Option<PoissonWeights>> = cell
                    .ts
                    .iter()
                    .map(|&t| {
                        assert!(t >= 0.0, "time must be non-negative");
                        (t > 0.0).then(|| PoissonWeights::new(unif.lambda * t, delta))
                    })
                    .collect();
                let right = weights
                    .iter()
                    .flatten()
                    .map(|w| w.right)
                    .max()
                    .expect("active cell has a positive horizon");
                BlockCellRun {
                    accs: vec![KahanSum::new(); weights.len()],
                    weights,
                    right,
                }
            })
            .collect();
        let global_right = runs.iter().map(|r| r.right).max().unwrap();

        let stepper = unif.stepper_block(&opts.parallel, k);
        let mut pi = ws.take_zeroed_block(n, k);
        for (j, &i) in active.iter().enumerate() {
            for (s, &v) in cells[i].ctmc.initial().iter().enumerate() {
                pi[s * k + j] = v;
            }
        }
        regenr_failpoint::failpoint!("sr-block-nan", |_fired| {
            if let Some(slot) = pi.first_mut() {
                *slot = f64::NAN;
            }
        });
        let mut next = ws.take_zeroed_block(n, k);
        for step in 0..=global_right {
            for (j, &i) in active.iter().enumerate() {
                let run = &mut runs[j];
                if step > run.right {
                    continue;
                }
                let rr = reward_dot_strided(cells[i].ctmc.rewards(), &pi, k, j);
                for (acc, w) in run.accs.iter_mut().zip(&run.weights) {
                    let Some(w) = w else { continue };
                    if step > w.right {
                        continue;
                    }
                    match cells[i].measure {
                        MeasureKind::Trr => {
                            let wn = w.pmf(step);
                            if wn > 0.0 {
                                acc.add(wn * rr);
                            }
                        }
                        MeasureKind::Mrr => acc.add(w.survival(step + 1) * rr),
                    }
                }
            }
            if step < global_right {
                stepper.step_block(&pi, &mut next);
                std::mem::swap(&mut pi, &mut next);
            }
        }
        ws.give(pi);
        ws.give(next);
        for (run, &i) in runs.into_iter().zip(&active) {
            let cell = &cells[i];
            out[i] = Some(
                run.accs
                    .iter()
                    .zip(&run.weights)
                    .zip(cell.ts)
                    .map(|((acc, w), &t)| match w {
                        None => Solution {
                            value: cell.ctmc.reward_dot(cell.ctmc.initial()),
                            steps: 0,
                            error_bound: 0.0,
                        },
                        Some(w) => Solution {
                            value: match cell.measure {
                                MeasureKind::Trr => acc.value(),
                                MeasureKind::Mrr => acc.value() / (unif.lambda * t),
                            },
                            steps: w.right as usize,
                            error_bound: opts.epsilon,
                        },
                    })
                    .collect(),
            );
        }
    }
    out.into_iter()
        .map(|sols| sols.expect("every cell solved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-state repairable unit with closed-form unavailability
    /// `UA(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})`.
    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, mu)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    fn ua_exact(lambda: f64, mu: f64, t: f64) -> f64 {
        lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp())
    }

    #[test]
    fn trr_matches_closed_form() {
        let (l, m) = (1e-3, 1.0);
        let c = two_state(l, m);
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let got = s.solve(MeasureKind::Trr, t);
            let want = ua_exact(l, m, t);
            assert!(
                (got.value - want).abs() < 1e-11,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn mrr_matches_closed_form_integral() {
        // ∫₀ᵗ UA = λ/(λ+μ)·(t − (1−e^{−(λ+μ)t})/(λ+μ)); MRR = that / t.
        let (l, m) = (0.5, 2.0);
        let c = two_state(l, m);
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.1, 1.0, 5.0, 50.0] {
            let got = s.solve(MeasureKind::Mrr, t);
            let lm = l + m;
            let want = l / lm * (t - (1.0 - (-lm * t).exp()) / lm) / t;
            assert!(
                (got.value - want).abs() < 1e-11,
                "t={t}: {} vs {want}",
                got.value
            );
        }
    }

    #[test]
    fn t_zero_returns_initial_reward() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        let got = s.solve(MeasureKind::Trr, 0.0);
        assert_eq!(got.value, 0.0);
        assert_eq!(got.steps, 0);
    }

    #[test]
    fn absorbing_chain_unreliability() {
        // 0 -> 1 (absorbing) at rate λ: UR(t) = 1 − e^{−λt}.
        let l = 0.37;
        let c = Ctmc::from_rates(2, &[(0, 1, l)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let s = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            let got = s.solve(MeasureKind::Trr, t).value;
            let want = 1.0 - (-l * t).exp();
            assert!((got - want).abs() < 1e-12, "t={t}: {got} vs {want}");
        }
    }

    #[test]
    fn steps_grow_linearly_with_t() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        let s10 = s.solve(MeasureKind::Trr, 10.0).steps;
        let s1000 = s.solve(MeasureKind::Trr, 1000.0).steps;
        assert!(s1000 > 50 * s10 / 10, "SR steps must scale ~linearly in t");
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let c = two_state(0.3, 1.1);
        let s = SrSolver::new(&c, SrOptions::default());
        let ts = [5.0, 0.0, 0.5, 50.0];
        for m in [MeasureKind::Trr, MeasureKind::Mrr] {
            let many = s.solve_many(m, &ts);
            assert_eq!(many.len(), ts.len());
            for (sol, &t) in many.iter().zip(&ts) {
                let single = s.solve(m, t);
                assert!(
                    (sol.value - single.value).abs() < 1e-12,
                    "t={t} {m:?}: {} vs {}",
                    sol.value,
                    single.value
                );
                assert_eq!(sol.steps, single.steps);
            }
        }
    }

    #[test]
    fn solve_many_empty_and_degenerate() {
        let c = two_state(1.0, 1.0);
        let s = SrSolver::new(&c, SrOptions::default());
        assert!(s.solve_many(MeasureKind::Trr, &[]).is_empty());
        let zeros = s.solve_many(MeasureKind::Trr, &[0.0, 0.0]);
        assert_eq!(zeros[0].value, 0.0);
        assert_eq!(zeros[1].steps, 0);
    }

    #[test]
    fn workspace_reuse_is_allocation_free() {
        let c = two_state(0.3, 1.1);
        let s = SrSolver::new(&c, SrOptions::default());
        let mut ws = Workspace::new();
        let ts = [5.0, 0.5, 50.0];
        let warm = s.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
        let after_warmup = ws.stats().fresh_allocs;
        for _ in 0..5 {
            let again = s.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
            for (a, b) in warm.iter().zip(&again) {
                assert_eq!(a.value, b.value, "reuse must not change values");
            }
        }
        assert_eq!(
            ws.stats().fresh_allocs,
            after_warmup,
            "warmed-up solve_many must not allocate scratch vectors"
        );
    }

    /// Blocked multi-cell solves must be bitwise identical per cell to the
    /// serial `solve_many_with` — different initials, rewards, measures,
    /// horizon grids, and degenerate members included.
    #[test]
    fn blocked_solve_is_bitwise_identical_to_serial_per_cell() {
        let n = 40;
        let mut rates = Vec::new();
        for i in 0..n - 1 {
            rates.push((i, i + 1, 1.0 + i as f64 * 0.01));
            rates.push((i + 1, i, 0.5));
        }
        let mut init_a = vec![0.0; n];
        init_a[0] = 1.0;
        let base = Ctmc::from_rates(n, &rates, init_a, vec![1.0; n]).unwrap();
        let mut init_b = vec![0.0; n];
        init_b[n - 1] = 0.25;
        init_b[n / 2] = 0.75;
        let cell_b = base
            .with_initial(init_b)
            .unwrap()
            .with_rewards((0..n).map(|i| (i % 3) as f64).collect())
            .unwrap();
        let cell_c = base.with_rewards(vec![0.0; n]).unwrap(); // degenerate
        let opts = SrOptions::default();
        let unif = Arc::new(Uniformized::new(&base, opts.theta));
        let grids: [&[f64]; 4] = [&[0.5, 3.0, 10.0], &[7.0, 0.0], &[1.0], &[2.5, 40.0]];
        let cells = [
            SrBlockCell {
                ctmc: &base,
                measure: MeasureKind::Trr,
                ts: grids[0],
            },
            SrBlockCell {
                ctmc: &cell_b,
                measure: MeasureKind::Mrr,
                ts: grids[1],
            },
            SrBlockCell {
                ctmc: &cell_c,
                measure: MeasureKind::Trr,
                ts: grids[2],
            },
            SrBlockCell {
                ctmc: &base,
                measure: MeasureKind::Mrr,
                ts: grids[3],
            },
        ];
        for take in 1..=cells.len() {
            let mut ws = Workspace::new();
            let got = solve_block_with(&unif, &opts, &cells[..take], &mut ws);
            assert_eq!(got.len(), take);
            for (cell, sols) in cells[..take].iter().zip(&got) {
                let solver = SrSolver::with_uniformized(cell.ctmc, unif.clone(), opts);
                let want = solver.solve_many_with(cell.measure, cell.ts, &mut Workspace::new());
                assert_eq!(want.len(), sols.len());
                for (w, g) in want.iter().zip(sols) {
                    assert_eq!(
                        w.value.to_bits(),
                        g.value.to_bits(),
                        "take={take} {:?} ts={:?}",
                        cell.measure,
                        cell.ts
                    );
                    assert_eq!(w.steps, g.steps);
                    assert_eq!(w.error_bound, g.error_bound);
                }
            }
        }
    }

    #[test]
    fn distribution_sums_to_one_and_matches_trr() {
        let c = two_state(0.2, 0.9);
        let s = SrSolver::new(&c, SrOptions::default());
        let t = 3.5;
        let d = s.transient_distribution(t);
        let mass: f64 = d.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
        let trr = s.solve(MeasureKind::Trr, t).value;
        assert!((c.reward_dot(&d) - trr).abs() < 1e-10);
    }
}
