//! Stationary distribution of an irreducible CTMC.
//!
//! Power iteration on the uniformized DTMC (with a safety factor to guarantee
//! aperiodicity): `π_{n+1} = π_n P`, stopping when `‖π_{n+1} − π_n‖₁ ≤ tol`.
//! Used by tests to validate RSD's detected vector and by examples to report
//! long-run measures.

use regenr_ctmc::{Ctmc, Uniformized};
use regenr_sparse::{ParallelConfig, Workspace};

/// Computes the stationary distribution by power iteration.
///
/// Returns `None` when the iteration fails to converge within `max_iter`
/// steps (periodicity is ruled out by the θ=0.05 self-loops, so this means
/// the tolerance is too tight or the chain is reducible).
pub fn stationary_distribution(ctmc: &Ctmc, tol: f64, max_iter: usize) -> Option<Vec<f64>> {
    stationary_distribution_with(ctmc, tol, max_iter, &mut Workspace::new())
}

/// Like [`stationary_distribution`] with caller-owned scratch (the scratch
/// iterate returns to `ws`; the result vector is handed to the caller).
pub fn stationary_distribution_with(
    ctmc: &Ctmc,
    tol: f64,
    max_iter: usize,
    ws: &mut Workspace,
) -> Option<Vec<f64>> {
    let unif = Uniformized::new(ctmc, 0.05);
    let stepper = unif.stepper(&ParallelConfig::default());
    let mut pi = ws.take_copied(ctmc.initial());
    let mut next = ws.take_zeroed(pi.len());
    for _ in 0..max_iter {
        stepper.step(&pi, &mut next);
        let d: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if d <= tol {
            // Renormalize against accumulated drift.
            let mass: f64 = pi.iter().sum();
            for p in &mut pi {
                *p /= mass;
            }
            ws.give(next);
            return Some(pi);
        }
    }
    ws.give(pi);
    ws.give(next);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_balance() {
        let (l, m) = (0.3, 1.2);
        let c =
            Ctmc::from_rates(2, &[(0, 1, l), (1, 0, m)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
        let pi = stationary_distribution(&c, 1e-14, 100_000).unwrap();
        assert!((pi[0] - m / (l + m)).abs() < 1e-10);
        assert!((pi[1] - l / (l + m)).abs() < 1e-10);
    }

    #[test]
    fn birth_death_detailed_balance() {
        // M/M/1/4 with λ=1, μ=2: π_k ∝ (1/2)^k.
        let mut rates = Vec::new();
        for k in 0..4 {
            rates.push((k, k + 1, 1.0));
            rates.push((k + 1, k, 2.0));
        }
        let mut init = vec![0.0; 5];
        init[0] = 1.0;
        let c = Ctmc::from_rates(5, &rates, init, vec![0.0; 5]).unwrap();
        let pi = stationary_distribution(&c, 1e-14, 1_000_000).unwrap();
        let z: f64 = (0..5).map(|k| 0.5f64.powi(k)).sum();
        for (k, p) in pi.iter().enumerate() {
            let want = 0.5f64.powi(k as i32) / z;
            assert!((p - want).abs() < 1e-9, "k={k}: {p} vs {want}");
        }
    }

    #[test]
    fn stationary_is_fixed_point_of_generator() {
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (1, 0, 0.5)],
            vec![1.0, 0.0, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        let pi = stationary_distribution(&c, 1e-14, 1_000_000).unwrap();
        // πQ should be ~0.
        let mut out = vec![0.0; 3];
        c.generator().vec_mul_into(&pi, &mut out);
        for v in out {
            assert!(v.abs() < 1e-9, "residual {v}");
        }
    }
}
