//! Baseline transient solvers for rewarded CTMCs.
//!
//! These are the methods the paper compares against:
//!
//! * [`sr`] — **standard randomization** (SR, a.k.a. uniformization): the
//!   reference method with rigorous error control; cost `Θ(Λt)` DTMC steps,
//!   prohibitive for stiff dependability models at large horizons,
//! * [`rsd`] — **randomization with steady-state detection** (RSD, after
//!   Sericola 1999): for irreducible chains, stops stepping once the DTMC has
//!   numerically reached stationarity,
//! * [`adaptive`] — **adaptive active-set randomization**, a related-work
//!   extension in the spirit of adaptive uniformization (van Moorsel &
//!   Sanders 1994): products touch only the reachable frontier, so small-`t`
//!   transients cost `O(active nnz)` (see the module docs for how this
//!   relates to the original rate-adapting formulation),
//! * [`ode`] — a dense adaptive RK4(5) integrator of the Kolmogorov equations,
//!   used as an *independent* cross-validation oracle on small models,
//! * [`stationary`] — stationary-distribution power iteration used by tests
//!   to validate RSD's detected vector.
//!
//! All solvers compute the paper's two measures ([`MeasureKind`]):
//! `TRR(t) = E[r_{X(t)}]` and `MRR(t) = (1/t)·E[∫₀ᵗ r_{X(τ)} dτ]`.

//! ```
//! use regenr_transient::{SrSolver, SrOptions, MeasureKind};
//! use regenr_ctmc::Ctmc;
//!
//! let ctmc = Ctmc::from_rates(
//!     2,
//!     &[(0, 1, 0.5), (1, 0, 2.0)],
//!     vec![1.0, 0.0],
//!     vec![0.0, 1.0],
//! ).unwrap();
//! let sr = SrSolver::new(&ctmc, SrOptions::default());
//! let ua = sr.solve(MeasureKind::Trr, 3.0);
//! let exact = 0.5 / 2.5 * (1.0 - (-2.5f64 * 3.0).exp());
//! assert!((ua.value - exact).abs() < 1e-11);
//! ```

pub mod adaptive;
pub mod ode;
pub mod rsd;
pub mod sr;
pub mod stationary;

pub use adaptive::{AdaptiveOptions, AdaptiveSolver};
pub use ode::{OdeOptions, OdeSolver};
pub use rsd::{RsdOptions, RsdSolver};
pub use sr::{solve_block_with, SrBlockCell, SrOptions, SrSolver};
pub use stationary::{stationary_distribution, stationary_distribution_with};

// The execution-layer scratch arena every `_with` solver entry point takes;
// re-exported so downstream callers need not depend on `regenr-sparse`.
pub use regenr_sparse::{Workspace, WorkspaceStats};

/// Which of the paper's two measures to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasureKind {
    /// Transient reward rate at time `t`: `TRR(t) = Σ_i r_i P[X(t)=i]`.
    Trr,
    /// Mean reward rate over `[0,t]`: `MRR(t) = (1/t)∫₀ᵗ TRR(τ) dτ`.
    Mrr,
}

/// A solver result: the measure value plus work/accuracy accounting, which is
/// what the paper's tables report.
#[derive(Clone, Copy, Debug)]
pub struct Solution {
    /// The computed measure value.
    pub value: f64,
    /// Number of DTMC steps (vector–matrix products) performed — the "number
    /// of steps" column of Tables 1 and 2.
    pub steps: usize,
    /// A bound on the absolute error of `value` (guaranteed for SR, practical
    /// for RSD; see the solver docs).
    pub error_bound: f64,
}
