//! Randomization with steady-state detection (RSD).
//!
//! For an *irreducible* chain the DTMC iterates `π_n = α P^n` converge to the
//! stationary vector; once they have converged to within the error budget,
//! all remaining Poisson-weighted terms can reuse the detected vector and the
//! stepping stops — the paper's Table 1 shows RSD's step count saturating at
//! the detection step while SR's keeps growing with `t`.
//!
//! ## Detection criterion
//!
//! Let `d_n = ‖π_n − π_{n−1}‖₁`. Row-stochasticity makes `d_n` non-increasing
//! (`‖μP‖₁ ≤ ‖μ‖₁`). For an aperiodic chain `d_n → 0` geometrically with the
//! subdominant-eigenvalue modulus `ρ`; then for any `m > n`
//!
//! `|r·π_m − r·π_n| ≤ r_max Σ_{j>n} d_j ≤ r_max · d_n · ρ/(1−ρ)`.
//!
//! We estimate `ρ̂` from a sliding window of observed ratios (the fully
//! rigorous bound of Sericola 1999 needs spectral information that is not
//! available here; the estimate is conservative: we take the *maximum* ratio
//! over the window) and stop at the first `n*` where
//! `r_max · d_{n*} · ρ̂/(1−ρ̂) ≤ ε/2`. This is the practical variant documented
//! in DESIGN.md §3.4.
//!
//! Periodic chains never trigger detection under `θ = 0` uniformization; pass
//! `theta > 0` to force self-loops (aperiodicity) — the solver then behaves
//! like SR until detection fires.

use crate::{MeasureKind, Solution};
use regenr_ctmc::{Ctmc, Uniformized};
use regenr_numeric::{KahanSum, PoissonWeights};
use regenr_sparse::{ParallelConfig, Workspace};
use std::sync::Arc;

/// Options for [`RsdSolver`].
#[derive(Clone, Copy, Debug)]
pub struct RsdOptions {
    /// Total absolute error budget `ε`.
    pub epsilon: f64,
    /// Uniformization safety factor (`0` matches the paper; `> 0` guarantees
    /// aperiodicity).
    pub theta: f64,
    /// Sliding-window length for the contraction-ratio estimate.
    pub ratio_window: usize,
    /// Minimum number of steps before detection may fire (guards against
    /// transient plateaus in `d_n`).
    pub warmup: usize,
    /// Parallel SpMV configuration.
    pub parallel: ParallelConfig,
}

impl Default for RsdOptions {
    fn default() -> Self {
        RsdOptions {
            epsilon: 1e-12,
            theta: 0.0,
            ratio_window: 16,
            warmup: 32,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Steady-state-detection solver bound to one chain.
#[derive(Clone, Debug)]
pub struct RsdSolver<'a> {
    ctmc: &'a Ctmc,
    unif: Arc<Uniformized>,
    opts: RsdOptions,
}

/// Extra diagnostics from an RSD run.
#[derive(Clone, Copy, Debug)]
pub struct RsdReport {
    /// The solution proper.
    pub solution: Solution,
    /// Step at which stationarity was detected (`None` if the Poisson window
    /// was exhausted first, in which case RSD degenerated to SR).
    pub detected_at: Option<usize>,
    /// Final `‖π_n − π_{n−1}‖₁` observed.
    pub final_delta: f64,
}

impl<'a> RsdSolver<'a> {
    /// Uniformizes the chain and prepares the solver.
    pub fn new(ctmc: &'a Ctmc, opts: RsdOptions) -> Self {
        let unif = Arc::new(Uniformized::new(ctmc, opts.theta));
        Self::with_uniformized(ctmc, unif, opts)
    }

    /// Reuses a prebuilt uniformization (the engine's artifact-cache path).
    /// `unif` must have been built from `ctmc` at `opts.theta`.
    pub fn with_uniformized(ctmc: &'a Ctmc, unif: Arc<Uniformized>, opts: RsdOptions) -> Self {
        assert!(opts.epsilon > 0.0, "epsilon must be positive");
        assert!(opts.ratio_window >= 2);
        unif.assert_built_from(ctmc);
        RsdSolver { ctmc, unif, opts }
    }

    /// The randomization rate in use.
    pub fn lambda(&self) -> f64 {
        self.unif.lambda
    }

    /// Computes the measure with steady-state detection; see module docs for
    /// the error-control discussion.
    pub fn solve(&self, measure: MeasureKind, t: f64) -> Solution {
        self.solve_report(measure, t).solution
    }

    /// Like [`RsdSolver::solve`] but with detection diagnostics.
    pub fn solve_report(&self, measure: MeasureKind, t: f64) -> RsdReport {
        self.solve_report_with(measure, t, &mut Workspace::new())
    }

    /// Like [`RsdSolver::solve_report`] with caller-owned scratch: repeated
    /// solves through one [`Workspace`] perform no steady-state vector
    /// allocations.
    pub fn solve_report_with(&self, measure: MeasureKind, t: f64, ws: &mut Workspace) -> RsdReport {
        assert!(t >= 0.0, "time must be non-negative");
        let r_max = self.ctmc.max_reward();
        if t == 0.0 || r_max == 0.0 {
            return RsdReport {
                solution: Solution {
                    value: self.ctmc.reward_dot(self.ctmc.initial()),
                    steps: 0,
                    error_bound: 0.0,
                },
                detected_at: None,
                final_delta: f64::NAN,
            };
        }
        let lambda_t = self.unif.lambda * t;
        let delta_mass = (self.opts.epsilon / (2.0 * r_max)).min(0.5);
        let w = PoissonWeights::new(lambda_t, delta_mass);
        let detect_budget = self.opts.epsilon / 2.0;

        let stepper = self.unif.stepper(&self.opts.parallel);
        let mut pi = ws.take_copied(self.ctmc.initial());
        let mut next = ws.take_zeroed(pi.len());
        let mut acc = KahanSum::new();
        let mut ratios: Vec<f64> = Vec::with_capacity(self.opts.ratio_window);
        let mut prev_delta = f64::INFINITY;
        let mut detected_at = None;
        let mut final_delta = f64::NAN;
        let mut steps = 0usize;

        for n in 0..=w.right {
            let rr = self.ctmc.reward_dot(&pi);
            match measure {
                MeasureKind::Trr => {
                    let wn = w.pmf(n);
                    if wn > 0.0 {
                        acc.add(wn * rr);
                    }
                }
                MeasureKind::Mrr => acc.add(w.survival(n + 1) * rr),
            }
            if n == w.right {
                break;
            }

            stepper.step(&pi, &mut next);
            // d_{n+1} = ||π_{n+1} − π_n||₁.
            let d: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            steps = (n + 1) as usize;
            final_delta = d;

            // An exact fixed point (d = 0, common when the contraction is so
            // strong that d underflows before the ratio window fills) is
            // stationarity with zero tail error: detect immediately.
            if d == 0.0 {
                detected_at = Some(steps);
                break;
            }

            if prev_delta.is_finite() && prev_delta > 0.0 {
                let ratio = (d / prev_delta).min(1.0);
                if ratios.len() == self.opts.ratio_window {
                    ratios.remove(0);
                }
                ratios.push(ratio);
            }
            prev_delta = d;

            if steps >= self.opts.warmup && ratios.len() == self.opts.ratio_window {
                // Conservative contraction estimate: worst ratio in the window.
                let rho = ratios.iter().copied().fold(0.0f64, f64::max);
                if rho < 1.0 - 1e-9 {
                    let tail_bound = r_max * d * rho / (1.0 - rho);
                    if tail_bound <= detect_budget {
                        detected_at = Some(steps);
                        break;
                    }
                }
            }
        }

        // Account for the remaining Poisson mass with the detected vector.
        // When detection fires at step n* the loop has accumulated the terms
        // for π_0 … π_{n*−1}, and `pi` holds π_{n*}; the missing mass is
        //   TRR: Σ_{n≥n*} Po(n)        = survival(n*),
        //   MRR: Σ_{n≥n*} P[N ≥ n+1]   = Σ_{j≥n*+1} P[N ≥ j] = excess(n*+1).
        let value = match (measure, detected_at) {
            (MeasureKind::Trr, Some(n_star)) => {
                let rr = self.ctmc.reward_dot(&pi);
                acc.value() + w.survival(n_star as u64) * rr
            }
            (MeasureKind::Trr, None) => acc.value(),
            (MeasureKind::Mrr, Some(n_star)) => {
                let rr = self.ctmc.reward_dot(&pi);
                (acc.value() + w.expected_excess(n_star as u64 + 1) * rr) / lambda_t
            }
            (MeasureKind::Mrr, None) => acc.value() / lambda_t,
        };
        ws.give(pi);
        ws.give(next);

        RsdReport {
            solution: Solution {
                value,
                steps,
                error_bound: self.opts.epsilon,
            },
            detected_at,
            final_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sr::{SrOptions, SrSolver};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        Ctmc::from_rates(
            2,
            &[(0, 1, lambda), (1, 0, mu)],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn matches_sr_on_small_model() {
        let c = two_state(0.3, 1.7);
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let sr = SrSolver::new(&c, SrOptions::default());
        for &t in &[0.5, 5.0, 50.0, 5000.0] {
            let a = rsd.solve(MeasureKind::Trr, t).value;
            let b = sr.solve(MeasureKind::Trr, t).value;
            assert!((a - b).abs() < 1e-10, "t={t}: rsd {a} vs sr {b}");
            let am = rsd.solve(MeasureKind::Mrr, t).value;
            let bm = sr.solve(MeasureKind::Mrr, t).value;
            assert!((am - bm).abs() < 1e-10, "t={t} (MRR): rsd {am} vs sr {bm}");
        }
    }

    #[test]
    fn detection_caps_steps_for_large_t() {
        let c = two_state(0.3, 1.7);
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let r1 = rsd.solve_report(MeasureKind::Trr, 1e3);
        let r2 = rsd.solve_report(MeasureKind::Trr, 1e6);
        assert!(r2.detected_at.is_some(), "steady state must be detected");
        assert_eq!(
            r1.solution.steps, r2.solution.steps,
            "detected step count must be t-independent once saturated"
        );
        // SR, by contrast, needs ~Λt steps at t = 1e6.
        let sr = SrSolver::new(&c, SrOptions::default());
        assert!(sr.solve(MeasureKind::Trr, 1e6).steps > 100 * r2.solution.steps);
    }

    #[test]
    fn exact_fixed_point_detects_immediately() {
        // λ + μ = Λ: the DTMC contracts by ~1e-3 per step, so d underflows
        // to exactly 0 long before the ratio window fills; the fixed-point
        // fast path must still detect.
        let c = two_state(1e-3, 1.0);
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let r = rsd.solve_report(MeasureKind::Trr, 1e6);
        assert!(r.detected_at.is_some(), "fixed point must be detected");
        assert!(r.solution.steps < 200, "steps: {}", r.solution.steps);
        let want = 1e-3 / 1.001;
        assert!((r.solution.value - want).abs() < 1e-10);
    }

    #[test]
    fn small_t_behaves_like_sr() {
        let c = two_state(0.3, 1.7);
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let r = rsd.solve_report(MeasureKind::Trr, 0.5);
        assert!(r.detected_at.is_none(), "no detection expected at tiny t");
    }

    #[test]
    fn detected_value_is_stationary_limit() {
        // As t → ∞, TRR(t) → stationary unavailability μ... λ/(λ+μ).
        let (l, m) = (0.4, 1.3);
        let c = two_state(l, m);
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let v = rsd.solve(MeasureKind::Trr, 1e9).value;
        assert!((v - l / (l + m)).abs() < 1e-9);
    }

    #[test]
    fn periodic_chain_with_theta_zero_never_detects_but_stays_correct() {
        // 3-cycle with uniform rates is periodic under θ=0 randomization.
        let c = Ctmc::from_rates(
            3,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
        )
        .unwrap();
        let rsd = RsdSolver::new(&c, RsdOptions::default());
        let r = rsd.solve_report(MeasureKind::Trr, 30.0);
        assert!(r.detected_at.is_none(), "periodic chain must not detect");
        let sr = SrSolver::new(&c, SrOptions::default());
        let b = sr.solve(MeasureKind::Trr, 30.0).value;
        assert!((r.solution.value - b).abs() < 1e-10);
        // With θ>0 the chain becomes aperiodic and detection fires eventually.
        let rsd2 = RsdSolver::new(
            &c,
            RsdOptions {
                theta: 0.2,
                ..Default::default()
            },
        );
        let r2 = rsd2.solve_report(MeasureKind::Trr, 1e7);
        assert!(r2.detected_at.is_some());
        assert!((r2.solution.value - 1.0 / 3.0).abs() < 1e-9);
    }
}
