//! Allocator-truth test for the execution layer: a warm [`WorkerPool`]
//! serves runs with **zero steady-state heap allocations** — the job-slot
//! recycling replaced the per-run `Arc<JobState>` allocation of the original
//! design. A dedicated integration test binary because the counting
//! allocator is necessarily process-global.

use regenr_sparse::{ChunkPlan, CooBuilder, CsrMatrix, WorkerPool, Workspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Sizes of the most recent allocations — diagnostic breadcrumbs for a
/// failure (a bare count is useless for finding the stray allocation).
static RING: [AtomicU64; 32] = [const { AtomicU64::new(0) }; 32];

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let i = ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
        RING[i % 32].store(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let i = ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
        RING[i % 32].store(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn recent_sizes() -> Vec<u64> {
    RING.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

fn band_matrix(n: usize) -> CsrMatrix {
    let mut b = CooBuilder::new(n, n);
    for i in 0..n {
        b.push(i, i, 2.0);
        if i > 0 {
            b.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            b.push(i, i + 1, -0.5);
        }
    }
    b.build()
}

/// Warm pool + cached plan + workspace-held buffers: repeated pooled
/// products perform no allocations at all — on the submitting thread *or*
/// the workers stealing chunks during the measured window (any allocation,
/// on any thread, fails the test).
#[test]
fn warm_pool_runs_are_allocation_free() {
    let pool = WorkerPool::new(4);
    let n = 2_000;
    let m = band_matrix(n);
    let plan = ChunkPlan::new(&m, 8);
    let mut ws = Workspace::new();
    let x = ws.take_zeroed(n);
    let mut y = ws.take_zeroed(n);

    // Warm-up: force every worker through the full claim-and-execute path
    // (sleeping chunks make the submitter yield claims to the workers) so
    // any lazy per-thread init happens before the measured window; then
    // settle with the product itself.
    for _ in 0..3 {
        pool.run(32, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
    }
    for _ in 0..50 {
        m.mul_vec_pooled_into(&x, &mut y, &plan, &pool);
    }

    let before = allocations();
    for _ in 0..500 {
        m.mul_vec_pooled_into(&x, &mut y, &plan, &pool);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta,
        0,
        "steady-state pooled products must not allocate ({delta} in 500 runs; \
         recent sizes {:?})",
        recent_sizes()
    );

    // Raw pool runs (no SpMV) are allocation-free as well.
    let before = allocations();
    for _ in 0..500 {
        pool.run(8, |_| {});
    }
    let delta = allocations() - before;
    assert_eq!(
        delta,
        0,
        "raw pool.run must not allocate ({delta} in 500; recent sizes {:?})",
        recent_sizes()
    );
    ws.give(x);
    ws.give(y);
}
